"""Setup shim enabling legacy editable installs in offline environments
(no `wheel` package available for PEP 660 editable wheels)."""

from setuptools import setup

setup()
