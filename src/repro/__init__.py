"""repro — reproduction of Kahol et al., "Adaptive Distributed Dynamic
Channel Allocation for Wireless Networks" (ICPP Workshop 1998).

Public API
----------
The package is organized bottom-up:

* :mod:`repro.sim` — deterministic discrete-event kernel + message network;
* :mod:`repro.cellular` — hex grids, reuse patterns, spectrum partition;
* :mod:`repro.protocols` — FCA and the Dong–Lai search/update baselines;
* :mod:`repro.core` — the paper's adaptive hybrid scheme;
* :mod:`repro.traffic` — call workload generators and mobility;
* :mod:`repro.metrics` — drop rate, acquisition latency, message counts;
* :mod:`repro.analysis` — the closed-form models of the paper's §5;
* :mod:`repro.harness` — scenario configs, sweeps and table rendering.

Quick start::

    from repro import Scenario, run_scenario

    scenario = Scenario(scheme="adaptive", rows=7, cols=7,
                        num_channels=70, offered_load=5.0, seed=1)
    report = run_scenario(scenario)
    print(report.summary())
"""

__version__ = "1.0.0"

from .cellular import CellularTopology, HexGrid, ReusePattern, Spectrum
from .sim import Environment, Network, StreamRegistry

__all__ = [
    "__version__",
    "Environment",
    "Network",
    "StreamRegistry",
    "CellularTopology",
    "HexGrid",
    "ReusePattern",
    "Spectrum",
]


#: Harness names re-exported lazily (keeps `import repro` cheap and
#: avoids import cycles).
_HARNESS_EXPORTS = (
    "Scenario",
    "run_scenario",
    "run_replications",
    "build_simulation",
    "SCHEMES",
    "preset",
    "preset_names",
    "sweep",
    "summarize",
    "compare",
    "render_table",
    "ModeSampler",
)


def __getattr__(name):
    if name in _HARNESS_EXPORTS:
        from . import harness

        return getattr(harness, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_HARNESS_EXPORTS))
