"""Cellular substrate: hex geometry, reuse patterns, spectrum partition."""

from .geometry import (
    axial_to_xy,
    cell_center,
    grid_bounds,
    nearest_cell,
    xy_to_axial,
)
from .hexgrid import AXIAL_DIRECTIONS, Hex, HexGrid, hex_distance
from .spectrum import ReusePattern, Spectrum, cluster_shift, valid_cluster_sizes
from .topology import CellularTopology

__all__ = [
    "Hex",
    "HexGrid",
    "hex_distance",
    "AXIAL_DIRECTIONS",
    "ReusePattern",
    "Spectrum",
    "cluster_shift",
    "valid_cluster_sizes",
    "CellularTopology",
    "axial_to_xy",
    "xy_to_axial",
    "nearest_cell",
    "cell_center",
    "grid_bounds",
]
