"""Continuous 2-D geometry over the hex grid.

Maps the axial lattice to Cartesian coordinates (pointy-top hexagons of
circumradius ``size``), finds the serving cell of an arbitrary point
(exact cube-rounding, the inverse of the lattice map), and describes
the grid's bounding box — the substrate for the 2-D random-waypoint
mobility model where handoffs happen when a moving host *actually*
crosses a cell boundary rather than at exponential timer ticks.
"""

from __future__ import annotations

import math
from typing import Tuple

from .hexgrid import Hex, HexGrid

__all__ = [
    "axial_to_xy",
    "xy_to_axial",
    "nearest_cell",
    "cell_center",
    "grid_bounds",
]

SQRT3 = math.sqrt(3.0)


def axial_to_xy(h: Hex, size: float = 1.0) -> Tuple[float, float]:
    """Center of a pointy-top hex in Cartesian coordinates."""
    x = size * (SQRT3 * h.q + SQRT3 / 2.0 * h.r)
    y = size * (1.5 * h.r)
    return (x, y)


def xy_to_axial(x: float, y: float, size: float = 1.0) -> Hex:
    """Containing hex of a Cartesian point (exact cube rounding)."""
    qf = (SQRT3 / 3.0 * x - y / 3.0) / size
    rf = (2.0 / 3.0 * y) / size
    return _cube_round(qf, rf)


def _cube_round(qf: float, rf: float) -> Hex:
    sf = -qf - rf
    q, r, s = round(qf), round(rf), round(sf)
    dq, dr, ds = abs(q - qf), abs(r - rf), abs(s - sf)
    if dq > dr and dq > ds:
        q = -r - s
    elif dr > ds:
        r = -q - s
    return Hex(int(q), int(r))


def cell_center(grid: HexGrid, cell: int, size: float = 1.0) -> Tuple[float, float]:
    """Cartesian center of a cell id."""
    return axial_to_xy(grid.coord(cell), size)


def nearest_cell(grid: HexGrid, x: float, y: float, size: float = 1.0) -> int:
    """Cell id containing (x, y); clamps to the closest cell when the
    point lies outside the (planar) grid."""
    h = xy_to_axial(x, y, size)
    if grid.contains(h):
        return grid.cell_at(h)
    # Outside the parallelogram: fall back to the closest center.
    best, best_d = 0, float("inf")
    for cell in grid:
        cx, cy = cell_center(grid, cell, size)
        d = (cx - x) ** 2 + (cy - y) ** 2
        if d < best_d:
            best, best_d = cell, d
    return best


def grid_bounds(grid: HexGrid, size: float = 1.0) -> Tuple[float, float, float, float]:
    """Tight bounding box (xmin, ymin, xmax, ymax) of all cell centers,
    padded by one hex circumradius so hosts can roam the edge cells."""
    xs, ys = [], []
    for cell in grid:
        x, y = cell_center(grid, cell, size)
        xs.append(x)
        ys.append(y)
    pad = size
    return (min(xs) - pad, min(ys) - pad, max(xs) + pad, max(ys) + pad)
