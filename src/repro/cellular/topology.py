"""Bundled cellular topology: grid + reuse pattern + spectrum.

A :class:`CellularTopology` is the single object the protocol layer
needs: it knows every cell's interference region ``IN_i``, primary set
``PR_i``, and the global channel pool ``Spectrum``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from .hexgrid import HexGrid
from .spectrum import ReusePattern, Spectrum

__all__ = ["CellularTopology"]


class CellularTopology:
    """Immutable description of the cellular system under simulation.

    Parameters
    ----------
    rows, cols:
        Hex grid dimensions.
    num_channels:
        Size of the radio spectrum (paper's ``n``).
    cluster_size:
        Reuse cluster ``k`` (paper's implicit reuse pattern for PR sets).
    interference_radius:
        Reuse radius in cell hops; ``IN_i`` = all cells within this
        distance.  Defaults to ``min_cochannel_distance - 1``, the
        largest radius the reuse pattern safely supports.
    wrap:
        Toroidal grid (recommended for experiments; removes edge bias).
    channels_per_color:
        Optional demand-weighted static plan: explicit channel-pool
        size per reuse color (see ``analysis.planning``).  Default is
        the balanced split.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        num_channels: int,
        cluster_size: int = 7,
        interference_radius: Optional[int] = None,
        wrap: bool = False,
        channels_per_color: Optional[Dict[int, int]] = None,
    ) -> None:
        self.grid = HexGrid(rows, cols, wrap=wrap)
        self.pattern = ReusePattern(self.grid, cluster_size)
        self.spectrum = Spectrum(num_channels)
        if interference_radius is None:
            interference_radius = self.pattern.min_cochannel_distance() - 1
        self.interference_radius = interference_radius
        self.pattern.validate_against_radius(interference_radius)
        #: ``IN_i`` for every cell i.
        self.interference: Dict[int, FrozenSet[int]] = self.grid.interference_map(
            interference_radius
        )
        #: ``PR_i`` for every cell i.
        self.primaries: Dict[int, FrozenSet[int]] = self.spectrum.primary_sets(
            self.pattern, channels_per_color
        )

    @property
    def num_cells(self) -> int:
        return self.grid.num_cells

    @property
    def num_channels(self) -> int:
        return self.spectrum.num_channels

    def IN(self, cell: int) -> FrozenSet[int]:
        """Interference region of ``cell`` (excludes the cell itself)."""
        return self.interference[cell]

    def PR(self, cell: int) -> FrozenSet[int]:
        """Primary channel set of ``cell``."""
        return self.primaries[cell]

    def primary_capacity(self, cell: int) -> int:
        """Number of statically assigned channels of a cell."""
        return len(self.primaries[cell])

    def describe(self) -> str:
        """One-line human-readable summary."""
        g = self.grid
        sizes = {len(v) for v in self.interference.values()}
        return (
            f"{g.rows}x{g.cols} hex grid ({'torus' if g.wrap else 'plane'}), "
            f"{self.num_channels} channels, reuse k={self.pattern.cluster_size}, "
            f"interference radius {self.interference_radius} "
            f"(|IN| in {sorted(sizes)}), "
            f"{min(len(p) for p in self.primaries.values())}-"
            f"{max(len(p) for p in self.primaries.values())} primaries/cell"
        )
