"""Span-based tracing of channel-acquisition attempts.

Every ``request_channel`` call is one **span**: opened by
``request.begin``, optionally marked by ``request.serve`` (the moment
the per-MSS lock is acquired and the protocol starts working), closed
by ``request.end``.  The three events carry a per-MSS request id, so
begin/serve/end are paired exactly even when several requests of one
cell overlap in the queue (the setup-deadline path).

While a cell's request is being served, protocol-level probe events of
that cell — borrow rounds, searches, mode transitions, defers, ARQ
retries, round timeouts — are attached to the span as **child events**.
Events of a cell with no span in flight are recorded as free-standing
**instants** (mode transitions driven by releases, background ARQ
traffic): they still appear in the Chrome trace, just not inside a
span.

The tracer is a passive probe-bus subscriber: it never mutates
simulation state or schedules events, and it tolerates legacy bare-int
payloads (hand-driven tests) by ignoring what it cannot pair.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Span", "SpanTracer"]


def jsonify(value: Any) -> Any:
    """Recursively convert a probe payload to JSON-safe plain data."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(jsonify(v) for v in value)
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    return repr(value)


class Span:
    """One channel-acquisition attempt (see module docstring)."""

    __slots__ = (
        "cell",
        "req_id",
        "kind",
        "t_begin",
        "t_serve",
        "t_end",
        "channel",
        "events",
    )

    def __init__(self, cell: int, req_id: int, kind: str, t_begin: float):
        self.cell = cell
        self.req_id = req_id
        self.kind = kind
        self.t_begin = t_begin
        self.t_serve: Optional[float] = None
        self.t_end: Optional[float] = None
        self.channel: Optional[int] = None
        #: Child events: (time, probe kind, JSON-safe detail).
        self.events: List[Tuple[float, str, Any]] = []

    @property
    def granted(self) -> bool:
        return self.channel is not None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cell": self.cell,
            "req_id": self.req_id,
            "kind": self.kind,
            "t_begin": self.t_begin,
            "t_serve": self.t_serve,
            "t_end": self.t_end,
            "channel": self.channel,
            "granted": self.granted,
            "events": [list(e) for e in self.events],
        }


#: Probe kinds attached to the serving span of the event's cell.  The
#: value extracts the cell from the payload (all are tuples with the
#: acting cell first).
_CHILD_KINDS = (
    "round.begin",
    "round.end",
    "search.begin",
    "search.end",
    "mode.change",
    "fault.round_timeout",
    "fault.ack_timeout",
    "fault.retransmit",
    "fault.retry_exhausted",
)


class SpanTracer:
    """Pairs request.begin/serve/end into spans; attaches child events.

    Parameters
    ----------
    env:
        The simulation environment (probe bus).
    max_spans:
        Cap on *retained* closed spans.  Pairing continues beyond the
        cap (so ``span_stats`` stays exact); overflowing spans are
        dropped and counted instead of retained.
    """

    def __init__(self, env: Any, max_spans: int = 1_000_000) -> None:
        self.env = env
        self.max_spans = max_spans
        #: Closed spans in close order (deterministic).
        self.closed: List[Span] = []
        #: (cell, req_id) -> open span.
        self.open: Dict[Tuple[int, int], Span] = {}
        #: cell -> req_id currently being *served* (serve seen, no end).
        self._serving: Dict[int, int] = {}
        #: Free-standing instants: (time, probe kind, cell, detail).
        self.instants: List[Tuple[float, str, Optional[int], Any]] = []
        self.stats = {
            "opened": 0,
            "closed": 0,
            "dropped": 0,
            "malformed": 0,
            "orphan_children": 0,
        }
        env.subscribe("request.begin", self._on_begin)
        env.subscribe("request.serve", self._on_serve)
        env.subscribe("request.end", self._on_end)
        for kind in _CHILD_KINDS:
            env.subscribe(kind, self._make_child_handler(kind))

    # -- span lifecycle ----------------------------------------------------
    def _on_begin(self, now: float, payload) -> None:
        if not (isinstance(payload, tuple) and len(payload) >= 2):
            self.stats["malformed"] += 1
            return
        cell, req_id = payload[0], payload[1]
        kind = payload[2] if len(payload) > 2 else "?"
        self.open[(cell, req_id)] = Span(cell, req_id, kind, now)
        self.stats["opened"] += 1

    def _on_serve(self, now: float, payload) -> None:
        if not (isinstance(payload, tuple) and len(payload) >= 2):
            self.stats["malformed"] += 1
            return
        cell, req_id = payload[0], payload[1]
        span = self.open.get((cell, req_id))
        if span is None:
            self.stats["malformed"] += 1
            return
        span.t_serve = now
        self._serving[cell] = req_id

    def _on_end(self, now: float, payload) -> None:
        if not (isinstance(payload, tuple) and len(payload) >= 2):
            self.stats["malformed"] += 1
            return
        cell, req_id = payload[0], payload[1]
        span = self.open.pop((cell, req_id), None)
        if span is None:
            self.stats["malformed"] += 1
            return
        if self._serving.get(cell) == req_id:
            del self._serving[cell]
        span.t_end = now
        span.channel = payload[2] if len(payload) > 2 else None
        self.stats["closed"] += 1
        if len(self.closed) < self.max_spans:
            self.closed.append(span)
        else:
            self.stats["dropped"] += 1

    # -- child events --------------------------------------------------------
    def _make_child_handler(self, kind: str):
        def handler(now: float, payload) -> None:
            if isinstance(payload, tuple) and payload:
                cell = payload[0]
                detail: Any = payload[1:]
            elif isinstance(payload, int):
                cell = payload  # e.g. search.end carries the bare cell
                detail = ()
            else:
                cell = None
                detail = payload
            span = self._span_for(cell)
            if span is not None:
                span.events.append((now, kind, jsonify(detail)))
            else:
                self.stats["orphan_children"] += 1
                self.instants.append((now, kind, cell, jsonify(detail)))

        return handler

    def _span_for(self, cell: Optional[int]) -> Optional[Span]:
        if cell is None:
            return None
        req_id = self._serving.get(cell)
        if req_id is not None:
            return self.open.get((cell, req_id))
        return None

    # -- export --------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (picklable, JSON-safe) for :class:`ObsData`."""
        open_at_end = [
            span.to_dict()
            for span in sorted(
                self.open.values(), key=lambda s: (s.cell, s.req_id)
            )
        ]
        return {
            "spans": [span.to_dict() for span in self.closed],
            "open_at_end": open_at_end,
            "instants": [list(i) for i in self.instants],
            "stats": dict(self.stats),
        }
