"""Run-artifact writer: one self-contained directory per observed run.

:func:`write_run_artifacts` turns a finished
:class:`~repro.harness.runner.Report` whose ``obs`` field carries
:class:`~repro.obs.observer.ObsData` into a run directory::

    <dir>/
      scenario.json    # the exact Scenario that ran (reproducible)
      trace.json       # Chrome trace_event JSON — load in Perfetto
                       # (ui.perfetto.dev) or chrome://tracing
      timeseries.csv   # per-cell samples, long form (spreadsheet-ready)
      timeseries.json  # the same series, nested by cell
      kernel.json      # DES-kernel vitals (events/s, heap depth, ...)
      report.md        # human-readable run report: summary, Table 1-
                       # style cost breakdown, ASCII mode timeline
      manifest.json    # file inventory for tooling

The trace uses **1 simulated time unit = 1 ms** (`ts` is microseconds
in the trace_event spec, sim times are multiplied by 1000), one thread
per cell.  See docs/OBSERVABILITY.md for the full format spec and a
walkthrough of reading a run directory.

This module imports only plain-data structures at module level; the
analytical model (``repro.analysis``) is imported lazily inside the
report writer so the obs package stays import-light and cycle-free.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from .timeseries import mode_glyph

__all__ = ["trace_events", "write_run_artifacts", "write_manifest"]

#: Trace timestamp scale: simulated time units -> trace microseconds.
#: 1000 makes one unit of T read as one millisecond in Perfetto.
TRACE_SCALE = 1000.0


# ---------------------------------------------------------------------------
# Chrome trace_event generation
# ---------------------------------------------------------------------------
def trace_events(report: Any) -> List[Dict[str, Any]]:
    """Flatten a report's ObsData into Chrome trace_event dicts."""
    obs = report.obs
    scenario = report.scenario
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "process_name",
            "args": {
                "name": f"{scenario.scheme} load={scenario.offered_load} "
                f"seed={scenario.seed}"
            },
        }
    ]
    cells = sorted(
        {span["cell"] for span in obs.spans}
        | {int(c) for c in obs.series.get("cells", {})}
    )
    for cell in cells:
        events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": cell,
                "name": "thread_name",
                "args": {"name": f"cell {cell}"},
            }
        )

    for span in obs.spans + obs.open_spans:
        t_begin = span["t_begin"]
        t_end = span["t_end"] if span["t_end"] is not None else t_begin
        name = f"acquire[{span['kind']}]"
        events.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": span["cell"],
                "name": name,
                "cat": "acquisition",
                "ts": t_begin * TRACE_SCALE,
                "dur": (t_end - t_begin) * TRACE_SCALE,
                "args": {
                    "req_id": span["req_id"],
                    "channel": span["channel"],
                    "granted": span["granted"],
                    "closed": span["t_end"] is not None,
                },
            }
        )
        if span["t_serve"] is not None and t_end >= span["t_serve"]:
            events.append(
                {
                    "ph": "X",
                    "pid": 0,
                    "tid": span["cell"],
                    "name": "serve",
                    "cat": "acquisition",
                    "ts": span["t_serve"] * TRACE_SCALE,
                    "dur": (t_end - span["t_serve"]) * TRACE_SCALE,
                    "args": {"req_id": span["req_id"]},
                }
            )
        for t, kind, detail in span["events"]:
            events.append(
                {
                    "ph": "i",
                    "pid": 0,
                    "tid": span["cell"],
                    "name": kind,
                    "cat": "protocol",
                    "ts": t * TRACE_SCALE,
                    "s": "t",
                    "args": {"detail": detail},
                }
            )
    for t, kind, cell, detail in obs.instants:
        if cell is None:
            continue
        events.append(
            {
                "ph": "i",
                "pid": 0,
                "tid": cell,
                "name": kind,
                "cat": "protocol",
                "ts": t * TRACE_SCALE,
                "s": "t",
                "args": {"detail": detail},
            }
        )

    # System-wide counters: total occupancy and borrowing cells per
    # sample (deterministic), heap depth from the kernel profiler.
    series = obs.series
    if series.get("times"):
        cell_series = series["cells"]
        for i, t in enumerate(series["times"]):
            total = sum(c["occupancy"][i] for c in cell_series.values())
            borrowing = sum(
                1 for c in cell_series.values() if c["mode"][i] > 0
            )
            events.append(
                {
                    "ph": "C",
                    "pid": 0,
                    "tid": 0,
                    "name": "system",
                    "ts": t * TRACE_SCALE,
                    "args": {
                        "channels_in_use": total,
                        "cells_borrowing": borrowing,
                    },
                }
            )
    kernel = obs.kernel
    if kernel.get("sim_times"):
        for t, depth in zip(kernel["sim_times"], kernel["heap_depth"]):
            events.append(
                {
                    "ph": "C",
                    "pid": 0,
                    "tid": 0,
                    "name": "kernel",
                    "ts": t * TRACE_SCALE,
                    "args": {"heap_depth": depth},
                }
            )
    return events


# ---------------------------------------------------------------------------
# Markdown report
# ---------------------------------------------------------------------------
def _md_table(headers: List[str], rows: List[List[Any]]) -> List[str]:
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join(" --- " for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(v) for v in row) + " |")
    return lines


def _model_prediction(report: Any) -> Optional[Dict[str, float]]:
    """Table 1 model columns at the run's measured parameters.

    Mirrors benchmarks/test_table1_general.py: evaluate the §5 formulas
    with m, ξ and N_borrow measured from this run.  Returns None when
    the scheme has no model or the measured parameters fall outside the
    model's domain (e.g. a run too short to ground ξ).
    """
    from ..analysis import MODELS, ModelParams  # lazy: keeps obs light

    scheme = report.scenario.scheme
    model = MODELS.get(scheme)
    if model is None:
        return None
    xi = report.xi
    sum_xi = sum(xi.values())
    m = report.mean_attempts
    try:
        if scheme == "basic_search":
            params = ModelParams(
                N=_region_size(report.scenario), N_search=1.0, m=0.0,
                xi1=0, xi2=0, xi3=1, alpha=report.scenario.alpha,
            )
        elif scheme == "basic_update":
            params = ModelParams(
                N=_region_size(report.scenario), m=m, alpha=max(m, 25),
                xi1=0, xi2=1, xi3=0,
            )
        elif scheme == "advanced_update":
            xi1 = xi["local"] if sum_xi else 1.0
            params = ModelParams(
                N=_region_size(report.scenario), n_p=3.0, m=max(m, 1.0),
                alpha=max(m, 25), xi1=xi1, xi2=1 - xi1, xi3=0,
            )
        elif scheme == "adaptive":
            norm = sum_xi or 1.0
            params = ModelParams(
                N=_region_size(report.scenario),
                N_search=1.0,
                N_borrow=report.measured_n_borrow,
                m=m,
                alpha=max(report.scenario.alpha, m),
                xi1=xi["local"] / norm if sum_xi else 1.0,
                xi2=xi["update"] / norm if sum_xi else 0.0,
                xi3=xi["search"] / norm if sum_xi else 0.0,
            )
        else:  # fixed
            params = ModelParams(N=_region_size(report.scenario))
    except ValueError:
        return None
    return {
        "messages": model.message_complexity(params),
        "time": model.acquisition_time(params),
        "m": params.m,
        "xi1": params.xi1,
        "xi2": params.xi2,
        "xi3": params.xi3,
    }


def _region_size(scenario: Any) -> float:
    """Mean interference-region size |IN| of the scenario's topology."""
    from ..cellular import CellularTopology  # lazy

    topo = CellularTopology(
        scenario.rows,
        scenario.cols,
        num_channels=scenario.num_channels,
        cluster_size=scenario.cluster_size,
        interference_radius=scenario.interference_radius,
        wrap=scenario.wrap,
        channels_per_color=scenario.channels_per_color,
    )
    sizes = [len(topo.IN(cell)) for cell in topo.grid]
    return sum(sizes) / len(sizes) if sizes else 0.0


def _mode_timeline(obs: Any, timeline_cells: int, width: int = 72) -> List[str]:
    """ASCII mode timeline of the busiest borrowers, from the series."""
    series = obs.series
    times = series.get("times") or []
    if not times:
        return ["(no time-series samples)"]
    cells = series["cells"]

    def borrow_fraction(data: Dict[str, Any]) -> float:
        modes = data["mode"]
        return sum(1 for v in modes if v > 0) / len(modes) if modes else 0.0

    ranked = sorted(
        cells, key=lambda c: (-borrow_fraction(cells[c]), int(c))
    )
    chosen = sorted(ranked[:timeline_cells], key=int)
    n = len(times)
    stride = max(1, n // width)
    label_w = max(len(str(c)) for c in chosen)
    lines = ["```"]
    for cell in chosen:
        modes = cells[cell]["mode"]
        row = "".join(mode_glyph(modes[i]) for i in range(0, n, stride))
        lines.append(f"{str(cell).rjust(label_w)} {row}")
    lines.append(
        f"{' ' * label_w} (t = {times[0]:g} .. {times[-1]:g}; "
        ". local, b idle-borrowing, U update, S search, ? unknown)"
    )
    lines.append("```")
    return lines


def _render_report_md(report: Any) -> str:
    obs = report.obs
    s = report.scenario
    xi = report.xi
    lines = [
        f"# Run report — {s.scheme}",
        "",
        f"*Generated by `repro.obs` from a traced run "
        f"(seed {s.seed}, {s.offered_load} Erlang/cell, "
        f"duration {s.duration:g}, warmup {s.warmup:g}).  "
        "See docs/OBSERVABILITY.md for how to read this directory.*",
        "",
        "## Summary",
        "",
    ]
    lines += _md_table(
        ["metric", "value"],
        [
            ["requests offered", report.offered],
            ["granted", report.granted],
            ["drop rate", f"{report.drop_rate:.4f}"],
            ["new-call block rate", f"{report.new_call_block_rate:.4f}"],
            ["handoff failure rate", f"{report.handoff_failure_rate:.4f}"],
            ["mean acquisition time (T)", f"{report.mean_acquisition_time:.3f}"],
            ["p95 acquisition time (T)", f"{report.p95_acquisition_time:.3f}"],
            ["messages per acquisition", f"{report.messages_per_acquisition:.2f}"],
            ["mean attempts (m)", f"{report.mean_attempts:.2f}"],
            ["mode changes", report.mode_changes],
            ["fairness index", f"{report.fairness_index:.4f}"],
            ["interference violations", report.violations],
        ],
    )
    lines += [
        "",
        "## Cost breakdown (paper Table 1 columns)",
        "",
        "Model columns evaluate the paper's §5 closed forms at this "
        "run's measured parameters (m, ξ, N_borrow); sim columns are "
        "measured end to end.",
        "",
    ]
    prediction = _model_prediction(report)
    if prediction is not None:
        lines += _md_table(
            [
                "scheme",
                "msgs (model)",
                "msgs (sim)",
                "time (model)",
                "time (sim)",
                "m",
                "ξ1",
                "ξ2",
                "ξ3",
            ],
            [
                [
                    s.scheme,
                    round(prediction["messages"], 1),
                    round(report.messages_per_acquisition, 1),
                    round(prediction["time"], 2),
                    round(report.mean_acquisition_time, 2),
                    round(prediction["m"], 2),
                    round(prediction["xi1"], 3),
                    round(prediction["xi2"], 3),
                    round(prediction["xi3"], 3),
                ]
            ],
        )
    else:
        lines += _md_table(
            ["scheme", "msgs (sim)", "time (sim)", "m", "ξ1", "ξ2", "ξ3"],
            [
                [
                    s.scheme,
                    round(report.messages_per_acquisition, 1),
                    round(report.mean_acquisition_time, 2),
                    round(report.mean_attempts, 2),
                    round(xi["local"], 3),
                    round(xi["update"], 3),
                    round(xi["search"], 3),
                ]
            ],
        )
        lines += ["", "(no analytical model for this run's parameters)"]

    lane = getattr(report, "fastlane", None)
    if lane:
        promotions = lane.get("promotions", {})
        lines += [
            "",
            "## Fast lane (model vs sim divergence)",
            "",
            "Fluid cells were advanced analytically (Erlang-loss model) "
            "instead of event by event; this table bounds how far the "
            "fluid model drifted from the discrete dynamics it replaced "
            "(see DESIGN.md's fast-lane section).",
            "",
        ]
        lines += _md_table(
            ["metric", "value"],
            [
                ["fluid fraction (cell-time)", f"{lane['fluid_fraction']:.3f}"],
                ["demotions", lane["demotions"]],
                [
                    "promotions (message/spike/borrow)",
                    "/".join(
                        str(promotions.get(r, 0))
                        for r in ("message", "spike", "borrow")
                    ),
                ],
                ["fluid arrivals", lane["arrivals"]],
                ["fluid blocked", lane["blocked"]],
                ["calls materialized", lane["materialized"]],
                ["calls shed at materialization", lane["shed"]],
                ["block rate (fluid measured)", f"{lane['measured_block_rate']:.4f}"],
                ["block rate (Erlang-B model)", f"{lane['model_block_rate']:.4f}"],
                ["block rate |Δ|", f"{lane['block_rate_abs_err']:.4f}"],
                ["occupancy at promotion (mean)", f"{lane['occupancy_mean']:.3f}"],
                ["occupancy model (carried load)", f"{lane['occupancy_model_mean']:.3f}"],
                ["occupancy |Δ|", f"{lane['occupancy_abs_err']:.3f}"],
            ],
        )

    if obs is not None and obs.span_stats:
        stats = obs.span_stats
        lines += [
            "",
            "## Acquisition spans",
            "",
            f"{stats.get('opened', 0)} spans opened, "
            f"{stats.get('closed', 0)} closed "
            f"({len(obs.open_spans)} still open at the horizon, "
            f"{stats.get('dropped', 0)} over the retention cap, "
            f"{stats.get('orphan_children', 0)} events outside any span).  "
            "Full detail in `trace.json` — open it at "
            "<https://ui.perfetto.dev>.",
        ]

    if obs is not None and obs.series.get("times"):
        timeline_cells = (obs.config or {}).get("timeline_cells", 12)
        lines += ["", "## Mode timeline (busiest borrowers)", ""]
        lines += _mode_timeline(obs, timeline_cells)

    if obs is not None and obs.kernel.get("sim_times"):
        kernel = obs.kernel
        rates = [r for r in kernel.get("events_per_s", []) if r]
        occ = [o for o in kernel.get("occupancy", []) if o is not None]
        lines += [
            "",
            "## Kernel vitals",
            "",
            "*(events and heap depth are deterministic; the rate and "
            "occupancy columns are wall-clock measurements and vary "
            "run to run)*",
            "",
        ]
        lines += _md_table(
            ["metric", "value"],
            [
                ["events processed", kernel.get("total_events", 0)],
                ["max heap depth", kernel.get("max_heap_depth", 0)],
                [
                    "events/s (median interval)",
                    sorted(rates)[len(rates) // 2] if rates else "n/a",
                ],
                [
                    "event-loop occupancy (median)",
                    sorted(occ)[len(occ) // 2] if occ else "n/a",
                ],
            ],
        )

    if report.faults_injected:
        lines += ["", "## Faults", ""]
        lines += _md_table(
            ["kind", "injected"],
            [[k, v] for k, v in sorted(report.faults_injected.items())],
        )
        lines += [
            "",
            f"{sum(report.faults_recovered.values())} recovered, "
            f"{report.retries} ARQ retries "
            f"({report.retry_exhausted} exhausted).",
        ]
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# CSV / JSON series
# ---------------------------------------------------------------------------
def _series_csv(obs: Any) -> str:
    lines = ["time,cell,occupancy,mode,nfc_predicted,neighborhood_load"]
    series = obs.series
    times = series.get("times") or []
    for cell in sorted(series.get("cells", {}), key=int):
        data = series["cells"][cell]
        for i, t in enumerate(times):
            nfc = data["nfc_predicted"][i]
            lines.append(
                f"{t:g},{cell},{data['occupancy'][i]},{data['mode'][i]},"
                f"{'' if nfc is None else round(nfc, 4)},"
                f"{data['neighborhood_load'][i]}"
            )
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------
def write_run_artifacts(report: Any, out_dir: str) -> List[str]:
    """Write the full artifact set for one traced report.

    Returns the (sorted) relative names of the files written.  Raises
    ``ValueError`` if the report carries no ObsData — the run was not
    traced, so there is nothing to write.
    """
    if getattr(report, "obs", None) is None:
        raise ValueError(
            "report has no observability data; run with an enabled "
            "Scenario.obs (e.g. --trace) first"
        )
    os.makedirs(out_dir, exist_ok=True)
    obs = report.obs
    written: List[str] = []

    def dump(name: str, payload: Any) -> None:
        with open(os.path.join(out_dir, name), "w") as fh:
            if name.endswith(".json"):
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
            else:
                fh.write(payload)
        written.append(name)

    dump("scenario.json", json.loads(report.scenario.to_json()))
    dump(
        "trace.json",
        {"traceEvents": trace_events(report), "displayTimeUnit": "ms"},
    )
    dump("timeseries.csv", _series_csv(obs))
    dump("timeseries.json", obs.series)
    dump("kernel.json", obs.kernel)
    dump("report.md", _render_report_md(report))
    manifest = {
        "files": sorted(written),
        "scheme": report.scenario.scheme,
        "seed": report.scenario.seed,
        "spans": obs.span_stats,
    }
    dump("manifest.json", manifest)
    return sorted(written)


def write_manifest(trace_dir: str, entries: List[Dict[str, Any]]) -> str:
    """Write the top-level manifest of a multi-cell trace directory."""
    os.makedirs(trace_dir, exist_ok=True)
    path = os.path.join(trace_dir, "manifest.json")
    with open(path, "w") as fh:
        json.dump({"cells": entries}, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
