"""Per-cell time-series recorder + shared mode-glyph helpers.

The :class:`TimeSeriesRecorder` polls every station on a fixed cadence
and records, per cell:

* ``occupancy`` — channels in use (``len(Use_i)``);
* ``mode`` — the station's mode as an int (non-adaptive schemes and
  transient oddities coerce via :func:`coerce_mode`);
* ``nfc_predicted`` — the adaptive scheme's NFC prediction of the
  free-primary count one round-trip ahead (the Fig. 6 quantity that
  drives mode transitions); ``None`` per-sample for other schemes;
* ``neighborhood_load`` — mean occupancy over the interference region
  ``IN_i`` (the load the cell's borrowing machinery actually reacts to).

The glyph helpers (:data:`MODE_GLYPHS`, :func:`mode_glyph`,
:func:`coerce_mode`) are the single source of truth for rendering mode
values as ASCII timelines; ``repro.harness.timeline.ModeSampler`` and
the run-report writer both use them, so an unknown or transient mode
value renders as ``?`` everywhere instead of raising.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Any, Dict, List, Mapping, Optional

__all__ = [
    "MODE_GLYPHS",
    "UNKNOWN_MODE",
    "coerce_mode",
    "mode_glyph",
    "TimeSeriesRecorder",
]

#: One ASCII glyph per mode value: ``.`` local, ``b`` borrowing-idle,
#: ``U`` update round in flight, ``S`` search in flight.
MODE_GLYPHS: Mapping[int, str] = MappingProxyType(
    {0: ".", 1: "b", 2: "U", 3: "S"}
)

#: Sentinel stored for mode values that are not (coercible to) a known
#: mode int — e.g. the string ``"down"`` a future crash-aware station
#: might expose, or a float mid-transition.
UNKNOWN_MODE = -1


def coerce_mode(value: Any) -> int:
    """Best-effort mode int for ``value``; :data:`UNKNOWN_MODE` if odd.

    Accepts ints, IntEnums, numeric strings and floats with integral
    value.  Anything else — including unknown mode numbers — maps to
    :data:`UNKNOWN_MODE` rather than raising, so samplers survive
    stations exposing transient or scheme-specific mode values.
    """
    try:
        ivalue = int(value)
    except (TypeError, ValueError):
        return UNKNOWN_MODE
    if isinstance(value, float) and value != ivalue:
        return UNKNOWN_MODE
    return ivalue if ivalue in MODE_GLYPHS else UNKNOWN_MODE


def mode_glyph(value: Any) -> str:
    """The timeline glyph for a (possibly raw) mode value; ``?`` if odd."""
    return MODE_GLYPHS.get(coerce_mode(value), "?")


class TimeSeriesRecorder:
    """Samples per-cell state on a fixed simulated-time cadence.

    Parameters
    ----------
    env, stations:
        The simulation environment and its ``cell -> MSS`` map.
    interval:
        Sampling cadence in simulated time units.
    horizon:
        Stop sampling at this simulated time.  Required so drain-style
        runs (``env.run()`` until the queue empties) terminate: an
        unbounded sampler would keep the queue alive forever.
    """

    def __init__(
        self,
        env: Any,
        stations: Dict[int, Any],
        interval: float,
        horizon: float,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.env = env
        self.stations = stations
        self.interval = interval
        self.horizon = horizon
        self.times: List[float] = []
        self.occupancy: Dict[int, List[int]] = {c: [] for c in stations}
        self.mode: Dict[int, List[int]] = {c: [] for c in stations}
        self.nfc_predicted: Dict[int, List[Optional[float]]] = {
            c: [] for c in stations
        }
        self.neighborhood_load: Dict[int, List[float]] = {
            c: [] for c in stations
        }
        env.process(self._sampler(), name="obs-timeseries")

    def _sampler(self):
        env = self.env
        stations = self.stations
        while env.now < self.horizon:
            now = env.now
            self.times.append(now)
            for cell, station in stations.items():
                self.occupancy[cell].append(len(station.use))
                self.mode[cell].append(
                    coerce_mode(getattr(station, "mode", 0))
                )
                # The column name "nfc_predicted" predates the policy
                # registry; it now carries whatever the station's mode
                # policy forecasts (None for non-predictive policies).
                policy = getattr(station, "policy", None)
                if policy is not None:
                    predicted = policy.predict_at(now)
                else:
                    predicted = None
                self.nfc_predicted[cell].append(predicted)
                # In a sharded run this kernel hosts only its band of
                # the grid; a frontier cell's neighborhood load averages
                # its same-shard neighbors (remote occupancy is not
                # observable live, and this series is diagnostic only).
                neighbors = [
                    stations[j]
                    for j in getattr(station, "IN", ())
                    if j in stations
                ]
                if neighbors:
                    load = sum(
                        len(s.use) for s in neighbors
                    ) / len(neighbors)
                else:
                    load = 0.0
                self.neighborhood_load[cell].append(round(load, 4))
            yield env.timeout(self.interval)

    # -- export --------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (picklable, JSON-safe) for :class:`ObsData`."""
        return {
            "interval": self.interval,
            "times": list(self.times),
            "cells": {
                cell: {
                    "occupancy": self.occupancy[cell],
                    "mode": self.mode[cell],
                    "nfc_predicted": self.nfc_predicted[cell],
                    "neighborhood_load": self.neighborhood_load[cell],
                }
                for cell in sorted(self.stations)
            },
        }
