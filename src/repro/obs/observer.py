"""The per-run observer: builds the collectors, harvests :class:`ObsData`.

``build_simulation`` constructs one :class:`Observer` when the
scenario's ``obs`` config is enabled; after the run,
``Report.from_simulation`` calls :meth:`Observer.collect` and stores
the resulting :class:`ObsData` on ``Report.obs``.  ObsData is a plain
data container — picklable (it rides Reports through the
multiprocessing pool and the result cache) and JSON-safe — so artifact
writing (:mod:`repro.obs.artifacts`) can happen later, in the parent
process, wherever the run directory should land.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .config import ObsConfig
from .kernel import KernelProfiler
from .spans import SpanTracer
from .timeseries import TimeSeriesRecorder

__all__ = ["ObsData", "Observer"]


@dataclass
class ObsData:
    """Everything one run's observability layer collected (plain data)."""

    #: The :class:`ObsConfig` that produced this data, as a dict.
    config: Dict[str, Any] = field(default_factory=dict)
    #: Closed acquisition spans (see :class:`repro.obs.spans.Span`).
    spans: List[Dict[str, Any]] = field(default_factory=list)
    #: Spans still open when the run ended (halted mid-traffic).
    open_spans: List[Dict[str, Any]] = field(default_factory=list)
    #: Free-standing instants: [time, kind, cell, detail].
    instants: List[List[Any]] = field(default_factory=list)
    #: Span-pairing accounting: opened/closed/dropped/malformed/….
    span_stats: Dict[str, int] = field(default_factory=dict)
    #: Per-cell time series (see ``TimeSeriesRecorder.to_dict``).
    series: Dict[str, Any] = field(default_factory=dict)
    #: Kernel vitals (see ``KernelProfiler.to_dict``).
    kernel: Dict[str, Any] = field(default_factory=dict)


class Observer:
    """Attaches the configured collectors to a freshly built simulation.

    Parameters
    ----------
    env, stations:
        The simulation environment and its ``cell -> MSS`` map.
    config:
        The scenario's :class:`ObsConfig`.
    duration:
        Scenario horizon; bounds the sampling processes so drain-style
        runs still terminate.
    network:
        Optional network, for the kernel profiler's message counters.
    """

    def __init__(
        self,
        env: Any,
        stations: Dict[int, Any],
        config: ObsConfig,
        duration: float,
        network: Optional[Any] = None,
    ) -> None:
        self.config = config
        self.tracer: Optional[SpanTracer] = None
        self.recorder: Optional[TimeSeriesRecorder] = None
        self.profiler: Optional[KernelProfiler] = None
        if config.spans:
            self.tracer = SpanTracer(env, max_spans=config.max_spans)
        if config.timeseries:
            self.recorder = TimeSeriesRecorder(
                env, stations, config.sample_interval, horizon=duration
            )
        if config.kernel:
            self.profiler = KernelProfiler(
                env, config.sample_interval, horizon=duration, network=network
            )

    def collect(self) -> ObsData:
        """Harvest everything collected into one picklable container."""
        data = ObsData(config=self.config.to_dict())
        if self.tracer is not None:
            traced = self.tracer.to_dict()
            data.spans = traced["spans"]
            data.open_spans = traced["open_at_end"]
            data.instants = traced["instants"]
            data.span_stats = traced["stats"]
        if self.recorder is not None:
            data.series = self.recorder.to_dict()
        if self.profiler is not None:
            data.kernel = self.profiler.to_dict()
        return data
