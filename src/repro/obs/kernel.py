"""Lightweight DES-kernel profiling for run artifacts.

A :class:`KernelProfiler` samples the engine's vitals on the
observability cadence so perf regressions are diagnosable from a run
artifact instead of a rerun:

* **events processed** — the engine's monotone event-id counter; the
  per-interval delta is the event rate;
* **heap depth** — pending events in the scheduler queue (memory
  pressure and lookahead of the run);
* **event-loop occupancy** — CPU seconds / wall seconds per interval
  (a loop spending wall time outside CPU is blocked on something
  other than simulation);
* **messages by kind** — the network's ``sent_by_kind`` counters, whose
  per-interval deltas show which protocol phase dominates.

Simulation-time quantities (event counts, heap depth, message counts)
are deterministic; the wall/CPU columns are measurement noise by nature
and are kept in a clearly labeled section of the report.  This module
is observability-layer code, outside the SIM001 wall-clock ban on the
kernel itself.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

__all__ = ["KernelProfiler"]


class KernelProfiler:
    """Samples engine vitals every ``interval`` simulated time units."""

    def __init__(
        self,
        env: Any,
        interval: float,
        horizon: float,
        network: Optional[Any] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.env = env
        self.interval = interval
        self.horizon = horizon
        self.network = network
        self.sim_times: List[float] = []
        self.events: List[int] = []
        self.heap_depth: List[int] = []
        self.wall: List[float] = []
        self.cpu: List[float] = []
        self.messages_by_kind: List[Dict[str, int]] = []
        env.process(self._sampler(), name="obs-kernel")

    def _sampler(self):
        env = self.env
        while env.now < self.horizon:
            self.sim_times.append(env.now)
            self.events.append(env._eid)
            self.heap_depth.append(len(env._queue))
            self.wall.append(time.perf_counter())
            self.cpu.append(time.process_time())
            if self.network is not None:
                self.messages_by_kind.append(dict(self.network.sent_by_kind))
            yield env.timeout(self.interval)

    # -- export --------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form with derived per-interval rates.

        ``events``/``heap_depth``/``messages_by_kind`` are
        deterministic; ``events_per_s``/``occupancy`` derive from wall
        and CPU clocks and vary run to run.
        """
        rates: List[Optional[int]] = []
        occupancy: List[Optional[float]] = []
        for i in range(1, len(self.sim_times)):
            dwall = self.wall[i] - self.wall[i - 1]
            dcpu = self.cpu[i] - self.cpu[i - 1]
            devents = self.events[i] - self.events[i - 1]
            rates.append(int(devents / dwall) if dwall > 0 else None)
            occupancy.append(round(dcpu / dwall, 4) if dwall > 0 else None)
        message_deltas: List[Dict[str, int]] = []
        for i in range(1, len(self.messages_by_kind)):
            prev, cur = self.messages_by_kind[i - 1], self.messages_by_kind[i]
            delta = {
                kind: cur[kind] - prev.get(kind, 0)
                for kind in cur
                if cur[kind] - prev.get(kind, 0)
            }
            message_deltas.append(delta)
        return {
            "interval": self.interval,
            "sim_times": list(self.sim_times),
            "events": list(self.events),
            "heap_depth": list(self.heap_depth),
            "events_per_s": rates,
            "occupancy": occupancy,
            "messages_by_kind_delta": message_deltas,
            "total_events": self.events[-1] if self.events else 0,
            "max_heap_depth": max(self.heap_depth, default=0),
        }
