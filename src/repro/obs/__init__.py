"""Unified observability layer: spans, time-series, run artifacts.

Everything here rides the DES kernel's probe bus and is **off by
default**: without an enabled :class:`ObsConfig` on the scenario, no
observer is constructed, no probe is subscribed, and the kernel's
``if not probes: return`` fast path keeps the hot loop untouched.

Layering: this package imports only the simulation layer (never the
harness — the harness imports *us*), and artifact writing pulls the
analysis layer lazily.

Quick start::

    from repro.harness import Scenario, run_scenario
    from repro.obs import ObsConfig, write_run_artifacts

    report = run_scenario(Scenario(obs=ObsConfig()))
    write_run_artifacts(report, "run-artifacts")

or, equivalently, ``python -m repro --trace run-artifacts``.  See
docs/OBSERVABILITY.md for the probe-event catalog and format specs and
docs/TUTORIAL.md for an end-to-end walkthrough.
"""

from .artifacts import trace_events, write_manifest, write_run_artifacts
from .config import ObsConfig
from .kernel import KernelProfiler
from .observer import ObsData, Observer
from .spans import Span, SpanTracer
from .timeseries import (
    MODE_GLYPHS,
    TimeSeriesRecorder,
    UNKNOWN_MODE,
    coerce_mode,
    mode_glyph,
)

__all__ = [
    "ObsConfig",
    "Observer",
    "ObsData",
    "Span",
    "SpanTracer",
    "TimeSeriesRecorder",
    "KernelProfiler",
    "write_run_artifacts",
    "write_manifest",
    "trace_events",
    "MODE_GLYPHS",
    "UNKNOWN_MODE",
    "coerce_mode",
    "mode_glyph",
]
