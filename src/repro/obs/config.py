"""Observability configuration.

An :class:`ObsConfig` attached to a
:class:`~repro.harness.config.Scenario` (its ``obs`` field) switches
the unified observability layer on for that run: the span tracer, the
per-cell time-series recorder and the kernel profiler (see
``docs/OBSERVABILITY.md``).  It deliberately contains *collection*
knobs only — where artifacts land on disk is a runtime decision
(``run_cells(..., trace_dir=...)`` / ``python -m repro --trace DIR``),
so two runs that observed the same things hash to the same result-cache
key regardless of where their artifacts were written.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict

__all__ = ["ObsConfig"]


@dataclass(frozen=True)
class ObsConfig:
    """What to observe during a run (all off ⇔ no ``obs`` on the scenario).

    Parameters
    ----------
    enabled:
        Master switch.  ``False`` behaves exactly like ``obs=None``:
        no observer object is built and the hot path is untouched.
    sample_interval:
        Cadence (simulated time units) of the time-series recorder and
        the kernel profiler.
    spans, timeseries, kernel:
        Per-collector switches.
    max_spans:
        Safety cap on recorded acquisition spans; spans beyond the cap
        are counted (``span_stats["dropped"]``) rather than silently
        lost.
    timeline_cells:
        How many cells the markdown report's ASCII mode timeline shows
        (the busiest borrowers are picked, deterministically).
    """

    enabled: bool = True
    sample_interval: float = 50.0
    spans: bool = True
    timeseries: bool = True
    kernel: bool = True
    max_spans: int = 1_000_000
    timeline_cells: int = 12

    def __post_init__(self) -> None:
        if self.sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        if self.max_spans < 0:
            raise ValueError("max_spans cannot be negative")
        if self.timeline_cells < 1:
            raise ValueError("timeline_cells must be >= 1")

    def with_(self, **overrides: Any) -> "ObsConfig":
        """A copy with fields replaced."""
        return replace(self, **overrides)

    # -- (de)serialization (mirrors Scenario/FaultPlan) --------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict; feeds scenario serialization and cache keys."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ObsConfig":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown obs config fields: {sorted(unknown)}")
        return cls(**data)
