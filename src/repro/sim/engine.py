"""Deterministic discrete-event simulation environment.

The :class:`Environment` owns the event queue and the simulation clock.
Events scheduled for the same time are processed in (priority,
insertion-order) sequence, so a simulation with a fixed seed is fully
reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Tuple

from .events import NORMAL, AllOf, AnyOf, Event, Process, Timeout

__all__ = ["Environment", "EmptySchedule", "StopSimulation", "ProbeCallback"]

#: A probe callback: called as ``callback(now, payload)``.
ProbeCallback = Callable[[float, Any], None]


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when the queue is exhausted."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run` at an event."""


class Environment:
    """Execution environment for a discrete-event simulation.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (default ``0.0``).
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: Probe subscribers by event kind (see :meth:`subscribe`).
        self._probes: Dict[str, List[ProbeCallback]] = {}

    # -- probes (observation hooks) ---------------------------------------
    #
    # Components of the simulation announce notable occurrences through
    # ``emit(kind, payload)``; observers (sanitizers, tracers) register
    # with ``subscribe(kind, callback)``.  An emit with no subscriber is
    # a single dict lookup, so instrumented code paths stay cheap when
    # nothing is listening.  Probes are observation-only: callbacks must
    # not mutate simulation state or schedule events.
    def subscribe(self, kind: str, callback: ProbeCallback) -> None:
        """Register ``callback`` for probe events of ``kind``."""
        self._probes.setdefault(kind, []).append(callback)

    def unsubscribe(self, kind: str, callback: ProbeCallback) -> None:
        """Remove a previously registered probe callback."""
        callbacks = self._probes.get(kind)
        if callbacks is None or callback not in callbacks:
            raise ValueError(f"callback not subscribed to {kind!r}")
        callbacks.remove(callback)
        if not callbacks:
            del self._probes[kind]

    def emit(self, kind: str, payload: Any = None) -> None:
        """Deliver a probe event to every subscriber of ``kind``."""
        callbacks = self._probes.get(kind)
        if callbacks:
            now = self._now
            for callback in tuple(callbacks):
                callback(now, payload)

    # -- clock & introspection --------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between resumptions)."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def __len__(self) -> int:
        return len(self._queue)

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event triggering ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Put a triggered event on the queue ``delay`` units from now."""
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    # -- execution ------------------------------------------------------------
    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`EmptySchedule` if no events remain, and re-raises
        any un-defused event failure (a crashed process nobody waited on).
        """
        try:
            when, _prio, _eid, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        self._now = when
        callbacks = event.callbacks
        event.callbacks = None  # late callback registration is a bug
        event._processed = True
        assert callbacks is not None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # Nobody handled the failure: surface it to the caller.
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise RuntimeError(f"unhandled failed event with value {exc!r}")

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the queue empties;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed, returning
          its value (re-raising its exception on failure).
        """
        if until is None:
            stop: Optional[Event] = None
        elif isinstance(until, Event):
            stop = until
            if stop._processed:
                return stop._value if stop._ok else self._reraise(stop)
            assert stop.callbacks is not None
            stop.callbacks.append(self._stop_callback)
        else:
            at = float(until)
            if at < self._now:
                raise ValueError(f"until={at} lies before now={self._now}")
            stop = Event(self)
            stop._ok = True
            stop._value = None
            stop.callbacks = [self._stop_callback]
            # Priority below URGENT/NORMAL range ensures nothing else at
            # time `at` runs before we halt? No: we want events *at* `at`
            # to be inspectable but SimPy halts before processing events
            # at `at` with priority URGENT. We use URGENT so the clock
            # advances to `at` and stops before NORMAL events there.
            self._eid += 1
            heapq.heappush(self._queue, (at, -1, self._eid, stop))

        try:
            while True:
                self.step()
        except StopSimulation as stop_exc:
            return stop_exc.args[0]
        except EmptySchedule:
            if stop is not None and not stop._processed:
                if isinstance(until, Event):
                    raise RuntimeError(
                        "no more events; the `until` event was never triggered"
                    ) from None
            return None

    @staticmethod
    def _reraise(event: Event) -> Any:
        exc = event._value
        event.defuse()
        if isinstance(exc, BaseException):
            raise exc
        raise RuntimeError(f"event failed with value {exc!r}")

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        exc = event._value
        event._defused = True
        if isinstance(exc, BaseException):
            raise exc
        raise RuntimeError(f"event failed with value {exc!r}")
