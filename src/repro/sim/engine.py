"""Deterministic discrete-event simulation environment.

The :class:`Environment` owns the event queue and the simulation clock.
Events scheduled for the same time are processed in (priority,
insertion-order) sequence, so a simulation with a fixed seed is fully
reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Tuple

from .events import NORMAL, AllOf, AnyOf, Event, Process, Timeout

# Bound once at import: the scheduler touches these on every event, and
# a module-global lookup is measurably cheaper than ``heapq.heappush``
# attribute traversal in the hot loop.
_heappush = heapq.heappush
_heappop = heapq.heappop

__all__ = ["Environment", "EmptySchedule", "StopSimulation", "ProbeCallback"]

#: A probe callback: called as ``callback(now, payload)``.
ProbeCallback = Callable[[float, Any], None]


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when the queue is exhausted."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run` at an event."""


class Environment:
    """Execution environment for a discrete-event simulation.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (default ``0.0``).
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: Probe subscribers by event kind (see :meth:`subscribe`).
        self._probes: Dict[str, List[ProbeCallback]] = {}

    # -- probes (observation hooks) ---------------------------------------
    #
    # Components of the simulation announce notable occurrences through
    # ``emit(kind, payload)``; observers (sanitizers, tracers) register
    # with ``subscribe(kind, callback)``.  An emit with no subscriber is
    # a single dict lookup, so instrumented code paths stay cheap when
    # nothing is listening.  Probes are observation-only: callbacks must
    # not mutate simulation state or schedule events.
    def subscribe(self, kind: str, callback: ProbeCallback) -> None:
        """Register ``callback`` for probe events of ``kind``."""
        self._probes.setdefault(kind, []).append(callback)

    def unsubscribe(self, kind: str, callback: ProbeCallback) -> None:
        """Remove a previously registered probe callback."""
        callbacks = self._probes.get(kind)
        if callbacks is None or callback not in callbacks:
            raise ValueError(f"callback not subscribed to {kind!r}")
        callbacks.remove(callback)
        if not callbacks:
            del self._probes[kind]

    def emit(self, kind: str, payload: Any = None) -> None:
        """Deliver a probe event to every subscriber of ``kind``."""
        probes = self._probes
        if not probes:
            # Fast path: nothing anywhere is listening (the common case
            # outside sanitized test runs) — skip even the key hash.
            return
        callbacks = probes.get(kind)
        if callbacks:
            now = self._now
            for callback in tuple(callbacks):
                callback(now, payload)

    # -- clock & introspection --------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between resumptions)."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none.

        Cancelled entries (see :meth:`cancel`) are discarded on the way
        so the answer is the next event that will actually process.
        """
        queue = self._queue
        while queue and queue[0][3].callbacks is None:
            _heappop(queue)
        return queue[0][0] if queue else float("inf")

    def __len__(self) -> int:
        return len(self._queue)

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event triggering ``delay`` time units from now.

        This is the kernel's hottest allocation site (every message
        delivery and every hold/dwell interval goes through it), so it
        builds the :class:`Timeout` directly — same state as
        ``Timeout(self, delay, value)``, minus the generic event
        plumbing of the constructor chain.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        event = Timeout.__new__(Timeout)
        event.env = self
        event.callbacks = []
        event._value = value
        event._ok = True
        event._defused = False
        event._processed = False
        event.delay = delay
        self._eid = eid = self._eid + 1
        _heappush(self._queue, (self._now + delay, NORMAL, eid, event))
        return event

    def timeout_at(self, at: float, value: Any = None) -> Timeout:
        """Create an event triggering at the *absolute* time ``at``.

        Same as :meth:`timeout` with ``delay = at - now``, except the
        scheduled time is exactly ``at`` — ``now + (at - now)`` can
        land one ulp off, which matters to consumers that must
        reproduce a delivery time bit-for-bit (the inter-shard router
        re-scheduling an exported envelope on its destination kernel).
        """
        if at < self._now:
            raise ValueError(f"cannot schedule at {at}, now is {self._now}")
        event = Timeout.__new__(Timeout)
        event.env = self
        event.callbacks = []
        event._value = value
        event._ok = True
        event._defused = False
        event._processed = False
        event.delay = at - self._now
        self._eid = eid = self._eid + 1
        _heappush(self._queue, (at, NORMAL, eid, event))
        return event

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Put a triggered event on the queue ``delay`` units from now."""
        self._eid = eid = self._eid + 1
        _heappush(self._queue, (self._now + delay, priority, eid, event))

    def cancel(self, event: Event) -> None:
        """Remove a scheduled event from the queue (lazy deletion).

        The heap entry stays in place but is skipped unprocessed when it
        surfaces: O(1) instead of an O(n) heap rebuild.  Callbacks never
        run and the clock does not advance for a cancelled entry, so
        cancelling an event a process waits on silently abandons that
        process (the fast lane uses this to take a demoted cell's
        pending arrival timeout off the event heap).
        """
        if event._processed:
            raise RuntimeError(f"{event!r} was already processed")
        event.callbacks = None

    # -- execution ------------------------------------------------------------
    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`EmptySchedule` if no events remain, and re-raises
        any un-defused event failure (a crashed process nobody waited on).
        """
        queue = self._queue
        if not queue:
            raise EmptySchedule()
        when, _prio, _eid, event = _heappop(queue)

        callbacks = event.callbacks
        if callbacks is None:
            return  # cancelled: skip without advancing the clock
        self._now = when
        event.callbacks = None  # late callback registration is a bug
        event._processed = True
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # Nobody handled the failure: surface it to the caller.
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise RuntimeError(f"unhandled failed event with value {exc!r}")

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the queue empties;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed, returning
          its value (re-raising its exception on failure).
        """
        if until is None:
            stop: Optional[Event] = None
        elif isinstance(until, Event):
            stop = until
            if stop._processed:
                return stop._value if stop._ok else self._reraise(stop)
            assert stop.callbacks is not None
            stop.callbacks.append(self._stop_callback)
        else:
            at = float(until)
            if at < self._now:
                raise ValueError(f"until={at} lies before now={self._now}")
            stop = Event(self)
            stop._ok = True
            stop._value = None
            stop.callbacks = [self._stop_callback]
            # Stop-event priority rule: the stop event is scheduled at
            # time `at` with priority -1, ahead of both URGENT (0) and
            # NORMAL (1), so the clock advances to exactly `at` and the
            # run halts before any simulation event scheduled at `at`
            # is processed.
            self._eid += 1
            _heappush(self._queue, (at, -1, self._eid, stop))

        # Inlined `step()` loop: one method call per event is real
        # overhead at millions of events, so the body is duplicated here
        # with the queue and heap-pop bound to locals.  Keep in sync
        # with :meth:`step`.
        queue = self._queue
        pop = _heappop
        try:
            while True:
                if not queue:
                    raise EmptySchedule()
                when, _prio, _eid, event = pop(queue)
                callbacks = event.callbacks
                if callbacks is None:
                    continue  # cancelled: skip without advancing the clock
                self._now = when
                event.callbacks = None  # late callback registration is a bug
                event._processed = True
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    exc = event._value
                    if isinstance(exc, BaseException):
                        raise exc
                    raise RuntimeError(
                        f"unhandled failed event with value {exc!r}"
                    )
        except StopSimulation as stop_exc:
            return stop_exc.args[0]
        except EmptySchedule:
            if stop is not None and not stop._processed:
                if isinstance(until, Event):
                    raise RuntimeError(
                        "no more events; the `until` event was never triggered"
                    ) from None
            return None

    @staticmethod
    def _reraise(event: Event) -> Any:
        exc = event._value
        event.defuse()
        if isinstance(exc, BaseException):
            raise exc
        raise RuntimeError(f"event failed with value {exc!r}")

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        exc = event._value
        event._defused = True
        if isinstance(exc, BaseException):
            raise exc
        raise RuntimeError(f"event failed with value {exc!r}")
