"""Synchronization primitives built on the event kernel.

These are the building blocks the protocol layer uses to express the
paper's blocking pseudocode (``wait UNTIL ...``):

* :class:`Gate` — a broadcast condition variable; waiters get an event
  that fires the next time the gate is pulsed (or immediately if the
  gate is already open).
* :class:`Store` — an unbounded FIFO mailbox with blocking ``get``.
* :class:`Resource` — a counted resource with FIFO queuing (used by the
  traffic layer to model control-channel contention in some scenarios).
* :class:`Collector` — gathers N responses and fires when all arrived;
  this is exactly the "wait UNTIL RESPONSE received from each j ∈ IN_i"
  primitive of Figures 2 and 4.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterable, List

from .engine import Environment
from .events import Event

__all__ = ["Gate", "Store", "Resource", "Collector"]


class Gate:
    """A broadcast condition variable.

    ``wait()`` returns an event.  ``pulse(value)`` fires all currently
    waiting events.  ``open(value)`` fires current waiters and makes all
    future ``wait()`` calls return an already-fired event until
    ``close()`` is called.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._waiters: List[Event] = []
        self._open = False
        self._open_value: Any = None

    @property
    def is_open(self) -> bool:
        return self._open

    def wait(self) -> Event:
        """Return an event that fires at the next pulse/open."""
        event = self.env.event()
        if self._open:
            event.succeed(self._open_value)
        else:
            self._waiters.append(event)
        return event

    def pulse(self, value: Any = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed(value)
        return len(waiters)

    def open(self, value: Any = None) -> None:
        """Latch the gate open (future waits succeed immediately)."""
        self._open = True
        self._open_value = value
        self.pulse(value)

    def close(self) -> None:
        """Close a latched-open gate."""
        self._open = False
        self._open_value = None


class Store:
    """Unbounded FIFO mailbox.

    ``put(item)`` never blocks.  ``get()`` returns an event that fires
    with the next item (immediately if one is queued).
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = self.env.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event


class Resource:
    """A counted resource with FIFO request queue.

    ``request()`` yields an event that fires once a slot is available;
    the holder must call ``release()`` exactly once.
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._queue: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._queue)

    def request(self) -> Event:
        event = self.env.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._queue.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError("release() without a matching request()")
        if self._queue:
            # Hand the slot directly to the next waiter.
            self._queue.popleft().succeed()
        else:
            self._in_use -= 1

    def cancel(self, event: Event) -> None:
        """Withdraw a queued request that has not been granted yet.

        Used by impatient requesters (e.g. call-setup deadlines).  A
        request that already holds the resource cannot be cancelled —
        release it instead.
        """
        if event.triggered:
            raise RuntimeError("cannot cancel a granted request; release it")
        try:
            self._queue.remove(event)
        except ValueError:
            raise RuntimeError("event is not a queued request") from None


class Collector:
    """Gathers tagged responses until all expected tags have reported.

    This models "wait UNTIL RESPONSE(...) is received from each node
    j ∈ IN_i": create a collector with the expected node ids, feed it
    ``deliver(tag, value)`` calls from the message handler, and yield
    ``done`` from the requesting process.  The event value is the dict
    {tag: value}.
    """

    def __init__(self, env: Environment, expected: Iterable[Any]) -> None:
        self.env = env
        self._expected = set(expected)
        self._responses: Dict[Any, Any] = {}
        self.done: Event = env.event()
        self._cancelled = False
        if not self._expected:
            self.done.succeed({})

    @property
    def outstanding(self) -> set:
        """Tags not yet delivered."""
        return self._expected - set(self._responses)

    @property
    def responses(self) -> Dict[Any, Any]:
        return dict(self._responses)

    def cancel(self) -> None:
        """Stop accepting deliveries; the done event never fires."""
        self._cancelled = True

    def deliver(self, tag: Any, value: Any) -> bool:
        """Record a response; returns True if this completed the set."""
        if self._cancelled or self.done.triggered:
            return False
        if tag not in self._expected:
            raise KeyError(f"unexpected response tag {tag!r}")
        if tag in self._responses:
            raise KeyError(f"duplicate response from {tag!r}")
        self._responses[tag] = value
        if len(self._responses) == len(self._expected):
            self.done.succeed(dict(self._responses))
            return True
        return False
