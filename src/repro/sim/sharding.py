"""Grid partitioning and inter-shard fabric primitives.

The sharded kernel (see :mod:`repro.harness.sharded`) partitions the
hex grid into contiguous row bands, runs one ordinary
:class:`~repro.sim.engine.Environment` per band, and synchronizes the
band kernels conservatively: the latency model's minimum per-hop delay
``T`` is the lookahead, so every message sent inside a time window
``[t, t + T)`` delivers at or after ``t + T`` — the coordinator can let
every shard finish the window in isolation, then exchange the
cross-shard envelopes at the barrier before any kernel enters the next
window.  This module holds the pieces that live *inside* the shard:

* :func:`plan_shards` / :class:`ShardPlan` — the static partition:
  cell ownership, per-shard cell lists, and the frontier (cells whose
  interference region crosses a shard boundary).
* :class:`ShardPort` — the sender-side half of the router, attached to
  a shard's :class:`~repro.sim.network.Network`.  Sends to cells the
  shard does not own are accounted locally (counters, probes, FIFO
  floor) and exported instead of scheduled.
* :class:`RemoteRecord` — one exported envelope, reduced to plain
  picklable data.  Field order doubles as the deterministic merge key:
  the coordinator sorts merged records by ``(deliver_at, sent_at, src,
  dst, msg_id)``, which reproduces the single-kernel tie-break for
  every tie a FIFO fabric can actually produce (same-link ties arrive
  in send order; same-root multicast replies arrive in sorted-source
  order, matching the protocols' sorted ``IN`` fan-out).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Tuple

__all__ = ["ShardPlan", "plan_shards", "RemoteRecord", "ShardPort"]


class RemoteRecord(NamedTuple):
    """One cross-shard message, in transit between kernels.

    Plain data (pickles through worker pipes).  The field order *is*
    the merge order: tuple comparison sorts by delivery time first,
    then send time, then source cell, destination cell and logical
    message id — a total order over everything a window can export
    (payloads are never compared: no two records of one run tie on all
    five leading fields).
    """

    deliver_at: float
    sent_at: float
    src: int
    dst: int
    msg_id: int
    payload: Any
    fault_tag: Optional[str]
    #: Sender-side vector-clock stamp (None when no checker is attached
    #: or the copy is a fault artifact) — re-primes the destination
    #: shard's :class:`~repro.verify.vectorclock.VectorClockChecker`.
    clock: Optional[Dict[int, int]]


@dataclass(frozen=True)
class ShardPlan:
    """Static partition of the grid into contiguous row bands."""

    #: Number of shards (row bands).
    shards: int
    #: Per-shard cell ids, ascending within each shard.
    cells: Tuple[Tuple[int, ...], ...]
    #: ``owner[cell]`` -> shard index, dense over all cell ids.
    owner: Tuple[int, ...]
    #: Per-shard frontier: cells with at least one interference
    #: neighbor owned by another shard (the only cells whose channel
    #: usage the cross-shard safety replay needs to examine).
    frontier: Tuple[Tuple[int, ...], ...]

    @property
    def num_cells(self) -> int:
        return len(self.owner)

    def shard_of(self, cell: int) -> int:
        """Owning shard of ``cell``."""
        return self.owner[cell]

    def cells_of(self, shard: int) -> Tuple[int, ...]:
        """Cells owned by ``shard`` (ascending)."""
        return self.cells[shard]

    def frontier_of(self, shard: int) -> Tuple[int, ...]:
        """Frontier cells of ``shard`` (ascending)."""
        return self.frontier[shard]

    def describe(self) -> str:
        """One-line human-readable summary."""
        sizes = [len(band) for band in self.cells]
        frontier = sum(len(band) for band in self.frontier)
        return (
            f"{self.shards} shard(s) over {self.num_cells} cells "
            f"(band sizes {sizes}, {frontier} frontier cells)"
        )


def plan_shards(topo: Any, shards: int) -> ShardPlan:
    """Partition ``topo``'s grid into ``shards`` contiguous row bands.

    Cells are numbered row-major, so a band of rows is a contiguous id
    range; bands differ in height by at most one row.  Raises
    ``ValueError`` when the grid has fewer rows than shards — a band
    must own at least one full row to stay contiguous.
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    rows = topo.grid.rows
    cols = topo.grid.cols
    if shards > rows:
        raise ValueError(
            f"cannot cut {rows} grid rows into {shards} row bands; "
            f"use at most {rows} shards for this topology"
        )
    owner: List[int] = [0] * (rows * cols)
    bands: List[Tuple[int, ...]] = []
    base, extra = divmod(rows, shards)
    next_row = 0
    for shard in range(shards):
        height = base + (1 if shard < extra else 0)
        lo = next_row * cols
        hi = (next_row + height) * cols
        band = tuple(range(lo, hi))
        for cell in band:
            owner[cell] = shard
        bands.append(band)
        next_row += height
    owner_t = tuple(owner)
    frontier = tuple(
        tuple(
            cell
            for cell in band
            if any(owner_t[peer] != owner_t[cell] for peer in topo.IN(cell))
        )
        for band in bands
    )
    return ShardPlan(
        shards=shards, cells=tuple(bands), owner=owner_t, frontier=frontier
    )


class ShardPort:
    """Sender-side half of the inter-shard router.

    A :class:`~repro.sim.network.Network` with a port attached routes
    sends whose destination it does not own into the port's outbox
    instead of its own event queue; the coordinator drains the outbox
    at every window barrier.  Stamp resolution is deferred to
    :meth:`drain` so the vector-clock checker (which stamps envelopes
    *after* the network's send-side accounting) is always consulted
    after the stamp exists — and popping at drain time keeps the
    checker's stamp table from accumulating never-delivered entries.
    """

    def __init__(self, shard: int, owner: Tuple[int, ...]) -> None:
        self.shard = shard
        self.owner = owner
        #: Envelopes exported this window, in send order.
        self._outbox: List[Any] = []
        #: Optional stamp resolver (``seq -> Clock or None``); wired by
        #: the sharded harness to pop the local vector-clock checker's
        #: stamp table.
        self.stamp_of: Optional[Callable[[int], Optional[Dict[int, int]]]] = None
        #: Total envelopes exported over the run.
        self.exported = 0

    def routes(self, cell: int) -> bool:
        """True when ``cell`` exists somewhere in the sharded system."""
        return 0 <= cell < len(self.owner)

    def owns(self, cell: int) -> bool:
        """True when ``cell`` runs on this port's shard."""
        return self.owner[cell] == self.shard

    def export(self, envelope: Any) -> None:
        """Queue one scheduled delivery for a remote destination."""
        self._outbox.append(envelope)
        self.exported += 1

    def drain(self) -> List[RemoteRecord]:
        """Convert and clear this window's outbox (send order kept)."""
        stamp_of = self.stamp_of
        records = []
        for env_msg in self._outbox:
            clock: Optional[Dict[int, int]] = None
            if stamp_of is not None and env_msg.fault_tag is None:
                clock = stamp_of(env_msg.seq)
            records.append(
                RemoteRecord(
                    deliver_at=env_msg.deliver_at,
                    sent_at=env_msg.sent_at,
                    src=env_msg.src,
                    dst=env_msg.dst,
                    msg_id=env_msg.msg_id,
                    payload=env_msg.payload,
                    fault_tag=env_msg.fault_tag,
                    clock=clock,
                )
            )
        self._outbox.clear()
        return records
