"""Discrete-event simulation substrate (kernel, sync primitives, network).

This subpackage knows nothing about cellular networks or channel
allocation; it is a general-purpose deterministic DES kernel in the
process-interaction style, plus a latency-modelled message fabric.
"""

from .engine import EmptySchedule, Environment, StopSimulation
from .events import (
    AllOf,
    AnyOf,
    ConditionEvent,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from .network import (
    DeterministicLatency,
    Envelope,
    ExponentialLatency,
    LatencyModel,
    Network,
    UniformLatency,
)
from .resources import Collector, Gate, Resource, Store
from .rng import StreamRegistry
from .sharding import RemoteRecord, ShardPlan, ShardPort, plan_shards

__all__ = [
    "Environment",
    "EmptySchedule",
    "StopSimulation",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "ConditionEvent",
    "AllOf",
    "AnyOf",
    "Gate",
    "Store",
    "Resource",
    "Collector",
    "Network",
    "Envelope",
    "LatencyModel",
    "DeterministicLatency",
    "UniformLatency",
    "ExponentialLatency",
    "StreamRegistry",
    "ShardPlan",
    "ShardPort",
    "RemoteRecord",
    "plan_shards",
]
