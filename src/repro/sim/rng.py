"""Reproducible random-number streams.

Every stochastic component (traffic per cell, network latency, mobility)
draws from its own named substream derived from a single experiment
seed, so adding a new consumer never perturbs existing streams and runs
are bit-for-bit reproducible.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Tuple

import numpy as np

__all__ = ["StreamRegistry"]


class StreamRegistry:
    """Factory of independent, named ``numpy.random.Generator`` streams.

    >>> reg = StreamRegistry(seed=42)
    >>> arrivals = reg.stream("traffic", "cell", 7)
    >>> latency = reg.stream("network", "latency")

    The same (seed, name parts) always yields the same stream.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._cache: Dict[str, np.random.Generator] = {}

    def _key(self, parts: Tuple[Any, ...]) -> str:
        return "/".join(str(p) for p in parts)

    def stream(self, *parts: Any) -> np.random.Generator:
        """Return (and memoize) the generator for the given name parts."""
        key = self._key(parts)
        if key not in self._cache:
            digest = hashlib.sha256(
                f"{self.seed}:{key}".encode("utf-8")
            ).digest()
            substream_seed = int.from_bytes(digest[:8], "little")
            self._cache[key] = np.random.default_rng(substream_seed)
        return self._cache[key]

    def spawn(self, *parts) -> "StreamRegistry":
        """Derive a child registry (e.g. one per replication)."""
        digest = hashlib.sha256(
            f"{self.seed}:spawn:{self._key(parts)}".encode("utf-8")
        ).digest()
        return StreamRegistry(int.from_bytes(digest[:8], "little"))
