"""Message-passing network substrate.

Nodes register with the network and receive messages through their
``on_message(msg)`` method.  The network models per-message one-way
latency (the paper's parameter ``T``), supports FIFO or non-FIFO
per-link delivery (non-FIFO is required to reproduce the message
overtaking of the paper's Figure 11), and exposes send/delivery hooks
used by the metrics layer to count control messages by type.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterable, KeysView, List, Optional, Protocol, Tuple

import numpy as np

from .engine import Environment

__all__ = [
    "Envelope",
    "LatencyModel",
    "DeterministicLatency",
    "UniformLatency",
    "ExponentialLatency",
    "Network",
    "NetworkNode",
]


class NetworkNode(Protocol):
    """Anything that can be attached to a :class:`Network`."""

    node_id: int

    def on_message(self, envelope: "Envelope") -> None:  # pragma: no cover
        ...


class Envelope:
    """A message in flight: payload plus routing/timing metadata.

    A plain ``__slots__`` class rather than a dataclass: one envelope is
    allocated per message send, which makes this one of the hottest
    allocation sites in the simulator.
    """

    __slots__ = (
        "src",
        "dst",
        "payload",
        "sent_at",
        "deliver_at",
        "seq",
        "msg_id",
        "fault_tag",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        payload: Any,
        sent_at: float,
        deliver_at: float = 0.0,
        seq: int = 0,
        msg_id: int = 0,
        fault_tag: Optional[str] = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.payload = payload
        self.sent_at = sent_at
        self.deliver_at = deliver_at
        #: Scheduling sequence number: every scheduled delivery (including
        #: injected duplicate copies) gets a fresh one; per-link FIFO
        #: bookkeeping and the causality sanitizer key on it.
        self.seq = seq
        #: Logical message identity: monotonically increasing per network,
        #: *shared* by retransmissions and duplicate copies of the same
        #: send — the key the hardening layer's dedup filter uses.
        self.msg_id = msg_id
        #: None for a normal message; "retrans" / "dup" / "reorder" when
        #: this copy exists because of the ARQ or the fault injector (the
        #: causality sanitizer relaxes its checks accordingly).
        self.fault_tag = fault_tag

    @property
    def kind(self) -> str:
        """Message-type name used for per-type counting."""
        return type(self.payload).__name__

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tag = f", fault_tag={self.fault_tag!r}" if self.fault_tag else ""
        return (
            f"Envelope(src={self.src!r}, dst={self.dst!r}, "
            f"payload={self.payload!r}, sent_at={self.sent_at!r}, "
            f"deliver_at={self.deliver_at!r}, seq={self.seq!r}, "
            f"msg_id={self.msg_id!r}{tag})"
        )


class LatencyModel:
    """Base class: maps (src, dst) to a one-way delay sample."""

    def sample(self, src: int, dst: int) -> float:  # pragma: no cover
        raise NotImplementedError

    @property
    def max_delay(self) -> float:
        """Upper bound used by protocols for round-trip estimates (2T)."""
        raise NotImplementedError


class DeterministicLatency(LatencyModel):
    """Every message takes exactly ``T`` time units."""

    def __init__(self, T: float = 1.0) -> None:
        if T <= 0:
            raise ValueError("latency must be positive")
        self.T = float(T)

    def sample(self, src: int, dst: int) -> float:
        return self.T

    @property
    def max_delay(self) -> float:
        return self.T


class UniformLatency(LatencyModel):
    """Latency uniform in [lo, hi); enables message overtaking."""

    def __init__(self, lo: float, hi: float, rng: np.random.Generator) -> None:
        if not (0 < lo <= hi):
            raise ValueError("need 0 < lo <= hi")
        self.lo, self.hi = float(lo), float(hi)
        self._rng = rng

    def sample(self, src: int, dst: int) -> float:
        return float(self._rng.uniform(self.lo, self.hi))

    @property
    def max_delay(self) -> float:
        return self.hi


class ExponentialLatency(LatencyModel):
    """Shifted exponential latency: base + Exp(mean_extra)."""

    def __init__(
        self,
        base: float,
        mean_extra: float,
        rng: np.random.Generator,
        cap: Optional[float] = None,
    ) -> None:
        if base <= 0 or mean_extra < 0:
            raise ValueError("need base > 0 and mean_extra >= 0")
        self.base = float(base)
        self.mean_extra = float(mean_extra)
        self.cap = float(cap) if cap is not None else self.base + 10 * max(
            self.mean_extra, 1e-9
        )
        self._rng = rng

    def sample(self, src: int, dst: int) -> float:
        extra = float(self._rng.exponential(self.mean_extra)) if self.mean_extra else 0.0
        return min(self.base + extra, self.cap)

    @property
    def max_delay(self) -> float:
        return self.cap


class Network:
    """Latency-modelled message fabric connecting protocol nodes.

    Parameters
    ----------
    env:
        The simulation environment.
    latency:
        One-way delay model (default: deterministic ``T=1``).
    fifo:
        If True (default), delivery order per (src, dst) link matches
        send order even under random latency.  Set False to allow
        overtaking (needed for the Figure 11 scenario).
    """

    def __init__(
        self,
        env: Environment,
        latency: Optional[LatencyModel] = None,
        fifo: bool = True,
    ) -> None:
        self.env = env
        self.latency = latency or DeterministicLatency(1.0)
        self.fifo = fifo
        self._nodes: Dict[int, NetworkNode] = {}
        self._last_delivery: Dict[Tuple[int, int], float] = {}
        self._seq = 0
        self._msg_id = 0
        #: Optional fault injector (see :mod:`repro.faults`): consulted
        #: per send for drop/duplicate/delay/reorder decisions and per
        #: delivery for crashed destinations.  None = perfect network.
        self.injector: Optional[Any] = None
        #: Optional inter-shard router port (see
        #: :class:`repro.sim.sharding.ShardPort`).  When attached,
        #: sends to cells this kernel does not own are accounted here
        #: (counters, hooks, probes, FIFO floor) and exported to the
        #: destination shard instead of being scheduled locally.
        self.shard_port: Optional[Any] = None
        #: Total messages sent, by payload type name.
        self.sent_by_kind: Dict[str, int] = {}
        #: Total messages sent overall.
        self.total_sent = 0
        #: Optional hooks: called with the envelope at send / delivery time.
        self.on_send: List[Callable[[Envelope], None]] = []
        self.on_deliver: List[Callable[[Envelope], None]] = []

    # -- topology ----------------------------------------------------------
    def attach(self, node: NetworkNode) -> None:
        """Register a node; its ``node_id`` must be unique."""
        nid = node.node_id
        if nid in self._nodes:
            raise ValueError(f"duplicate node id {nid}")
        self._nodes[nid] = node

    def node(self, node_id: int) -> NetworkNode:
        return self._nodes[node_id]

    @property
    def node_ids(self) -> KeysView[int]:
        return self._nodes.keys()

    # -- messaging -----------------------------------------------------------
    def send(
        self,
        src: int,
        dst: int,
        payload: Any,
        delay_override: Optional[float] = None,
        msg_id: Optional[int] = None,
        fault_tag: Optional[str] = None,
    ) -> Envelope:
        """Send ``payload`` from ``src`` to ``dst``; returns the envelope.

        ``delay_override`` forces a specific latency for this message
        (used by adversarial scenario construction, e.g. Figure 11).
        ``msg_id`` pins the logical message identity (retransmissions
        reuse the original's, so receiver dedup recognizes them); by
        default a fresh per-network id is assigned.  ``fault_tag``
        labels ARQ retransmissions for the sanitizers.
        """
        remote = False
        if dst not in self._nodes:
            port = self.shard_port
            if port is None or not port.routes(dst) or port.owns(dst):
                raise KeyError(f"unknown destination node {dst}")
            remote = True
        env = self.env
        now = env._now
        latency = self.latency
        if delay_override is not None:
            delay = float(delay_override)
        elif type(latency) is DeterministicLatency:
            # Fast path: skip the method call for the constant model.
            delay = latency.T
        else:
            delay = latency.sample(src, dst)
        if msg_id is None:
            self._msg_id = msg_id = self._msg_id + 1
        if self.injector is not None:
            return self._send_faulty(
                src, dst, payload, delay, msg_id, fault_tag, remote
            )
        deliver_at = now + delay
        if self.fifo:
            link = (src, dst)
            last_delivery = self._last_delivery
            floor = last_delivery.get(link, 0.0)
            if deliver_at < floor:
                deliver_at = floor
            # The scheduler computes ``now + (deliver_at - now)``, which
            # can undershoot the clamped floor by one ulp and let this
            # message overtake its predecessor on the link; nudge until
            # the *scheduled* time respects the floor.  (Equal times are
            # fine: the event queue breaks ties in send order.)
            while now + (deliver_at - now) < floor:
                deliver_at = math.nextafter(deliver_at, math.inf)
            deliver_at = now + (deliver_at - now)
            last_delivery[link] = deliver_at

        self._seq = seq = self._seq + 1
        env_msg = Envelope(src, dst, payload, now, deliver_at, seq, msg_id, fault_tag)
        self.total_sent += 1
        kind = type(payload).__name__
        counts = self.sent_by_kind
        counts[kind] = counts.get(kind, 0) + 1
        if self.on_send:
            for hook in self.on_send:
                hook(env_msg)
        env.emit("net.send", env_msg)

        if remote:
            self.shard_port.export(env_msg)
            return env_msg
        delivery = env.timeout(deliver_at - now, env_msg)
        delivery.callbacks.append(self._deliver)
        return env_msg

    def _send_faulty(
        self,
        src: int,
        dst: int,
        payload: Any,
        delay: float,
        msg_id: int,
        fault_tag: Optional[str],
        remote: bool = False,
    ) -> Envelope:
        """Slow path: route the send through the fault injector.

        The injector turns one logical send into zero (dropped /
        partitioned / crashed endpoint), one, or two (duplicated)
        scheduled deliveries.  Send-side accounting — counters, hooks,
        the ``net.send`` probe — happens exactly once per logical send
        regardless, so message-overhead metrics keep counting protocol
        messages, not injector artifacts.
        """
        env = self.env
        now = env._now
        actions = self.injector.filter_send(src, dst, payload, delay, fault_tag)
        primary: Optional[Envelope] = None
        last_delivery = self._last_delivery
        link = (src, dst)
        for copy_delay, tag, clamp in actions:
            deliver_at = now + copy_delay
            if self.fifo and clamp:
                floor = last_delivery.get(link, 0.0)
                if deliver_at < floor:
                    deliver_at = floor
                # Same one-ulp guard as the fast path: the scheduled
                # time must respect the floor (reordered copies skip the
                # clamp *and* the floor update — they are allowed to
                # overtake without dragging later messages with them).
                while now + (deliver_at - now) < floor:
                    deliver_at = math.nextafter(deliver_at, math.inf)
                deliver_at = now + (deliver_at - now)
                last_delivery[link] = deliver_at
            self._seq = seq = self._seq + 1
            env_msg = Envelope(src, dst, payload, now, deliver_at, seq, msg_id, tag)
            if primary is None:
                primary = env_msg
            if remote:
                self.shard_port.export(env_msg)
            else:
                delivery = env.timeout(deliver_at - now, env_msg)
                delivery.callbacks.append(self._deliver)
        if primary is None:
            # Dropped at send time: account for the send, deliver nothing.
            self._seq = seq = self._seq + 1
            primary = Envelope(src, dst, payload, now, now + delay, seq, msg_id, fault_tag)
        self.total_sent += 1
        kind = type(payload).__name__
        counts = self.sent_by_kind
        counts[kind] = counts.get(kind, 0) + 1
        if self.on_send:
            for hook in self.on_send:
                hook(primary)
        env.emit("net.send", primary)
        return primary

    def multicast(self, src: int, dsts: Iterable[int], payload: Any) -> int:
        """Send ``payload`` to each destination; returns message count.

        The destination iterable is snapshotted up front so a generator
        argument cannot be left half-consumed if a send raises (e.g. an
        unknown node id, or an error injected below ``send``).
        """
        dsts = tuple(dsts)
        count = 0
        for dst in dsts:
            self.send(src, dst, payload)
            count += 1
        return count

    def inject_remote(self, record: Any) -> Envelope:
        """Schedule delivery of a cross-shard envelope on this kernel.

        Called by the shard coordinator at a window barrier with a
        :class:`~repro.sim.sharding.RemoteRecord` exported by another
        shard's network.  The record's delivery time is already final
        (latency, fault delays and the sender-side FIFO floor are
        applied where the send happened); this side only assigns a
        fresh local scheduling sequence number — injection order is the
        coordinator's deterministic merge order, so per-link sequence
        numbers remain monotone in delivery order and the FIFO/vector
        -clock sanitizers keep checking cross-shard links.  The
        ``shard.recv`` probe announces the arrival (with the sender's
        vector-clock stamp, if any) before the delivery is scheduled.
        """
        self._seq = seq = self._seq + 1
        env_msg = Envelope(
            record.src,
            record.dst,
            record.payload,
            record.sent_at,
            record.deliver_at,
            seq,
            record.msg_id,
            record.fault_tag,
        )
        env = self.env
        env.emit("shard.recv", (env_msg, record.clock))
        delivery = env.timeout_at(record.deliver_at, env_msg)
        delivery.callbacks.append(self._deliver)
        return env_msg

    def _deliver(self, event: Any) -> None:
        env_msg: Envelope = event._value
        if self.injector is not None and not self.injector.deliverable(env_msg):
            return
        if self.on_deliver:
            for hook in self.on_deliver:
                hook(env_msg)
        self.env.emit("net.deliver", env_msg)
        self._nodes[env_msg.dst].on_message(env_msg)
