"""Core event types for the discrete-event simulation kernel.

The kernel follows the classic process-interaction style (as popularized
by SimPy, re-implemented here from scratch): simulation activities are
Python generators that ``yield`` :class:`Event` objects and are resumed
when those events are *processed*.  Everything is deterministic: events
scheduled at the same simulation time are processed in (priority,
insertion-order) sequence.
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .engine import Environment

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "ConditionEvent",
    "AllOf",
    "AnyOf",
    "PENDING",
    "URGENT",
    "NORMAL",
]


class _PendingType:
    """Sentinel for an event value that has not been set yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<PENDING>"


#: Sentinel used as the value of untriggered events.
PENDING = _PendingType()

#: Scheduling priority for events that must run before normal events at
#: the same timestamp (used internally by :class:`Process` resumption).
URGENT = 0

#: Default scheduling priority.
NORMAL = 1


class Interrupt(Exception):
    """Exception thrown into a process when it is interrupted.

    The ``cause`` attribute carries the object passed to
    :meth:`Process.interrupt`.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """An observable occurrence inside an :class:`Environment`.

    An event goes through three states:

    1. *untriggered* — freshly created, value is :data:`PENDING`;
    2. *triggered* — a value (or failure) has been set and the event has
       been scheduled on the environment's queue;
    3. *processed* — the environment popped it and ran its callbacks.

    Processes wait on events by yielding them from their generator.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused", "_processed")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables invoked (in registration order) when processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False
        self._processed: bool = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value or failure has been assigned."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is not yet triggered."""
        if self._value is PENDING:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        return self._value

    @property
    def cancelled(self) -> bool:
        """True when the event was removed via ``Environment.cancel``
        (scheduled, then lazily deleted — it will never process)."""
        return self.callbacks is None and not self._processed

    @property
    def defused(self) -> bool:
        """True when a failure has been handled by some waiter."""
        return self._defused

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel won't re-raise."""
        self._defused = True

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Inlined ``env._schedule(self, priority)`` — this is the hot
        # trigger path (process wakeups, resource grants).
        env = self.env
        env._eid = eid = env._eid + 1
        _heappush(env._queue, (env._now, priority, eid, self))
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self, priority=priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of ``event`` onto this event (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event.defuse()
            self.fail(event._value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "processed"
            if self._processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

    # -- composition -----------------------------------------------------
    def __and__(self, other: "Event") -> "ConditionEvent":
        return ConditionEvent(self.env, ConditionEvent.all_events, [self, other])

    def __or__(self, other: "Event") -> "ConditionEvent":
        return ConditionEvent(self.env, ConditionEvent.any_events, [self, other])


class Timeout(Event):
    """An event that triggers ``delay`` time units after its creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, priority=NORMAL, delay=delay)

    @property
    def triggered(self) -> bool:
        # A Timeout is scheduled (hence conceptually triggered) at birth.
        return True


class Process(Event):
    """Wraps a generator and drives it through the event loop.

    The process itself is an event that triggers when the generator
    terminates — its value is the generator's return value, or the
    uncaught exception on failure.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None if not
        #: started or already terminated).
        self._target: Optional[Event] = None
        # Kick-start: resume the generator at the current time, urgently.
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks = [self._resume]
        env._schedule(init, priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process currently waits on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process must be alive and must not interrupt itself.
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated; cannot interrupt")
        if self is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        # Jump the queue so the interrupt beats whatever the process waits on.
        event.callbacks = [self._resume_interrupt]
        self.env._schedule(event, priority=URGENT)

    # -- internal --------------------------------------------------------
    def _resume_interrupt(self, event: Event) -> None:
        if not self.is_alive:  # terminated before the interrupt landed
            return
        # Detach from the event we were waiting on (it may still fire; we
        # simply no longer care about *this* wakeup).
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._resume(event)

    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        while True:
            self._target = None
            try:
                if event._ok:
                    next_target = self._generator.send(event._value)
                else:
                    event.defuse()
                    next_target = self._generator.throw(event._value)
            except StopIteration as stop:
                env._active_process = None
                self.succeed(stop.value, priority=URGENT)
                return
            except BaseException as exc:
                env._active_process = None
                self.fail(exc, priority=URGENT)
                return

            if not isinstance(next_target, Event):
                env._active_process = None
                exc = RuntimeError(
                    f"process {self.name!r} yielded a non-event: {next_target!r}"
                )
                self.fail(exc, priority=URGENT)
                return
            if next_target.env is not env:
                env._active_process = None
                self.fail(
                    RuntimeError("yielded an event from a foreign environment"),
                    priority=URGENT,
                )
                return

            if next_target._processed:
                # Already processed: resume immediately with its value.
                event = next_target
                continue
            self._target = next_target
            assert next_target.callbacks is not None
            next_target.callbacks.append(self._resume)
            env._active_process = None
            return


class ConditionEvent(Event):
    """An event that triggers when a predicate over child events holds.

    Used to implement ``AllOf`` / ``AnyOf`` (and the ``&`` / ``|``
    operators on events).  The value is a dict mapping each *triggered*
    child event to its value, in child order.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("events from different environments")

        if not self._events:
            self.succeed({})
            return

        for event in self._events:
            if event._processed:
                self._check(event)
            else:
                assert event.callbacks is not None
                event.callbacks.append(self._check)

    def _collect_values(self) -> dict:
        return {e: e._value for e in self._events if e._processed and e._ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event.defuse()
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        return count > 0 or not events


class AllOf(ConditionEvent):
    """Triggers once every child event has triggered successfully."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, ConditionEvent.all_events, events)


class AnyOf(ConditionEvent):
    """Triggers as soon as any child event triggers successfully."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, ConditionEvent.any_events, events)
