"""Checkpoint/restore of full simulation state, with warm-start forking.

The snapshot subsystem makes a running simulation a *value*: a
versioned, byte-stable :class:`Snapshot` covering the kernel event heap
and clock, every RNG substream, in-flight network envelopes, per-MSS
protocol state for all six allocation schemes, ARQ windows and dedup
filters, fault-plan cursors, and the metrics/observability collectors.

Core API
--------
* :func:`checkpoint` / :func:`restore` — capture a live simulation,
  rebuild a runnable one.
* :func:`run_to_checkpoint` — run a scenario to an instant and capture
  at the first safe point.
* :func:`run_from_snapshot` — resume (or fork to a new seed) and run to
  the horizon.
* :func:`fork_replications` — warm-start a replication sweep: pay the
  warmup transient once, fork N seeds from the snapshot.
* :func:`save_snapshot` / :func:`load_snapshot` — file round-trip of
  the canonical byte form.

Guarantees
----------
* **Exact continuation**: restoring a snapshot under its own seed and
  running to the horizon is row-identical to never having snapshotted.
* **Byte stability**: re-checkpointing a restored simulation yields the
  exact bytes of the original snapshot — which is why the snapshot
  content hash may participate in result-cache keys.
* **Honest failure**: state that cannot be captured raises rather than
  being silently dropped (see :class:`SnapshotError` and the safe-point
  rules in :mod:`repro.snap.state`).

See DESIGN.md section 9 for the format specification.
"""

from .format import (
    SNAPSHOT_FORMAT_VERSION,
    Snapshot,
    SnapshotError,
    load_snapshot,
    save_snapshot,
)
from .fork import (
    MAX_DRAIN_STEPS,
    checkpoint,
    fork_replications,
    restore,
    run_from_snapshot,
    run_to_checkpoint,
)
from .state import UnsafeState, apply_state, capture_state

__all__ = [
    "MAX_DRAIN_STEPS",
    "SNAPSHOT_FORMAT_VERSION",
    "Snapshot",
    "SnapshotError",
    "UnsafeState",
    "apply_state",
    "capture_state",
    "checkpoint",
    "fork_replications",
    "load_snapshot",
    "restore",
    "run_from_snapshot",
    "run_to_checkpoint",
    "save_snapshot",
]
