"""Canonical, versioned, byte-stable snapshot encoding.

A snapshot must satisfy one unusual requirement: *byte stability under
round-trip*.  ``checkpoint(restore(checkpoint(sim)))`` has to produce the
exact same bytes, because the content hash of those bytes participates in
result-cache keys (a warm-started row must never alias a cold-run row).

Plain JSON cannot represent the state we capture — float payloads must
survive bit-exactly (``repr`` round-trips but is locale-fragile and slow;
``float.hex`` is exact and canonical), and simulation state is full of
tuples, sets, frozensets and int-keyed dicts.  So the encoder maps Python
values onto a small tagged JSON subset:

====================  =============================================
value                 encoding
====================  =============================================
None/bool/int/str     unchanged
float                 ``{"~": "f", "v": "<float.hex>"}`` (inf/nan
                      spelled ``"inf"``/``"-inf"``/``"nan"``)
tuple                 ``{"~": "t", "v": [...]}``
set/frozenset         ``{"~": "s", "v": [sorted items]}``
dict (str keys)       plain JSON object
dict (other keys)     ``{"~": "d", "v": [[k, v], ...]}`` sorted
list                  JSON array
====================  =============================================

Dict keys produced by the state codec never contain a literal ``"~"``
key, so plain objects and tagged wrappers cannot collide.  The byte form
is ``json.dumps(..., sort_keys=True, separators=(",", ":"))`` — fully
canonical, so equal states encode to equal bytes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict

import numpy as np

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "Snapshot",
    "SnapshotError",
    "canonical_bytes",
    "decode_value",
    "encode_value",
    "load_snapshot",
    "save_snapshot",
]

#: Bumped whenever the encoded layout changes incompatibly.  ``restore``
#: refuses snapshots from other versions rather than guessing.
#: v2: adaptive stations carry opaque per-policy state (``"policy"``,
#: via ``ModePolicy.state_dict``) instead of raw ``"nfc_samples"``.
SNAPSHOT_FORMAT_VERSION = 2

_TAG = "~"


class SnapshotError(RuntimeError):
    """Raised when state cannot be captured, encoded, or restored."""


def encode_value(value: Any) -> Any:
    """Map ``value`` onto the tagged JSON-safe subset (recursively)."""
    if value is None or value is True or value is False:
        return value
    if isinstance(value, bool):  # pragma: no cover - caught above
        return bool(value)
    if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
        return int(value)
    if isinstance(value, (float, np.floating)):
        v = float(value)
        if v != v:
            hexed = "nan"
        elif v == float("inf"):
            hexed = "inf"
        elif v == float("-inf"):
            hexed = "-inf"
        else:
            hexed = v.hex()
        return {_TAG: "f", "v": hexed}
    if isinstance(value, str):
        return value
    if isinstance(value, tuple):
        return {_TAG: "t", "v": [encode_value(v) for v in value]}
    if isinstance(value, (set, frozenset)):
        encoded = [encode_value(v) for v in value]
        encoded.sort(key=_sort_key)
        return {_TAG: "s", "v": encoded}
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value):
            if _TAG in value:
                raise SnapshotError(
                    "state dicts must not use the reserved key '~'"
                )
            return {k: encode_value(v) for k, v in value.items()}
        pairs = [[encode_value(k), encode_value(v)] for k, v in value.items()]
        pairs.sort(key=lambda kv: _sort_key(kv[0]))
        return {_TAG: "d", "v": pairs}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    raise SnapshotError(
        f"cannot encode {type(value).__name__!r} into a snapshot"
    )


def _sort_key(encoded: Any) -> str:
    # Canonical order for set members / dict keys: sort by the JSON
    # rendering of the already-encoded value.  Deterministic for every
    # encodable value (hex floats included).
    return json.dumps(encoded, sort_keys=True, separators=(",", ":"))


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if isinstance(value, dict):
        tag = value.get(_TAG)
        if tag is None:
            return {k: decode_value(v) for k, v in value.items()}
        body = value["v"]
        if tag == "f":
            if body == "inf":
                return float("inf")
            if body == "-inf":
                return float("-inf")
            if body == "nan":
                return float("nan")
            return float.fromhex(body)
        if tag == "t":
            return tuple(decode_value(v) for v in body)
        if tag == "s":
            return frozenset(decode_value(v) for v in body)
        if tag == "d":
            return {decode_value(k): decode_value(v) for k, v in body}
        raise SnapshotError(f"unknown snapshot tag {tag!r}")
    return value


def canonical_bytes(container: Dict[str, Any]) -> bytes:
    """Serialize an *encoded* container to canonical UTF-8 bytes."""
    return json.dumps(
        container, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("utf-8")


@dataclass
class Snapshot:
    """A captured simulation state plus the scenario that produced it.

    ``state`` is held in *raw* (decoded) form — tuples, floats, sets —
    and only rendered through the tagged encoding by :meth:`to_bytes`.
    """

    scenario_json: str
    time: float
    started: bool
    state: Dict[str, Any]
    version: int = SNAPSHOT_FORMAT_VERSION

    def _encoded(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "scenario": self.scenario_json,
            "time": encode_value(float(self.time)),
            "started": self.started,
            "state": encode_value(self.state),
        }

    def to_bytes(self) -> bytes:
        body = self._encoded()
        body["hash"] = self.content_hash()
        return canonical_bytes(body)

    def content_hash(self) -> str:
        """sha256 of the canonical bytes *excluding* the hash field."""
        return hashlib.sha256(canonical_bytes(self._encoded())).hexdigest()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Snapshot":
        try:
            body = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SnapshotError(f"corrupt snapshot: {exc}") from exc
        version = body.get("version")
        if version != SNAPSHOT_FORMAT_VERSION:
            raise SnapshotError(
                f"snapshot format version {version!r} is not supported "
                f"(this build reads version {SNAPSHOT_FORMAT_VERSION})"
            )
        snap = cls(
            scenario_json=body["scenario"],
            time=decode_value(body["time"]),
            started=bool(body["started"]),
            state=decode_value(body["state"]),
            version=version,
        )
        claimed = body.get("hash")
        if claimed is not None and claimed != snap.content_hash():
            raise SnapshotError(
                "snapshot content hash mismatch: file is corrupt or was "
                "edited by hand"
            )
        return snap


def save_snapshot(snapshot: Snapshot, path: str) -> None:
    with open(path, "wb") as fh:
        fh.write(snapshot.to_bytes())


def load_snapshot(path: str) -> Snapshot:
    with open(path, "rb") as fh:
        return Snapshot.from_bytes(fh.read())
