"""Live-state capture and re-application — the snapshot state codec.

:func:`capture_state` walks a running :class:`~repro.harness.runner
.Simulation` and produces a plain-data dict (JSON-safe through
:mod:`repro.snap.format`) describing everything the kernel would need
to continue the run bit-for-bit: RNG substream states, network
counters, in-flight envelopes, per-MSS protocol state for all six
schemes, ARQ windows and dedup filters, metrics/monitor/obs
accumulators, and a descriptor for every live event-queue entry.
:func:`apply_state` replays that dict onto a *freshly built* simulation
of the same scenario (restore-via-rebuild: static wiring comes from
``build_simulation``, only dynamic state is applied).

Safe points
-----------
Generator frames cannot be serialized, so capture only succeeds at a
**safe point**: no protocol round in flight, no process suspended
inside ``request_channel``, nothing parked on a gate or collector.
Call/arrival/crash/sampler processes suspended on plain timeouts *are*
capturable — each becomes a small descriptor, re-materialized at
restore as a purpose-built "resumed" generator that replays the rest
of the original control flow (same RNG draw order, same counters).
Anything else raises :class:`UnsafeState`; the drain loop in
:func:`repro.snap.run_to_checkpoint` steps the kernel one event and
retries, so a checkpoint lands on the first safe point at or after the
requested instant.

Determinism
-----------
Queue descriptors are captured in heap order ``(when, priority, eid)``
and re-materialized in exactly that order with fresh ascending event
ids, so every same-time tie breaks identically after restore.  By
induction the restored kernel processes the same events in the same
order as the original — the restore-determinism tests assert full-run
row identity on every scheme.
"""

from __future__ import annotations

import inspect
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from ..core.adaptive import Mode
from ..faults.arq import Ack, ReliableLink, _Pending
from ..obs.spans import Span
from ..protocols.messages import (
    AcqType,
    Acquisition,
    ChangeMode,
    Donate,
    Release,
    ReqType,
    Request,
    ResType,
    Response,
    Solicit,
)
from ..protocols.prakash import PollResponse, Transfer, TransferReply
from ..sim.events import NORMAL, PENDING, ConditionEvent, Process
from ..sim.network import Envelope
from ..sim.resources import Collector
from ..traffic.calls import CallLog
from .format import SnapshotError

__all__ = ["UnsafeState", "capture_state", "apply_state"]


class UnsafeState(Exception):
    """The simulation is not at a snapshot-safe point.

    Internal control-flow signal: :func:`capture_state` raises it when
    a protocol round, resource acquisition, or other transient exchange
    is mid-flight; ``run_to_checkpoint`` catches it, steps the kernel
    one event, and retries.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


# ---------------------------------------------------------------------------
# Payload codec
# ---------------------------------------------------------------------------
#
# Every message class that can sit in an in-flight envelope or an ARQ
# queue, by class name, with its constructor field order.  Enum-typed
# fields are stored as ints and coerced back on decode.

_PAYLOADS: Dict[str, Tuple[type, Tuple[str, ...]]] = {
    "Request": (Request, ("req_type", "channel", "ts", "sender", "round_id")),
    "Response": (Response, ("res_type", "sender", "payload", "round_id")),
    "ChangeMode": (ChangeMode, ("mode", "sender", "round_id")),
    "Acquisition": (Acquisition, ("acq_type", "sender", "channel")),
    "Release": (Release, ("sender", "channel")),
    "Solicit": (Solicit, ("sender", "need")),
    "Donate": (Donate, ("sender", "channels")),
    "PollResponse": (PollResponse, ("sender", "allocated", "busy", "round_id")),
    "Transfer": (Transfer, ("sender", "channel", "ts", "round_id")),
    "TransferReply": (TransferReply, ("sender", "channel", "granted", "round_id")),
    "Ack": (Ack, ("msg_id",)),
}

_ENUM_FIELDS = {"req_type": ReqType, "res_type": ResType, "acq_type": AcqType}

#: Reply payloads (answers to a previously processed round) — used to
#: re-open causality-checker rounds for messages still queued at restore.
_REPLY_TYPES = (Response, PollResponse, TransferReply)


def _encode_payload(payload: Any) -> List[Any]:
    name = type(payload).__name__
    entry = _PAYLOADS.get(name)
    if entry is None:
        raise UnsafeState(f"unknown payload type {name!r} in flight")
    _, fields = entry
    return [name, [getattr(payload, field) for field in fields]]


def _decode_payload(record: Any) -> Any:
    name, values = record
    cls, fields = _PAYLOADS[name]
    kwargs = {}
    for field, value in zip(fields, values):
        enum_cls = _ENUM_FIELDS.get(field)
        if enum_cls is not None:
            value = enum_cls(value)
        kwargs[field] = value
    return cls(**kwargs)


# ---------------------------------------------------------------------------
# Capture
# ---------------------------------------------------------------------------


def capture_state(sim: Any) -> Dict[str, Any]:
    """Extract a plain-data description of ``sim``'s dynamic state.

    Raises :class:`UnsafeState` if the simulation (with a started
    traffic source) is not at a safe point.  For a never-started
    simulation the event queue is not captured (``"queue": None``) —
    restore is a plain rebuild and the caller runs the normal start
    choreography.
    """
    started = bool(getattr(sim.source, "_started", False))
    state: Dict[str, Any] = {
        "env": {"now": float(sim.env._now)},
        "streams": _capture_streams(sim.streams),
        "network": _capture_network(sim.network),
        "metrics": _capture_metrics(sim.metrics),
        "monitor": _capture_monitor(sim.monitor),
        "source": _capture_source(sim.source),
        "stations": {
            str(cell): _capture_station(station)
            for cell, station in sorted(sim.stations.items())
        },
        "injector": _capture_injector(sim.injector),
        "obs": _capture_obs(sim.observer),
    }
    if started:
        _scan_stations(sim)
        state["queue"] = _classify_queue(sim)
    else:
        state["queue"] = None
    return state


def _capture_streams(streams: Any) -> Dict[str, Any]:
    return {
        key: gen.bit_generator.state
        for key, gen in sorted(streams._cache.items())
    }


def _capture_network(network: Any) -> Dict[str, Any]:
    return {
        "last_delivery": dict(network._last_delivery),
        "msg_id": network._msg_id,
        "total_sent": network.total_sent,
        "sent_by_kind": dict(network.sent_by_kind),
    }


def _capture_metrics(metrics: Any) -> Dict[str, Any]:
    return {
        "records": [
            [r.cell, r.kind, r.granted, r.queue_wait, r.acquisition_time,
             r.attempts, r.mode, r.time]
            for r in metrics.records
        ],
        "releases": metrics.releases,
        "message_baseline": dict(metrics._message_baseline),
        "message_baseline_total": metrics._message_baseline_total,
        "baseline_taken": metrics._baseline_taken,
        "faults_injected": dict(metrics.faults_injected),
        "faults_recovered": dict(metrics.faults_recovered),
        "retries": metrics.retries,
        "retry_exhausted": metrics.retry_exhausted,
    }


def _capture_monitor(monitor: Any) -> Optional[Dict[str, Any]]:
    if monitor is None:
        return None
    return {
        "users": {ch: set(users) for ch, users in sorted(monitor.users.items())},
        "violations": [
            [v.time, v.channel, v.cell, v.conflicting_cell]
            for v in monitor.violations
        ],
        "total_acquisitions": monitor.total_acquisitions,
        "total_releases": monitor.total_releases,
        "max_concurrent_users": monitor.max_concurrent_users,
        "active": monitor._active,
    }


def _capture_source(source: Any) -> Dict[str, Any]:
    if source.mix is not None:
        raise UnsafeState("multi-class TrafficMix sources are not snapshotable")
    log = source.log
    return {
        "log": {
            "started": log.started,
            "blocked": log.blocked,
            "completed": log.completed,
            "handoffs_attempted": log.handoffs_attempted,
            "handoffs_failed": log.handoffs_failed,
        },
    }


def _capture_injector(injector: Any) -> Optional[Dict[str, Any]]:
    if injector is None:
        return None
    return {
        "down": set(injector.down),
        "injected": dict(injector.injected),
    }


def _capture_link(link: Optional[ReliableLink]) -> Optional[Dict[str, Any]]:
    if link is None:
        return None
    return {
        "down": link.down,
        "pending": {
            msg_id: [p.dst, _encode_payload(p.payload), p.attempt]
            for msg_id, p in sorted(link._pending.items())
        },
        "inflight": dict(link._inflight),
        "queue": {
            dst: [_encode_payload(p) for p in q]
            for dst, q in sorted(link._queue.items())
            if q
        },
        "retransmissions": link.retransmissions,
        "recovered": link.recovered,
        "exhausted": link.exhausted,
    }


def _capture_dedup(dedup: Any) -> Optional[Dict[str, Any]]:
    if dedup is None:
        return None
    return {
        "seen": {src: list(order) for src, (_seen, order) in sorted(dedup._seen.items())},
        "suppressed": dedup.suppressed,
    }


def _capture_station(st: Any) -> Dict[str, Any]:
    data: Dict[str, Any] = {
        "scheme": type(st).__name__,
        "use": set(st.use),
        "down": st.down,
        "crash_released": st._crash_released,
        "round_counter": st._round_counter,
        "req_seq": st._req_seq,
        "req_kind": st._req_kind,
        "alias": {ch: list(q) for ch, q in sorted(st._alias.items())},
        "grant_mode": getattr(st, "_grant_mode", None),
        "link": _capture_link(st._link),
        "dedup": _capture_dedup(st._dedup),
    }
    name = data["scheme"]
    if name == "AdaptiveMSS":
        last_status = None
        for rid, collector in st._status_collectors.items():
            if collector is st._last_status_collector:
                last_status = rid
                break
        data.update({
            "mode": int(st.mode),
            "U": {j: set(st.U[j]) for j in sorted(st.U)},
            "granted_out": {j: set(st.granted_out[j]) for j in sorted(st.granted_out)},
            "UpdateS": set(st.UpdateS),
            "owed_acks": dict(st._owed_acks),
            "rounds": st.rounds,
            "policy": st.policy.state_dict(),
            "collector_round": st._collector_round,
            "status_collectors": {
                rid: [sorted(c._expected), dict(c._responses)]
                for rid, c in sorted(st._status_collectors.items())
            },
            "last_status": last_status,
            "mode_changes": st.mode_changes,
            "stale_responses": st.stale_responses,
            "local_acquires": st.local_acquires,
            "local_notify_sum": st.local_notify_sum,
            "repacks": st.repacks,
            "best_rng": (
                st._best_rng.bit_generator.state
                if st._best_rng is not None
                else None
            ),
        })
    elif name == "BasicSearchMSS":
        data["collector_round"] = st._collector_round
    elif name == "BasicUpdateMSS":
        data["U"] = {j: set(st.U[j]) for j in sorted(st.U)}
        data["collector_round"] = st._collector_round
    elif name == "AdvancedUpdateMSS":
        data["U"] = {j: set(st.U[j]) for j in sorted(st.U)}
        data["outstanding"] = {
            ch: tuple(entry) for ch, entry in sorted(st.outstanding.items())
        }
        data["collector_round"] = st._collector_round
    elif name == "PrakashMSS":
        data["allocated"] = set(st.allocated)
        data["pledged"] = set(st.pledged)
        data["collector_round"] = st._collector_round
        data["transfer_round"] = st._transfer_round
    elif name != "FixedMSS":
        raise SnapshotError(f"unknown station scheme {name!r}")
    return data


def _capture_obs(observer: Any) -> Optional[Dict[str, Any]]:
    if observer is None:
        return None
    data: Dict[str, Any] = {"tracer": None, "recorder": None, "profiler": None}
    tracer = observer.tracer
    if tracer is not None:
        data["tracer"] = {
            "closed": [_capture_span(s) for s in tracer.closed],
            "open": {key: _capture_span(s) for key, s in sorted(tracer.open.items())},
            "serving": dict(tracer._serving),
            "instants": [tuple(i) for i in tracer.instants],
            "stats": dict(tracer.stats),
        }
    recorder = observer.recorder
    if recorder is not None:
        data["recorder"] = {
            "times": list(recorder.times),
            "occupancy": {c: list(v) for c, v in sorted(recorder.occupancy.items())},
            "mode": {c: list(v) for c, v in sorted(recorder.mode.items())},
            "nfc_predicted": {
                c: list(v) for c, v in sorted(recorder.nfc_predicted.items())
            },
            "neighborhood_load": {
                c: list(v) for c, v in sorted(recorder.neighborhood_load.items())
            },
        }
    profiler = observer.profiler
    if profiler is not None:
        data["profiler"] = {
            "sim_times": list(profiler.sim_times),
            "events": list(profiler.events),
            "heap_depth": list(profiler.heap_depth),
            "wall": list(profiler.wall),
            "cpu": list(profiler.cpu),
            "messages_by_kind": [dict(m) for m in profiler.messages_by_kind],
        }
    return data


def _capture_span(span: Span) -> Dict[str, Any]:
    return {
        "cell": span.cell,
        "req_id": span.req_id,
        "kind": span.kind,
        "t_begin": span.t_begin,
        "t_serve": span.t_serve,
        "t_end": span.t_end,
        "channel": span.channel,
        "events": [tuple(e) for e in span.events],
    }


# ---------------------------------------------------------------------------
# Safe-point detection
# ---------------------------------------------------------------------------


def _scan_stations(sim: Any) -> None:
    """Raise :class:`UnsafeState` if any station holds transient state.

    The queue walk alone is not sufficient: the advanced-update,
    prakash, and adaptive schemes park request generators on bare
    untriggered events (collector ``done``, the waiting gate) that have
    *no* queue entry until they fire — so mid-round state is detected
    here, from the stations' own bookkeeping.
    """
    for cell, st in sorted(sim.stations.items()):
        def unsafe(what: str) -> None:
            raise UnsafeState(f"cell {cell}: {what}")

        if st._lock._in_use != 0 or st._lock._queue:
            unsafe("channel request holds the acquisition lock")
        if getattr(st, "_req_ts", None) is not None:
            unsafe("adaptive request in flight")
        if getattr(st, "_collector", None) is not None:
            unsafe("response round in flight")
        if getattr(st, "_transfer_collector", None) is not None:
            unsafe("transfer round in flight")
        if getattr(st, "_pending", None) is not None:
            unsafe("update-round grab pending")
        if getattr(st, "_searching", False):
            unsafe("search in flight")
        if getattr(st, "_search_ts", None) is not None:
            unsafe("search timestamp live")
        if getattr(st, "_polling", False):
            unsafe("poll in flight")
        if getattr(st, "_poll_ts", None) is not None:
            unsafe("poll timestamp live")
        if getattr(st, "_claiming", None) is not None:
            unsafe("channel claim in flight")
        if getattr(st, "_deferred", None):
            unsafe("deferred requests queued")
        if getattr(st, "DeferQ", None):
            unsafe("DeferQ non-empty")
        if getattr(st, "pending", False):
            unsafe("request parked on the waiting gate")
        gate = getattr(st, "_gate", None)
        if gate is not None and gate._waiters:
            unsafe("gate has waiters")


def _classify_queue(sim: Any) -> List[Dict[str, Any]]:
    """Describe every live event-queue entry, in canonical heap order."""
    env = sim.env
    network = sim.network
    entries: List[Dict[str, Any]] = []
    for when, prio, _eid, event in sorted(env._queue):
        if prio != NORMAL:
            raise UnsafeState("urgent event pending")
        callbacks = event.callbacks
        if callbacks is None:  # pragma: no cover - processed events leave the heap
            continue
        live = []
        for cb in callbacks:
            owner = getattr(cb, "__self__", None)
            func = getattr(cb, "__func__", None)
            func_name = getattr(func, "__name__", getattr(cb, "__name__", ""))
            if isinstance(owner, ConditionEvent) and func_name == "_check":
                if owner.triggered:
                    continue  # stale deadline whose condition resolved
                raise UnsafeState("untriggered condition event in queue")
            live.append((owner, func_name))
        if not live:
            continue  # inert (no remaining effect)
        if len(live) != 1:
            raise UnsafeState("event with multiple live callbacks")
        owner, func_name = live[0]

        if owner is network and func_name == "_deliver":
            envelope = event._value
            if envelope.deliver_at != when:
                raise UnsafeState("delivery event not at its envelope time")
            entries.append({
                "kind": "envelope",
                "src": envelope.src,
                "dst": envelope.dst,
                "payload": _encode_payload(envelope.payload),
                "sent_at": envelope.sent_at,
                "deliver_at": envelope.deliver_at,
                "msg_id": envelope.msg_id,
                "fault_tag": envelope.fault_tag,
            })
            continue
        if isinstance(owner, ReliableLink) and func_name == "_on_timer":
            msg_id = event._value
            if msg_id not in owner._pending:
                continue  # acknowledged already; timer is a no-op
            entries.append({
                "kind": "arq_timer",
                "cell": owner.node_id,
                "msg_id": msg_id,
                "when": when,
            })
            continue
        if func_name == "_owed_ack_expire":
            sender, ts = event._value
            if owner._owed_acks.get(sender) != ts:
                continue  # acknowledged or superseded; expiry is a no-op
            entries.append({
                "kind": "owed_ack",
                "cell": owner.cell,
                "sender": sender,
                "ts": ts,
                "when": when,
            })
            continue
        if isinstance(owner, Process) and func_name == "_resume":
            entries.append(_describe_process(sim, owner, when))
            continue
        raise UnsafeState(f"unclassifiable event callback {func_name!r}")
    return entries


def _describe_process(sim: Any, proc: Process, when: float) -> Dict[str, Any]:
    gen = proc._generator
    if inspect.getgeneratorstate(gen) != "GEN_SUSPENDED":
        raise UnsafeState(f"process {proc.name!r} is not suspended")
    code_name = gen.gi_code.co_name
    locs = gen.gi_frame.f_locals

    if code_name in ("_arrivals", "_resumed_arrivals"):
        if gen.gi_yieldfrom is not None:
            raise UnsafeState("arrival process suspended in a sub-generator")
        return {"kind": "arrival", "cell": locs["cell"], "wake": when}

    if code_name in ("_call_with_logs", "_resumed_call"):
        sub = gen.gi_yieldfrom
        if code_name == "_call_with_logs":
            if sub is None or sub.gi_code.co_name != "call_process":
                raise UnsafeState("call bookkeeping in flight")
            if sub.gi_yieldfrom is not None:
                raise UnsafeState("call channel request in flight")
            inner = sub.gi_frame.f_locals
            origin = locs["cell"]
        else:
            if sub is not None:
                raise UnsafeState("resumed call channel request in flight")
            inner = locs
            origin = locs["origin"]
        if "channel" not in inner or inner["channel"] is None:
            raise UnsafeState("call suspended before channel grant")
        remaining = inner["remaining"]
        after = remaining - inner["step"] if "step" in inner else remaining
        log = inner["log"] if "log" in inner else inner["local"]
        return {
            "kind": "call",
            "origin": origin,
            "mss_cell": inner["mss"].cell,
            "channel": inner["channel"],
            "after": after,
            "wake": when,
            "handoffs_attempted": log.handoffs_attempted,
        }

    if code_name in ("at_warmup", "_warmup_process"):
        return {"kind": "warmup", "wake": when}

    if code_name in ("_crash_process", "_resumed_crash"):
        window = locs["window"]
        return {
            "kind": "crash",
            "index": _crash_index(sim, window),
            "phase": "pre" if when == window.at else "post",
            "wake": when,
        }
    if code_name in ("_shadow_crash_process", "_resumed_shadow_crash"):
        window = locs["window"]
        return {
            "kind": "shadow_crash",
            "index": _crash_index(sim, window),
            "phase": "pre" if when == window.at else "post",
            "wake": when,
        }

    if code_name in ("_sampler", "_resumed_sampler"):
        if proc.name == "obs-timeseries":
            which = "timeseries"
        elif proc.name == "obs-kernel":
            which = "kernel"
        else:
            raise UnsafeState(f"unknown sampler process {proc.name!r}")
        return {"kind": "sampler", "which": which, "wake": when}

    raise UnsafeState(f"cannot describe process {proc.name!r} ({code_name})")


def _crash_index(sim: Any, window: Any) -> int:
    faults = sim.scenario.faults
    crashes = faults.crashes if faults is not None else ()
    for i, w in enumerate(crashes):
        if w is window:
            return i
    for i, w in enumerate(crashes):
        if w == window:
            return i
    raise UnsafeState("crash window not found in the scenario fault plan")


# ---------------------------------------------------------------------------
# Resumed generators
# ---------------------------------------------------------------------------
#
# Each replays the remainder of its original process's control flow
# from a mid-flight descriptor, preserving the original's RNG draw
# order exactly (verified against traffic/source.py and
# traffic/calls.py — keep in sync).


def _resumed_arrivals(source: Any, cell: int, wake_at: float):
    env = source.env
    rng = source.streams.stream("traffic", "arrivals", cell)
    call_rng = source.streams.stream("traffic", "calls", cell)
    lam_max = source.pattern.max_rate(cell)
    yield env.timeout_at(wake_at)
    while True:
        now = env._now
        if source.horizon is not None and now >= source.horizon:
            return
        accept = source.pattern.rate(cell, now) / lam_max
        if accept >= 1.0 or rng.random() < accept:
            env.process(
                source._call_with_logs(cell, source.config, call_rng, None),
                name=f"call[{cell}]",
            )
        gap = float(rng.exponential(1.0 / lam_max))
        yield env.timeout(gap)


def _resumed_call(
    env: Any,
    stations: Dict[int, Any],
    source: Any,
    origin: int,
    mss_cell: int,
    channel: int,
    config: Any,
    rng: Any,
    after: float,
    wake_at: float,
    handoffs_attempted: int,
):
    local = CallLog()
    local.handoffs_attempted = handoffs_attempted
    mss = stations[mss_cell]
    remaining = after
    yield env.timeout_at(wake_at)
    while True:
        if remaining <= 0:
            mss.release_channel(channel)
            local.completed += 1
            break
        grid = mss.topo.grid
        new_cell = grid.random_walk_step(mss.cell, rng)
        mss.release_channel(channel)
        mss = stations[new_cell]
        local.handoffs_attempted += 1
        channel = yield from mss.request_channel("handoff", config.setup_deadline)
        if channel is None:
            local.handoffs_failed += 1
            break
        if config.mean_dwell is None:
            dwell = float("inf")
        else:
            dwell = float(rng.exponential(config.mean_dwell))
        step = min(remaining, dwell)
        yield env.timeout(step)
        remaining -= step
    # Fold into the aggregate log; ``started`` was counted at arrival.
    log = source.log
    log.blocked += local.blocked
    log.completed += local.completed
    log.handoffs_attempted += local.handoffs_attempted
    log.handoffs_failed += local.handoffs_failed


def _resumed_crash(
    env: Any, injector: Any, station: Any, window: Any, wake_at: float, phase: str
):
    if phase == "pre":
        yield env.timeout_at(wake_at)
        injector.down.add(window.cell)
        injector._record("crash", (window.cell, window.lose_state))
        station._crash(window.lose_state)
        yield env.timeout(window.downtime)
    else:
        yield env.timeout_at(wake_at)
    injector.down.discard(window.cell)
    injector._record("restart", (window.cell,))
    station._restart()


def _resumed_shadow_crash(env: Any, injector: Any, window: Any, wake_at: float, phase: str):
    if phase == "pre":
        yield env.timeout_at(wake_at)
        injector.down.add(window.cell)
        yield env.timeout(window.downtime)
    else:
        yield env.timeout_at(wake_at)
    injector.down.discard(window.cell)


def _warmup_process(env: Any, metrics: Any, network: Any, wake_at: float):
    yield env.timeout_at(wake_at)
    metrics.snapshot_message_baseline(network)


def _resumed_sampler(env: Any, recorder: Any, wake_at: float):
    yield env.timeout_at(wake_at)
    # A fresh ``_sampler()`` starts at the loop top — horizon check,
    # sample, sleep — which is exactly the post-wake control flow.
    yield from recorder._sampler()


def _forge_process(env: Any, gen: Any, name: str) -> Process:
    """Re-materialize a suspended process without the URGENT kick-start.

    ``Process.__init__`` schedules an urgent init event to start the
    generator at the *current* instant; a restored process must instead
    already be parked on its wake timeout.  So: advance the generator
    to its first yield (which pushes the wake event with the next
    sequential event id), then forge the Process shell around it.
    """
    first = gen.send(None)
    proc = Process.__new__(Process)
    proc.env = env
    proc.callbacks = []
    proc._value = PENDING
    proc._ok = True
    proc._defused = False
    proc._processed = False
    proc._generator = gen
    proc.name = name
    proc._target = first
    first.callbacks.append(proc._resume)
    return proc


# ---------------------------------------------------------------------------
# Apply
# ---------------------------------------------------------------------------


def apply_state(sim: Any, state: Dict[str, Any], reseed: bool = False) -> None:
    """Overwrite ``sim``'s dynamic state with a captured ``state``.

    ``sim`` must be freshly built from the snapshot's scenario (or,
    with ``reseed=True``, from the same scenario under a different
    seed: registry stream states are then *not* restored, so every
    post-fork draw comes from the new seed's substreams, while
    structural state — channels in use, in-flight messages, protocol
    mirrors — carries over).
    """
    env = sim.env
    env._queue.clear()
    env._eid = 0
    env._now = state["env"]["now"]

    if not reseed:
        _apply_streams(sim.streams, state["streams"])
    _apply_network(sim.network, state["network"])
    _apply_metrics(sim.metrics, state["metrics"])
    _apply_monitor(sim.monitor, state["monitor"])
    _apply_source(sim.source, state["source"])
    _apply_injector(sim.injector, state["injector"])
    for cell_key, data in sorted(state["stations"].items(), key=lambda kv: int(kv[0])):
        cell = int(cell_key)
        station = sim.stations.get(cell)
        if station is None:
            raise SnapshotError(f"snapshot covers unknown cell {cell}")
        _apply_station(station, data)
    _apply_obs(sim.observer, state["obs"])
    _prime_sanitizers(sim)
    if state["queue"] is not None:
        _materialize_queue(sim, state["queue"], reseed)
        sim.source._started = True


def _apply_streams(streams: Any, data: Dict[str, Any]) -> None:
    for key, rng_state in sorted(data.items()):
        gen = streams.stream(*key.split("/"))
        gen.bit_generator.state = rng_state


def _apply_network(network: Any, data: Dict[str, Any]) -> None:
    network._last_delivery.clear()
    network._last_delivery.update(data["last_delivery"])
    network._msg_id = data["msg_id"]
    network.total_sent = data["total_sent"]
    network.sent_by_kind.clear()
    network.sent_by_kind.update(data["sent_by_kind"])


def _apply_metrics(metrics: Any, data: Dict[str, Any]) -> None:
    metrics.records[:] = [
        # Rebuild via record_acquisition's own dataclass to keep one
        # construction path; the warmup filter must not re-apply, so
        # append directly.
        _make_record(fields) for fields in data["records"]
    ]
    metrics.releases = data["releases"]
    metrics._message_baseline = dict(data["message_baseline"])
    metrics._message_baseline_total = data["message_baseline_total"]
    metrics._baseline_taken = data["baseline_taken"]
    metrics.faults_injected = dict(data["faults_injected"])
    metrics.faults_recovered = dict(data["faults_recovered"])
    metrics.retries = data["retries"]
    metrics.retry_exhausted = data["retry_exhausted"]


def _make_record(fields: List[Any]) -> Any:
    from ..metrics.collector import AcquisitionRecord

    cell, kind, granted, queue_wait, acquisition_time, attempts, mode, time = fields
    return AcquisitionRecord(
        cell=cell,
        kind=kind,
        granted=granted,
        queue_wait=queue_wait,
        acquisition_time=acquisition_time,
        attempts=attempts,
        mode=mode,
        time=time,
    )


def _apply_monitor(monitor: Any, data: Optional[Dict[str, Any]]) -> None:
    if monitor is None or data is None:
        return
    from ..protocols.monitor import InterferenceViolation

    monitor.users.clear()
    for ch, users in data["users"].items():
        monitor.users[ch] = set(users)
    monitor.violations[:] = [
        InterferenceViolation(time=t, channel=ch, cell=c, conflicting_cell=o)
        for t, ch, c, o in data["violations"]
    ]
    monitor.total_acquisitions = data["total_acquisitions"]
    monitor.total_releases = data["total_releases"]
    monitor.max_concurrent_users = data["max_concurrent_users"]
    monitor._active = data["active"]


def _apply_source(source: Any, data: Dict[str, Any]) -> None:
    log = source.log
    for field, value in data["log"].items():
        setattr(log, field, value)


def _apply_injector(injector: Any, data: Optional[Dict[str, Any]]) -> None:
    if injector is None or data is None:
        if (injector is None) != (data is None):
            raise SnapshotError("fault-injector presence differs from snapshot")
        return
    injector.down.clear()
    injector.down.update(data["down"])
    injector.injected.clear()
    injector.injected.update(data["injected"])


def _apply_link(link: Optional[ReliableLink], data: Optional[Dict[str, Any]]) -> None:
    if link is None or data is None:
        if (link is None) != (data is None):
            raise SnapshotError("hardening (ARQ link) presence differs from snapshot")
        return
    link.down = data["down"]
    link._pending = {}
    for msg_id, (dst, payload, attempt) in sorted(data["pending"].items()):
        record = _Pending(dst, _decode_payload(payload))
        record.attempt = attempt
        link._pending[msg_id] = record
    link._inflight = dict(data["inflight"])
    link._queue = {
        dst: deque(_decode_payload(p) for p in payloads)
        for dst, payloads in sorted(data["queue"].items())
    }
    link.retransmissions = data["retransmissions"]
    link.recovered = data["recovered"]
    link.exhausted = data["exhausted"]


def _apply_dedup(dedup: Any, data: Optional[Dict[str, Any]]) -> None:
    if dedup is None or data is None:
        return
    dedup._seen = {
        src: (set(order), deque(order)) for src, order in sorted(data["seen"].items())
    }
    dedup.suppressed = data["suppressed"]


def _apply_station(st: Any, data: Dict[str, Any]) -> None:
    if type(st).__name__ != data["scheme"]:
        raise SnapshotError(
            f"scheme mismatch at cell {st.cell}: built {type(st).__name__}, "
            f"snapshot has {data['scheme']}"
        )
    st.use.clear()
    st.use.update(data["use"])
    st.down = data["down"]
    st._crash_released = data["crash_released"]
    st._round_counter = data["round_counter"]
    st._req_seq = data["req_seq"]
    st._req_kind = data["req_kind"]
    st._alias = {ch: deque(q) for ch, q in sorted(data["alias"].items())}
    if data["grant_mode"] is not None:
        st._grant_mode = data["grant_mode"]
    _apply_link(st._link, data["link"])
    _apply_dedup(st._dedup, data["dedup"])

    name = data["scheme"]
    if name == "AdaptiveMSS":
        st.mode = Mode(data["mode"])
        for j, members in sorted(data["U"].items()):
            st.U[j].replace(members)
        for j, members in sorted(data["granted_out"].items()):
            st.granted_out[j].replace(members)
        st.UpdateS.clear()
        st.UpdateS.update(data["UpdateS"])
        st._owed_acks.clear()
        st._owed_acks.update(sorted(data["owed_acks"].items()))
        st.rounds = data["rounds"]
        st.policy.load_state(data["policy"])
        st._collector_round = data["collector_round"]
        st._status_collectors = {}
        for rid, (expected, responses) in sorted(data["status_collectors"].items()):
            collector = Collector(st.env, expected)
            for tag in sorted(responses):
                collector.deliver(tag, responses[tag])
            collector.done.callbacks.append(
                lambda _ev, rid=rid, st=st: st._status_collectors.pop(rid, None)
            )
            st._status_collectors[rid] = collector
        last = data["last_status"]
        st._last_status_collector = (
            st._status_collectors[last] if last is not None else None
        )
        st.mode_changes = data["mode_changes"]
        st.stale_responses = data["stale_responses"]
        st.local_acquires = data["local_acquires"]
        st.local_notify_sum = data["local_notify_sum"]
        st.repacks = data["repacks"]
        if data["best_rng"] is not None:
            import numpy as np

            if st._best_rng is None:
                st._best_rng = np.random.default_rng(10_000 + st.cell)
            st._best_rng.bit_generator.state = data["best_rng"]
    elif name == "BasicSearchMSS":
        st._collector_round = data["collector_round"]
    elif name == "BasicUpdateMSS":
        st.U.clear()
        for j, members in sorted(data["U"].items()):
            st.U[j] = set(members)
        st._collector_round = data["collector_round"]
    elif name == "AdvancedUpdateMSS":
        st.U.clear()
        for j, members in sorted(data["U"].items()):
            st.U[j] = set(members)
        st.outstanding.clear()
        for ch, entry in sorted(data["outstanding"].items()):
            grantee, ts = entry
            st.outstanding[ch] = (grantee, tuple(ts))
        st._collector_round = data["collector_round"]
    elif name == "PrakashMSS":
        st.allocated.clear()
        st.allocated.update(data["allocated"])
        st.pledged.clear()
        st.pledged.update(data["pledged"])
        st._collector_round = data["collector_round"]
        st._transfer_round = data["transfer_round"]


def _apply_obs(observer: Any, data: Optional[Dict[str, Any]]) -> None:
    if observer is None or data is None:
        if (observer is None) != (data is None):
            raise SnapshotError("observability presence differs from snapshot")
        return
    tracer = observer.tracer
    if tracer is not None and data["tracer"] is not None:
        td = data["tracer"]
        tracer.closed[:] = [_make_span(s) for s in td["closed"]]
        tracer.open.clear()
        for key, s in sorted(td["open"].items()):
            tracer.open[tuple(key)] = _make_span(s)
        tracer._serving.clear()
        tracer._serving.update(td["serving"])
        tracer.instants[:] = [tuple(i) for i in td["instants"]]
        tracer.stats.update(td["stats"])
    recorder = observer.recorder
    if recorder is not None and data["recorder"] is not None:
        rd = data["recorder"]
        recorder.times[:] = list(rd["times"])
        for field in ("occupancy", "mode", "nfc_predicted", "neighborhood_load"):
            target = getattr(recorder, field)
            for cell, series in rd[field].items():
                target[cell][:] = list(series)
    profiler = observer.profiler
    if profiler is not None and data["profiler"] is not None:
        pd = data["profiler"]
        profiler.sim_times[:] = list(pd["sim_times"])
        profiler.events[:] = list(pd["events"])
        profiler.heap_depth[:] = list(pd["heap_depth"])
        profiler.wall[:] = list(pd["wall"])
        profiler.cpu[:] = list(pd["cpu"])
        profiler.messages_by_kind[:] = [dict(m) for m in pd["messages_by_kind"]]


def _make_span(data: Dict[str, Any]) -> Span:
    span = Span(data["cell"], data["req_id"], data["kind"], data["t_begin"])
    span.t_serve = data["t_serve"]
    span.t_end = data["t_end"]
    span.channel = data["channel"]
    span.events = [tuple(e) for e in data["events"]]
    return span


def _prime_sanitizers(sim: Any) -> None:
    """Seed the sanitizer suite with the restored world's prior facts.

    * Quiescence: channels already in use must count as held, or their
      eventual releases would flag as unmatched.
    * Causality: reply payloads still queued in restored ARQ links will
      be *sent* after restore, answering rounds whose requests were
      processed before the snapshot — re-open those rounds.  (In-flight
      reply envelopes need nothing: their round bookkeeping happened at
      the original send.  The vector-clock checker is restore-tolerant
      by construction: deliveries without a recorded send stamp verify
      nothing.)
    """
    suite = sim.sanitizers
    if suite is None:
        return
    quiescence = getattr(suite, "quiescence", None)
    if quiescence is not None:
        for cell, st in sorted(sim.stations.items()):
            if st.use:
                quiescence.held[cell] = set(st.use)
    causality = getattr(suite, "causality", None)
    if causality is not None:
        for cell, st in sorted(sim.stations.items()):
            link = st._link
            if link is None:
                continue
            for dst, queued in sorted(link._queue.items()):
                for payload in queued:
                    if isinstance(payload, _REPLY_TYPES):
                        causality._open_rounds.setdefault(st.node_id, set()).add(
                            (dst, payload.round_id)
                        )


def _materialize_queue(sim: Any, entries: List[Dict[str, Any]], reseed: bool) -> None:
    """Re-create the event heap from descriptors, in capture order.

    Each descriptor schedules exactly one event, so fresh event ids
    ascend in capture order and all same-time ties break as in the
    original heap.  In-flight envelopes get fresh per-link-monotone
    sequence numbers (the global ``_seq`` counter is not part of a
    snapshot); ``network._seq`` then resumes above them.
    """
    env = sim.env
    network = sim.network
    stations = sim.stations
    source = sim.source
    seq = 0
    for entry in entries:
        kind = entry["kind"]
        if kind == "envelope":
            seq += 1
            envelope = Envelope(
                entry["src"],
                entry["dst"],
                _decode_payload(entry["payload"]),
                entry["sent_at"],
                entry["deliver_at"],
                seq,
                entry["msg_id"],
                entry["fault_tag"],
            )
            delivery = env.timeout_at(entry["deliver_at"], envelope)
            delivery.callbacks.append(network._deliver)
        elif kind == "arq_timer":
            link = stations[entry["cell"]]._link
            if link is None:
                raise SnapshotError("snapshot has ARQ timers but hardening is off")
            timer = env.timeout_at(entry["when"], entry["msg_id"])
            timer.callbacks.append(link._on_timer)
        elif kind == "owed_ack":
            station = stations[entry["cell"]]
            timer = env.timeout_at(entry["when"], (entry["sender"], tuple(entry["ts"])))
            timer.callbacks.append(station._owed_ack_expire)
        elif kind == "arrival":
            cell = entry["cell"]
            wake = entry["wake"]
            if reseed:
                # The exponential gap is memoryless: redrawing the next
                # arrival from the fork seed's own substream keeps the
                # process statistically exact and deterministic per seed.
                rng = source.streams.stream("traffic", "arrivals", cell)
                wake = env._now + float(rng.exponential(1.0 / source.pattern.max_rate(cell)))
            gen = _resumed_arrivals(source, cell, wake)
            _forge_process(env, gen, f"arrivals[{cell}]")
        elif kind == "call":
            origin = entry["origin"]
            rng = source.streams.stream("traffic", "calls", origin)
            gen = _resumed_call(
                env,
                stations,
                source,
                origin,
                entry["mss_cell"],
                entry["channel"],
                source.config,
                rng,
                entry["after"],
                entry["wake"],
                entry["handoffs_attempted"],
            )
            _forge_process(env, gen, f"call[{origin}]")
        elif kind == "warmup":
            gen = _warmup_process(env, sim.metrics, network, entry["wake"])
            _forge_process(env, gen, "at_warmup")
        elif kind in ("crash", "shadow_crash"):
            injector = sim.injector
            if injector is None:
                raise SnapshotError("snapshot has crash windows but faults are off")
            window = sim.scenario.faults.crashes[entry["index"]]
            if kind == "crash":
                gen = _resumed_crash(
                    env,
                    injector,
                    stations[window.cell],
                    window,
                    entry["wake"],
                    entry["phase"],
                )
                _forge_process(env, gen, "_crash_process")
            else:
                gen = _resumed_shadow_crash(
                    env, injector, window, entry["wake"], entry["phase"]
                )
                _forge_process(env, gen, "_shadow_crash_process")
        elif kind == "sampler":
            observer = sim.observer
            if observer is None:
                raise SnapshotError("snapshot has obs samplers but obs is off")
            if entry["which"] == "timeseries":
                recorder, name = observer.recorder, "obs-timeseries"
            else:
                recorder, name = observer.profiler, "obs-kernel"
            if recorder is None:
                raise SnapshotError(f"snapshot has a {entry['which']} sampler but it is off")
            gen = _resumed_sampler(env, recorder, entry["wake"])
            _forge_process(env, gen, name)
        else:
            raise SnapshotError(f"unknown queue descriptor kind {kind!r}")
    network._seq = seq
