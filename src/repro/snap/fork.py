"""Checkpointing drivers: take, resume, and fork snapshots.

* :func:`checkpoint` / :func:`restore` — the core pair: capture a live
  :class:`~repro.harness.runner.Simulation` into a :class:`Snapshot`,
  and rebuild a runnable simulation from one.
* :func:`run_to_checkpoint` — build and run a scenario up to an
  instant, then capture at the first safe point at/after it.
* :func:`run_from_snapshot` — restore and run to the scenario horizon,
  returning a normal :class:`~repro.harness.runner.Report`.
* :func:`fork_replications` — the warm-start sweep driver: fork N seeds
  from one warmed-up snapshot instead of re-simulating the warmup N
  times, with result-cache rows keyed by the snapshot's content hash.
"""

from __future__ import annotations

from typing import Any, List, Optional

from .format import SNAPSHOT_FORMAT_VERSION, Snapshot, SnapshotError
from .state import UnsafeState, apply_state, capture_state

__all__ = [
    "MAX_DRAIN_STEPS",
    "checkpoint",
    "fork_replications",
    "restore",
    "run_from_snapshot",
    "run_to_checkpoint",
]

#: Upper bound on single-step draining while hunting for a safe point.
#: Protocol rounds resolve within a handful of message latencies, so a
#: real simulation reaches a safe point in far fewer events; the bound
#: only exists to turn a (hypothetical) livelock into a clean error.
MAX_DRAIN_STEPS = 100_000


def checkpoint(sim: Any) -> Snapshot:
    """Capture ``sim`` into a :class:`Snapshot`.

    The simulation must be at a safe point (see
    :mod:`repro.snap.state`); otherwise :class:`UnsafeState` propagates
    and the caller should step the kernel and retry —
    :func:`run_to_checkpoint` does exactly that.
    """
    if getattr(sim, "fastlane", None) is not None:
        raise SnapshotError(
            "cannot checkpoint a fastlane simulation: a fluid cell's "
            "calls exist only as analytic occupancy, not as discrete "
            "call records the snapshot state format can capture; rerun "
            "with fastlane=False to checkpoint"
        )
    try:
        scenario_json = sim.scenario.to_json()
    except (TypeError, ValueError) as exc:
        raise SnapshotError(
            "scenario is not JSON-serializable (custom pattern or "
            "extra_params?); only serializable scenarios can be "
            "checkpointed"
        ) from exc
    return Snapshot(
        scenario_json=scenario_json,
        time=float(sim.env._now),
        started=bool(sim.source._started),
        state=capture_state(sim),
    )


def restore(snapshot: Snapshot, seed: Optional[int] = None) -> Any:
    """Rebuild a runnable :class:`Simulation` from ``snapshot``.

    Restore works by *rebuild*: the scenario is built from scratch (all
    static wiring — topology, stations, probes — comes from
    ``build_simulation``) and only the captured dynamic state is applied
    on top.  The returned simulation sits at ``snapshot.time`` with the
    event heap re-materialized; run it with ``sim.env.run(...)``.

    ``seed`` forks the snapshot: the simulation is built under the new
    seed and the captured RNG stream states are *not* applied, so every
    post-fork draw comes from the fork seed's substreams while the
    structural warm state (calls in progress, channel mirrors,
    in-flight messages) carries over.  ``seed=None`` (or the snapshot's
    own seed) is an exact continuation.
    """
    if snapshot.version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot format version {snapshot.version!r} is not "
            f"supported (this build reads {SNAPSHOT_FORMAT_VERSION})"
        )
    from ..harness.config import Scenario
    from ..harness.runner import build_simulation

    scenario = Scenario.from_json(snapshot.scenario_json)
    reseed = seed is not None and seed != scenario.seed
    if reseed:
        scenario = scenario.with_(seed=seed)
    sim = build_simulation(scenario)
    if snapshot.started:
        apply_state(sim, snapshot.state, reseed=reseed)
    return sim


def run_to_checkpoint(
    scenario: Any,
    at: float,
    drain_window: Optional[float] = None,
) -> Snapshot:
    """Run ``scenario`` to (the first safe point at/after) ``at``.

    ``at <= 0`` captures a *cold* snapshot — the built-but-unstarted
    stack, which restores as a plain rebuild and runs the normal start
    choreography (this is the t0-fork form, works for every scheme,
    and is the only form that can be resumed under ``shards > 1``).

    For ``at > 0`` the kernel runs to ``at`` and then drains one event
    at a time until capture succeeds; the snapshot's ``time`` is the
    drained instant, which may lie after ``at`` (in-flight protocol
    rounds must land first).  The drain hunts for a *globally
    quiescent* instant — no channel request in progress anywhere — so
    its reachability depends on the scheme and the load: local-mode
    adaptive and fixed acquisitions complete without suspending and
    quiesce constantly, while a saturated search scheme (mean
    acquisition ~12 T across 49 cells) may never quiesce before the
    horizon.  The drain gives up at ``at + drain_window`` (default:
    ``50`` time units, ~25 round trips) or ``scenario.duration``,
    whichever is earlier — it never simulates past the horizon — and
    raises :class:`SnapshotError` naming the dominant obstacle, rather
    than returning a snapshot far from where you asked.
    """
    from ..harness.runner import build_simulation
    from ..sim.engine import EmptySchedule

    if getattr(scenario, "fastlane", False):
        # Fail before paying the build: checkpoint() would reject the
        # built stack anyway (fluid cells are not capturable).
        raise SnapshotError(
            "cannot checkpoint a fastlane scenario: fluid cells hold "
            "analytic occupancy the snapshot state format cannot "
            "represent; rerun with fastlane=False to checkpoint"
        )
    sim = build_simulation(scenario)
    if at <= 0.0:
        return checkpoint(sim)

    env = sim.env
    warmup = scenario.warmup
    metrics = sim.metrics
    network = sim.network

    def at_warmup():
        yield env.timeout(warmup)
        metrics.snapshot_message_baseline(network)

    env.process(at_warmup())
    sim.source.start()
    env.run(until=min(float(at), scenario.duration))

    if drain_window is None:
        drain_window = 50.0
    # Events at exactly t=duration must stay unprocessed: a cold run's
    # stop event outranks them, so processing any would make the
    # resumed trajectory diverge from run-from-scratch.
    limit = min(scenario.duration, float(at) + float(drain_window))
    last_reason = "queue exhausted"
    for _ in range(MAX_DRAIN_STEPS):
        try:
            return checkpoint(sim)
        except UnsafeState as exc:
            last_reason = exc.reason
        if env._queue and env._queue[0][0] >= limit:
            break
        try:
            env.step()
        except EmptySchedule:
            break
    raise SnapshotError(
        f"no snapshot-safe point found in [{at}, {limit}] "
        f"(dominant obstacle: {last_reason}); this scheme/load may "
        f"never quiesce mid-run — checkpoint at t=0 instead, or widen "
        f"drain_window"
    )


def run_from_snapshot(
    snapshot: Snapshot,
    seed: Optional[int] = None,
    shards: int = 1,
) -> Any:
    """Restore ``snapshot`` (optionally forked to ``seed``) and run it
    to the scenario horizon; returns the :class:`Report`.

    A cold (t0) snapshot is a plain rebuild and supports any ``shards``
    value.  A mid-run snapshot resumes on a single kernel — the sharded
    coordinator re-partitions state at build time, so ``shards > 1``
    raises :class:`SnapshotError` rather than silently diverging.
    """
    from ..harness.config import Scenario
    from ..harness.runner import Report, run_scenario

    scenario = Scenario.from_json(snapshot.scenario_json)
    if seed is not None and seed != scenario.seed:
        scenario = scenario.with_(seed=seed)
    if not snapshot.started:
        return run_scenario(scenario, shards=shards)
    if shards != 1:
        raise SnapshotError(
            "a mid-run snapshot resumes on a single kernel; take the "
            "checkpoint at t=0 for sharded continuation"
        )
    sim = restore(snapshot, seed=seed)
    if sim.env._now < scenario.duration:
        sim.env.run(until=scenario.duration)
    return Report.from_simulation(sim)


def fork_replications(
    snapshot: Snapshot,
    n: int,
    cache: Any = None,
    seeds: Optional[List[int]] = None,
) -> List[Any]:
    """Fork ``n`` replications (seed, seed+1, ...) from one snapshot.

    The warm counterpart of
    :func:`repro.harness.runner.run_replications`: the warmup transient
    is paid once (by whoever produced ``snapshot``) and each
    replication simulates only the post-checkpoint window.  Results are
    cached under ``variant="warm:<snapshot hash>"`` so warm rows can
    never alias cold rows for the same scenario (see
    :mod:`repro.harness.cache`).
    """
    from ..harness.cache import resolve_cache
    from ..harness.config import Scenario

    base = Scenario.from_json(snapshot.scenario_json)
    if seeds is None:
        seeds = [base.seed + i for i in range(n)]
    elif len(seeds) != n:
        raise ValueError(f"got {len(seeds)} seeds for n={n}")
    store = resolve_cache(cache)
    variant = f"warm:{snapshot.content_hash()}"
    reports: List[Any] = []
    for seed in seeds:
        scenario = base.with_(seed=seed)
        hit = store.get(scenario, variant=variant) if store is not None else None
        if hit is not None:
            reports.append(hit)
            continue
        report = run_from_snapshot(snapshot, seed=seed)
        if store is not None:
            store.put(scenario, report, variant=variant)
        reports.append(report)
    return reports
