"""Parameter sweeps with replication — the workhorse behind the
experiment scripts.

``sweep`` runs a base scenario across the values of one parameter (any
``Scenario`` field, or an ``extra_params`` key), optionally replicated
over several seeds, and returns tidy rows suitable for tables or CSV.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from .config import Scenario
from .parallel import run_cells
from .runner import Report

__all__ = ["SweepResult", "sweep", "to_csv", "DEFAULT_COLUMNS"]

#: Report attributes extracted into sweep rows by default.
DEFAULT_COLUMNS = (
    "drop_rate",
    "new_call_block_rate",
    "handoff_failure_rate",
    "mean_acquisition_time",
    "p95_acquisition_time",
    "messages_per_acquisition",
    "mean_attempts",
    "fairness_index",
    "violations",
)


@dataclass
class SweepResult:
    """Rows of a parameter sweep plus helpers to aggregate them."""

    parameter: str
    columns: Sequence[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    reports: List[Report] = field(default_factory=list)

    def values(self) -> List[Any]:
        seen: List[Any] = []
        for row in self.rows:
            if row[self.parameter] not in seen:
                seen.append(row[self.parameter])
        return seen

    def mean_over_seeds(self, column: str) -> Dict[Any, float]:
        """Average a column across replications, per parameter value.

        Raises ``TypeError`` with the offending column/value if the
        column holds non-numeric data (e.g. an ``extra`` callback that
        returns labels).
        """
        sums: Dict[Any, List[float]] = {}
        for row in self.rows:
            value = row[column]
            try:
                numeric = float(value)
            except (TypeError, ValueError):
                raise TypeError(
                    f"column {column!r} is not numeric and cannot be "
                    f"averaged: got {value!r} at "
                    f"{self.parameter}={row.get(self.parameter)!r}, "
                    f"seed={row.get('seed')!r}"
                ) from None
            sums.setdefault(row[self.parameter], []).append(numeric)
        return {k: sum(v) / len(v) for k, v in sums.items()}

    def table_rows(self, columns: Optional[Sequence[str]] = None) -> List[List[Any]]:
        """Aggregated (mean-over-seeds) rows for render_table."""
        columns = list(columns or self.columns)
        means = {c: self.mean_over_seeds(c) for c in columns}
        return [
            [value] + [round(means[c][value], 4) for c in columns]
            for value in self.values()
        ]


def _scenario_fields() -> set:
    return {f.name for f in fields(Scenario)}


def sweep(
    base: Scenario,
    parameter: str,
    values: Iterable[Any],
    seeds: Iterable[int] = (1,),
    columns: Sequence[str] = DEFAULT_COLUMNS,
    extra: Optional[Callable[[Report], Dict[str, Any]]] = None,
    workers: Optional[int] = 1,
    cache: Any = None,
) -> SweepResult:
    """Run ``base`` for every (value, seed) combination.

    ``parameter`` may name a ``Scenario`` field (e.g. ``offered_load``,
    ``alpha``) or, if unknown, is passed through ``extra_params`` to the
    MSS constructor (e.g. ``best_policy``).  ``extra`` may compute
    additional per-report columns.

    ``workers`` fans the (value, seed) cells out over a process pool
    (``None`` = one per CPU); rows are re-ordered deterministically, so
    parallel output is row-for-row identical to serial.  ``cache``
    controls the persistent result cache (see
    :func:`repro.harness.cache.resolve_cache`): by default, re-running
    an unchanged sweep on unchanged code is a cache hit; pass
    ``cache=False`` or set ``REPRO_CACHE=off`` to always simulate.
    """
    known = _scenario_fields()
    result = SweepResult(parameter=parameter, columns=list(columns))
    cells: List[Scenario] = []
    labels: List[tuple] = []
    for value in values:
        for seed in seeds:
            if parameter in known:
                scenario = base.with_(**{parameter: value}, seed=seed)
            else:
                params = dict(base.extra_params)
                params[parameter] = value
                scenario = base.with_(extra_params=params, seed=seed)
            cells.append(scenario)
            labels.append((value, seed))
    reports = run_cells(cells, workers=workers, cache=cache)
    for (value, seed), report in zip(labels, reports):
        row: Dict[str, Any] = {parameter: value, "seed": seed}
        for column in columns:
            row[column] = getattr(report, column)
        if extra is not None:
            row.update(extra(report))
        result.rows.append(row)
        result.reports.append(report)
    return result


def to_csv(result: SweepResult) -> str:
    """Serialize sweep rows as CSV text.

    Rows may have heterogeneous keys (an ``extra`` callback that
    returns different columns per report): the header is the union of
    all row keys in first-appearance order, and missing cells are
    left blank.
    """
    if not result.rows:
        return ""
    buffer = io.StringIO()
    fieldnames: List[str] = []
    seen = set()
    for row in result.rows:
        for key in row:
            if key not in seen:
                seen.add(key)
                fieldnames.append(key)
    writer = csv.DictWriter(buffer, fieldnames=fieldnames, restval="")
    writer.writeheader()
    for row in result.rows:
        writer.writerow(row)
    return buffer.getvalue()
