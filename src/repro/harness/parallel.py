"""Parallel execution of independent experiment cells.

The paper's entire evaluation is a grid of independent
(scheme, parameter, seed) simulations, so the experiment engine fans
cells out over a ``multiprocessing`` pool: each worker rebuilds its
simulation from a pickled :class:`~repro.harness.config.Scenario` and
returns the finished :class:`~repro.harness.runner.Report`.

Guarantees, in order of importance:

* **Determinism.** Results are re-ordered by cell index, so
  ``run_cells(..., workers=N)`` is row-for-row identical to the serial
  run for any N — parallelism is purely a wall-clock optimization.
* **Failure isolation.** A crashing cell never takes down the grid:
  its traceback is captured as a :class:`CellFailure` and the
  remaining cells complete; an :class:`ExperimentError` carrying every
  failure (and every successful report) is raised at the end.
* **Spawn safety.** The worker entrypoint is a module-level function
  driven only by its pickled arguments, so the pool works identically
  under the ``spawn``, ``fork`` and ``forkserver`` start methods.
  The parent's sanitizer policy is shipped along and re-applied in the
  worker, which does not inherit process globals under ``spawn``.

``workers=1`` (the default everywhere) bypasses the pool entirely and
runs serially in-process, with the same failure capture and the same
result cache integration (see :mod:`repro.harness.cache`).
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from ..verify import get_default_policy, set_default_policy
from .cache import ResultCache, resolve_cache
from .config import Scenario
from .runner import Report, run_scenario

__all__ = [
    "CellFailure",
    "ExperimentError",
    "run_cells",
    "default_workers",
]

#: Pickled per-cell work order:
#: (index, scenario, sanitizer policy, shards per cell).
_Cell = Tuple[int, Scenario, Optional[str], int]

#: Worker result: (index, ok, report-or-traceback-string).
_CellResult = Tuple[int, bool, Any]


@dataclass
class CellFailure:
    """One crashed experiment cell: which scenario, and why."""

    index: int
    scenario: Scenario
    traceback: str

    def summary(self) -> str:
        last = self.traceback.strip().splitlines()[-1] if self.traceback else "?"
        return (
            f"cell {self.index} (scheme={self.scenario.scheme!r}, "
            f"seed={self.scenario.seed}): {last}"
        )


class ExperimentError(RuntimeError):
    """One or more cells of an experiment grid crashed.

    The grid ran to completion first: ``reports`` holds every
    successful :class:`Report` (None at failed indices) and
    ``failures`` the captured tracebacks, so a long sweep's work is
    not lost to one bad cell.
    """

    def __init__(
        self, failures: List[CellFailure], reports: List[Optional[Report]]
    ) -> None:
        self.failures = failures
        self.reports = reports
        lines = [f"{len(failures)} of {len(reports)} experiment cells failed:"]
        lines += [f"  - {f.summary()}" for f in failures]
        lines.append("(full tracebacks in .failures)")
        super().__init__("\n".join(lines))


def default_workers() -> int:
    """Worker count used for ``workers=None``: one per CPU."""
    return max(1, os.cpu_count() or 1)


def _run_cell(cell: _Cell) -> _CellResult:
    """Spawn-safe worker entrypoint: run one pickled scenario.

    Exceptions are captured as formatted tracebacks rather than
    propagated, so one bad cell cannot poison the pool.
    """
    index, scenario, policy, shards = cell
    try:
        if get_default_policy() != policy:
            set_default_policy(policy)
        return index, True, run_scenario(scenario, shards=shards)
    except Exception:
        return index, False, traceback.format_exc()


def run_cells(
    scenarios: Sequence[Scenario],
    workers: Optional[int] = 1,
    cache: Any = None,
    trace_dir: Optional[str] = None,
    shards: int = 1,
) -> List[Report]:
    """Run every scenario; reports come back in input order.

    Parameters
    ----------
    scenarios:
        The experiment cells.  Each must be picklable when
        ``workers > 1`` (every stock :class:`Scenario` is).
    workers:
        Process count: ``1`` (default) runs serially in-process, ``N``
        fans out over a pool of N, ``None`` uses one per CPU.  Output
        is bit-identical regardless.
    cache:
        Result-cache knob (see
        :func:`repro.harness.cache.resolve_cache`): ``None`` uses the
        ambient default (on unless ``REPRO_CACHE=off``), ``False``
        disables, ``True``/path/:class:`ResultCache` select a cache
        explicitly.  Cached cells are served without running (or
        spawning workers) at all.
    trace_dir:
        When set, write run artifacts (see
        :func:`repro.obs.write_run_artifacts`) for every traced report
        into ``trace_dir/cell-<index>-<scheme>-seed<seed>/`` plus a
        top-level ``manifest.json``.  Writing happens in the parent,
        in cell-index order, after every worker finished — so the
        directory layout is deterministic regardless of worker count.
        Cells whose scenario has no enabled ``obs`` config are listed
        in the manifest as untraced and produce no subdirectory.
    shards:
        Space-parallel kernels *per cell* (see
        :mod:`repro.harness.sharded`); results stay row-identical to
        ``shards=1``.  Composes with ``workers``: ``workers=None``
        sizes the pool to ``cpu_count() // shards`` so cells × shards
        never oversubscribes the machine, and with ``workers > 1``
        each cell worker hosts its own shard processes (the pool uses
        non-daemonic workers in that case so they may spawn children).

    Raises
    ------
    ExperimentError
        After the whole grid has been attempted, if any cell crashed.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    scenarios = list(scenarios)
    store: Optional[ResultCache] = resolve_cache(cache)
    reports: List[Optional[Report]] = [None] * len(scenarios)

    pending: List[_Cell] = []
    policy = get_default_policy()
    for index, scenario in enumerate(scenarios):
        if not isinstance(scenario, Scenario):
            raise TypeError(f"cell {index} is not a Scenario: {scenario!r}")
        hit = store.get(scenario) if store is not None else None
        if hit is not None:
            reports[index] = hit
        else:
            pending.append((index, scenario, policy, shards))

    failures: List[CellFailure] = []

    def consume(result: _CellResult) -> None:
        index, ok, value = result
        if ok:
            reports[index] = value
            if store is not None:
                store.put(scenarios[index], value)
        else:
            failures.append(CellFailure(index, scenarios[index], value))

    if workers is None:
        # Each cell worker fans out into `shards` kernel processes of
        # its own; divide the CPUs between the two levels instead of
        # oversubscribing cells × shards workers onto them.
        workers = max(1, default_workers() // max(1, shards))
    if workers <= 1 or len(pending) <= 1:
        for cell in pending:
            consume(_run_cell(cell))
    elif shards > 1:
        # Pool workers are daemonic and may not spawn the per-shard
        # kernel processes; ProcessPoolExecutor workers may.
        ctx = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(
            max_workers=min(workers, len(pending)), mp_context=ctx
        ) as pool:
            for result in pool.map(_run_cell, pending):
                consume(result)
    else:
        # ``spawn`` everywhere: identical semantics on every platform
        # and no accidental inheritance of parent state.
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(processes=min(workers, len(pending))) as pool:
            for result in pool.imap_unordered(_run_cell, pending, chunksize=1):
                consume(result)

    if trace_dir is not None:
        _write_trace_dir(trace_dir, scenarios, reports)

    if failures:
        failures.sort(key=lambda f: f.index)
        raise ExperimentError(failures, reports)
    return reports  # type: ignore[return-value]  # all cells succeeded


def _write_trace_dir(
    trace_dir: str,
    scenarios: List[Scenario],
    reports: List[Optional[Report]],
) -> None:
    """Merge worker-local observability data into one artifact tree.

    ObsData travels back from the workers pickled inside each Report,
    so this runs entirely in the parent and in index order: the output
    is byte-deterministic for any worker count (modulo the wall-clock
    columns of the kernel profile, which are nondeterministic by
    nature).
    """
    from ..obs import write_manifest, write_run_artifacts

    entries = []
    for index, (scenario, report) in enumerate(zip(scenarios, reports)):
        name = f"cell-{index:03d}-{scenario.scheme}-seed{scenario.seed}"
        entry = {
            "index": index,
            "scheme": scenario.scheme,
            "seed": scenario.seed,
            "dir": None,
            "status": "failed" if report is None else "ok",
        }
        if report is not None and getattr(report, "obs", None) is not None:
            files = write_run_artifacts(
                report, os.path.join(trace_dir, name)
            )
            entry["dir"] = name
            entry["files"] = files
        entries.append(entry)
    write_manifest(trace_dir, entries)
