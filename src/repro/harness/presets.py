"""Named scenario presets — the workloads used throughout the
reproduction, addressable from code and the CLI (``--preset``).

>>> from repro.harness import preset
>>> report = run_scenario(preset("rush_hour").with_(scheme="adaptive"))
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..traffic.patterns import HotspotLoad, RampLoad, TemporalHotspot
from .config import Scenario

__all__ = ["PRESETS", "preset", "preset_names"]

_HOLDING = 180.0


def _paper_default() -> Scenario:
    """The paper-scale system at a moderate uniform load."""
    return Scenario(offered_load=5.0)


def _low_load() -> Scenario:
    """Table 2's regime: 10% of primary capacity."""
    return Scenario(offered_load=1.0, duration=4000.0)


def _saturated() -> Scenario:
    """Uniform overload: 140% of primary capacity."""
    return Scenario(offered_load=14.0)


def _hot_cell() -> Scenario:
    """E1's spatial hot spot: one cell at 25 E in a 2 E city."""
    return Scenario(
        pattern=HotspotLoad(2.0 / _HOLDING, [24], 25.0 / _HOLDING),
        duration=3000.0,
        warmup=500.0,
    )


def _rush_hour() -> Scenario:
    """A downtown cluster spiking for a third of the day."""
    downtown = [16, 17, 23, 24, 25, 31, 32]
    return Scenario(
        pattern=TemporalHotspot(
            2.0 / _HOLDING, downtown, 14.0 / _HOLDING, start=1000.0, end=3000.0
        ),
        duration=4000.0,
        warmup=500.0,
    )


def _morning_ramp() -> Scenario:
    """Load climbing from idle to 9 E over the run (mode transitions)."""
    return Scenario(
        pattern=RampLoad(0.2 / _HOLDING, 9.0 / _HOLDING, duration=2500.0),
        duration=3500.0,
        warmup=200.0,
    )


def _commuters() -> Scenario:
    """Moderate load with fast exponential-dwell mobility."""
    return Scenario(offered_load=6.0, mean_dwell=120.0, duration=3000.0)


PRESETS: Dict[str, Callable[[], Scenario]] = {
    "paper_default": _paper_default,
    "low_load": _low_load,
    "saturated": _saturated,
    "hot_cell": _hot_cell,
    "rush_hour": _rush_hour,
    "morning_ramp": _morning_ramp,
    "commuters": _commuters,
}


def preset(name: str) -> Scenario:
    """A fresh Scenario for a named preset workload."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; available: {preset_names()}"
        ) from None
    return factory()


def preset_names() -> List[str]:
    return sorted(PRESETS)
