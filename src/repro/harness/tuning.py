"""Policy parameter tuning: grid search over the adaptive knobs.

``tune_policy`` sweeps a mode policy's shared thresholds (α, θ_l, θ_h,
W) — plus optional policy-specific parameters — over a seeded grid,
runs every cell through the parallel engine and the persistent result
cache, and reports the best setting by a chosen objective (mean drop
rate by default).  See docs/POLICIES.md for the tuning workflow.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..policies.base import policy_spec
from .config import Scenario
from .parallel import run_cells
from .runner import Report

__all__ = ["TuneResult", "tune_policy"]


@dataclass
class TuneResult:
    """Outcome of a :func:`tune_policy` grid search."""

    policy: str
    objective: str
    #: One row per grid point: the setting dict, per-seed objective
    #: values, and their mean (the score).
    rows: List[Dict[str, Any]] = field(default_factory=list)
    #: All reports, keyed by (setting-tuple, seed) insertion order.
    reports: List[Report] = field(default_factory=list)

    @property
    def best(self) -> Dict[str, Any]:
        """The winning row (lowest mean objective, deterministic)."""
        if not self.rows:
            raise ValueError("tune_policy produced no rows")
        return min(self.rows, key=lambda r: (r["score"], r["rank_key"]))

    def best_scenario(self, base: Scenario) -> Scenario:
        """``base`` with the winning setting applied."""
        setting = self.best["setting"]
        fields_ = {
            k: v for k, v in setting.items()
            if k in ("alpha", "theta_low", "theta_high", "window")
        }
        params = dict(base.policy_params)
        params.update(
            {k: v for k, v in setting.items() if k not in fields_}
        )
        return base.with_(policy=self.policy, policy_params=params, **fields_)

    def table_rows(self) -> List[List[Any]]:
        """Rows (setting, score) sorted best-first for render_table."""
        ordered = sorted(self.rows, key=lambda r: (r["score"], r["rank_key"]))
        return [
            [
                ", ".join(f"{k}={v}" for k, v in row["setting"].items()),
                round(row["score"], 6),
            ]
            for row in ordered
        ]


def tune_policy(
    base: Scenario,
    policy: Optional[str] = None,
    *,
    alphas: Iterable[int] = (2,),
    theta_lows: Iterable[float] = (1.0,),
    theta_highs: Iterable[float] = (3.0,),
    windows: Iterable[float] = (30.0,),
    param_grid: Optional[Dict[str, Sequence[Any]]] = None,
    seeds: Iterable[int] = (1,),
    objective: str = "drop_rate",
    workers: Optional[int] = 1,
    cache: Any = None,
) -> TuneResult:
    """Grid-search a policy's parameters over seeded replications.

    ``base`` must be an adaptive scenario.  The grid is the cross
    product of ``alphas`` × ``theta_lows`` × ``theta_highs`` ×
    ``windows`` × ``param_grid`` (policy-specific parameters, e.g.
    ``{"beta": [0.1, 0.3, 0.5]}`` for "ewma"); infeasible corners with
    θ_l > θ_h are skipped.  Every grid point runs once per seed through
    :func:`repro.harness.parallel.run_cells`, so replications fan out
    over the worker pool and unchanged points are result-cache hits.

    ``objective`` names any numeric :class:`Report` attribute
    (minimized).  Ties break deterministically toward the first grid
    point in iteration order.
    """
    if base.scheme != "adaptive":
        raise ValueError(
            f"tune_policy requires scheme 'adaptive', not {base.scheme!r}"
        )
    name = base.policy if policy is None else policy
    policy_spec(name)  # fail fast on unknown policies
    seeds = list(seeds)
    if not seeds:
        raise ValueError("tune_policy needs at least one seed")
    grid_keys = list(param_grid or {})
    grid_values = [list(param_grid[k]) for k in grid_keys]

    settings: List[Dict[str, Any]] = []
    cells: List[Scenario] = []
    labels: List[Tuple[int, int]] = []  # (setting index, seed)
    for alpha, t_low, t_high, window in itertools.product(
        alphas, theta_lows, theta_highs, windows
    ):
        if t_low > t_high:
            continue
        for combo in itertools.product(*grid_values) if grid_keys else [()]:
            setting: Dict[str, Any] = {
                "alpha": alpha,
                "theta_low": t_low,
                "theta_high": t_high,
                "window": window,
            }
            extra = dict(zip(grid_keys, combo))
            setting.update(extra)
            params = dict(base.policy_params)
            params.update(extra)
            index = len(settings)
            settings.append(setting)
            for seed in seeds:
                cells.append(
                    base.with_(
                        policy=name,
                        policy_params=params,
                        alpha=alpha,
                        theta_low=t_low,
                        theta_high=t_high,
                        window=window,
                        seed=seed,
                    )
                )
                labels.append((index, seed))
    if not settings:
        raise ValueError(
            "empty tuning grid (every corner had theta_low > theta_high?)"
        )

    reports = run_cells(cells, workers=workers, cache=cache)
    result = TuneResult(policy=name, objective=objective)
    per_setting: Dict[int, Dict[int, float]] = {}
    for (index, seed), report in zip(labels, reports):
        per_setting.setdefault(index, {})[seed] = float(
            getattr(report, objective)
        )
        result.reports.append(report)
    for index, setting in enumerate(settings):
        by_seed = per_setting[index]
        values = [by_seed[s] for s in seeds]
        result.rows.append(
            {
                "setting": setting,
                "by_seed": by_seed,
                "score": sum(values) / len(values),
                "rank_key": index,
            }
        )
    return result
