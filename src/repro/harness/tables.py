"""Plain-text table rendering for benchmark output.

The benchmark harness prints each reproduced paper table/figure as an
aligned text table; this module is the single formatter so all benches
look alike and EXPERIMENTS.md can paste the output verbatim.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

__all__ = ["render_table", "format_value"]


def format_value(value: Any) -> str:
    """Human-friendly cell formatting."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.001):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
    note: Optional[str] = None,
) -> str:
    """Render an aligned text table with optional title and footnote."""
    cells: List[List[str]] = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(values: Sequence[str]) -> str:
        return "  ".join(v.ljust(widths[i]) for i, v in enumerate(values)).rstrip()

    sep = "  ".join("-" * w for w in widths)
    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * max(len(title), len(sep)))
    out.append(fmt_row(list(headers)))
    out.append(sep)
    out.extend(fmt_row(row) for row in cells)
    if note:
        out.append("")
        out.append(f"note: {note}")
    return "\n".join(out)
