"""Scenario configuration for experiments.

A :class:`Scenario` is a fully seeded, declarative description of one
simulation run: topology, scheme, traffic, network latency and protocol
parameters.  The defaults implement the paper-scale system used across
EXPERIMENTS.md: a 7×7 toroidal grid with a k=7 reuse pattern, 70
channels (10 primaries per cell, |IN| = 18) and unit message latency T.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, Optional

from ..faults import FaultPlan
from ..obs import ObsConfig
from ..traffic.patterns import (
    HotspotLoad,
    LoadPattern,
    PiecewiseLoad,
    RampLoad,
    TemporalHotspot,
    UniformLoad,
)

__all__ = ["Scenario"]

#: Load patterns reconstructable from serialized scenarios.
_PATTERN_TYPES = {
    "UniformLoad": UniformLoad,
    "HotspotLoad": HotspotLoad,
    "TemporalHotspot": TemporalHotspot,
    "RampLoad": RampLoad,
    "PiecewiseLoad": PiecewiseLoad,
}


def _pattern_to_dict(pattern: LoadPattern) -> Dict[str, Any]:
    name = type(pattern).__name__
    if name not in _PATTERN_TYPES:
        raise ValueError(f"pattern {name} is not serializable")
    state = {}
    for key, value in vars(pattern).items():
        key = key.lstrip("_")
        if isinstance(value, frozenset):
            value = sorted(value)
        state[key] = value
    return {"type": name, **state}


def _pattern_from_dict(data: Dict[str, Any]) -> LoadPattern:
    data = dict(data)
    name = data.pop("type")
    cls = _PATTERN_TYPES[name]
    if name == "UniformLoad":
        return cls(data["rate"])
    if name == "HotspotLoad":
        return cls(data["base_rate"], data["hot_cells"], data["hot_rate"])
    if name == "TemporalHotspot":
        return cls(
            data["base_rate"], data["hot_cells"], data["hot_rate"],
            data["start"], data["end"],
        )
    if name == "RampLoad":
        return cls(data["start_rate"], data["end_rate"], data["duration"])
    # PiecewiseLoad: JSON keys are strings; coerce back to ints.
    return cls({int(k): v for k, v in data["rates"].items()}, data["default"])


@dataclass
class Scenario:
    """Declarative description of one simulation run."""

    # -- scheme ------------------------------------------------------------
    scheme: str = "adaptive"

    # -- topology ------------------------------------------------------------
    rows: int = 7
    cols: int = 7
    num_channels: int = 70
    cluster_size: int = 7
    interference_radius: Optional[int] = None
    wrap: bool = True
    #: Demand-weighted static plan: channel-pool size per reuse color
    #: (see ``repro.analysis.planning``); None = balanced split.
    channels_per_color: Optional[Dict[int, int]] = None

    # -- network -------------------------------------------------------------
    latency_T: float = 1.0
    latency_model: str = "deterministic"  # or "uniform"
    latency_spread: float = 0.0  # uniform in [T, T + spread]
    fifo: bool = True

    # -- traffic ---------------------------------------------------------------
    #: Offered load per cell in Erlangs (λ·holding).  Ignored when an
    #: explicit ``pattern`` is supplied.
    offered_load: float = 5.0
    pattern: Optional[LoadPattern] = None
    mean_holding: float = 180.0
    mean_dwell: Optional[float] = None
    setup_deadline: Optional[float] = 30.0

    # -- horizon ---------------------------------------------------------------
    duration: float = 4000.0
    warmup: float = 500.0

    # -- adaptive-scheme parameters ---------------------------------------------
    alpha: int = 2
    theta_low: float = 1.0
    theta_high: float = 3.0
    window: float = 30.0
    #: Mode-policy registry entry driving the LOCAL ↔ BORROW_IDLE
    #: decision (see ``repro.policies`` and docs/POLICIES.md).  The
    #: default "linear" is the paper's sliding-window predictor and is
    #: bit-identical to the pre-registry behaviour.
    policy: str = "linear"
    #: Policy-specific constructor parameters (e.g. ``{"beta": 0.5}``
    #: for "ewma", ``{"trace": {...}}`` for "oracle").  Participates in
    #: the scenario JSON, hence in result-cache keys.
    policy_params: Dict[str, Any] = field(default_factory=dict)

    # -- baseline parameters -------------------------------------------------------
    max_attempts: int = 25

    # -- fault injection --------------------------------------------------------
    #: Fault plan (see ``repro.faults``): message loss/duplication/
    #: delay/reorder probabilities, link partitions and MSS crash
    #: windows, plus the hardening knobs.  None (default) or a plan
    #: with nothing to inject runs the original reliable network.
    faults: Optional[FaultPlan] = None

    # -- observability ----------------------------------------------------------
    #: Observability config (see ``repro.obs``): span tracing, per-cell
    #: time series and kernel profiling.  None (default) or a disabled
    #: config attaches nothing — the probe bus stays empty and the
    #: kernel keeps its no-subscriber fast path.
    obs: Optional[ObsConfig] = None

    # -- hybrid analytic/DES fast lane -------------------------------------------
    #: Advance local-mode cells with a quiescent neighborhood
    #: analytically (Erlang-loss fluid model) instead of event-by-event;
    #: cells materialize back on any borrow-related contact.  See
    #: ``repro.harness.fastlane``.  Off (the default) is bit-identical
    #: to the classic kernel; on requires scheme "fixed" or "adaptive",
    #: no fault plan, no mobility, and is rejected by sharded execution
    #: and snapshots.
    fastlane: bool = False

    # -- bookkeeping ------------------------------------------------------------
    seed: int = 1
    monitor_policy: str = "raise"
    #: Free-form extras forwarded to the MSS constructor.
    extra_params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration <= self.warmup:
            raise ValueError("duration must exceed warmup")
        if self.offered_load < 0:
            raise ValueError("offered_load must be >= 0")
        if self.mean_holding <= 0:
            raise ValueError("mean_holding must be positive")

    @property
    def arrival_rate(self) -> float:
        """Per-cell λ implied by the Erlang offered load."""
        return self.offered_load / self.mean_holding

    def effective_pattern(self) -> LoadPattern:
        """The load pattern to simulate (explicit or uniform-by-load)."""
        if self.pattern is not None:
            return self.pattern
        return UniformLoad(self.arrival_rate)

    def with_(self, **overrides) -> "Scenario":
        """A copy of this scenario with fields replaced."""
        return replace(self, **overrides)

    # -- (de)serialization ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict (patterns serialized by type + parameters)."""
        data = asdict(self)
        if self.pattern is not None:
            data["pattern"] = _pattern_to_dict(self.pattern)
        # asdict recursed into the plan; replace with the canonical form
        # (lists, not tuples) so cache keys and JSON round-trips agree.
        data["faults"] = self.faults.to_dict() if self.faults is not None else None
        data["obs"] = self.obs.to_dict() if self.obs is not None else None
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scenario":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        data = dict(data)
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown scenario fields: {sorted(unknown)}")
        if data.get("pattern") is not None:
            data["pattern"] = _pattern_from_dict(data["pattern"])
        if data.get("faults") is not None and not isinstance(
            data["faults"], FaultPlan
        ):
            data["faults"] = FaultPlan.from_dict(data["faults"])
        if data.get("obs") is not None and not isinstance(
            data["obs"], ObsConfig
        ):
            data["obs"] = ObsConfig.from_dict(data["obs"])
        if data.get("channels_per_color") is not None:
            # JSON object keys are strings; restore integer colors.
            data["channels_per_color"] = {
                int(k): v for k, v in data["channels_per_color"].items()
            }
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))
