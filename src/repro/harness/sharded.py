"""Sharded space-parallel scenario execution.

One scenario, many kernels: the hex grid is partitioned into
contiguous row bands (:func:`repro.sim.sharding.plan_shards`), each
band runs a completely ordinary simulation stack — its own
:class:`~repro.sim.engine.Environment`, network, stations, traffic,
metrics, sanitizers — over *its* cells only, and the coordinator here
advances all bands in lockstep time windows.

**Synchronization protocol (conservative, null-message-free).**  The
deterministic latency model gives every message a hard minimum one-way
delay ``T``; with window width ``W = T``, a message sent anywhere in
the window ``[t, t + T)`` delivers no earlier than ``t + T``.  So each
shard can run a whole window in isolation: nothing another shard sent
*during* the window can affect it until the *next* window.  At the
barrier, cross-shard envelopes exported by every shard's
:class:`~repro.sim.sharding.ShardPort` are routed, merge-sorted by
``(deliver_at, sent_at, src, dst, msg_id)`` and injected into their
destination kernels before any kernel enters the next window.
``window_mode="adaptive"`` additionally widens windows across
quiescent stretches — when every kernel's next event and every
in-flight record lie past the next boundary, the barrier jumps ahead
(see :class:`_WindowClock`); results are row-identical either way.

**Determinism.**  Per-cell behavior is driven by per-cell named random
substreams, so a station's local decisions do not depend on which
kernel hosts it.  The merge order reproduces the single-kernel
tie-break for every tie a FIFO fabric produces: same-link ties arrive
in send order (``sent_at`` then ``msg_id``), and same-timestamp
arrivals from different senders — replies to one multicast round —
arrive in ascending source order, matching the protocols' sorted
``IN`` fan-out.  Everything else the interleaving could permute
(metrics aggregation, reply collection) is keyed by cell and
commutative.  ``shards=N`` is therefore row-identical to ``shards=1``;
the test suite asserts this per scheme, under faults, and with the
sanitizer suite raising.

**Correctness oracles.**  Each shard runs the full sanitizer suite;
the vector-clock checker is re-primed across the boundary via the
``shard.recv`` probe, so FIFO/causal-delivery checking spans shards.
Cross-shard co-channel interference (invisible to the per-shard
monitors) is checked after the run by replaying the frontier cells'
``channel.acquired``/``channel.released`` logs against the topology.

**Scope.**  Sharded execution requires the deterministic latency model
(the uniform model draws from one global stream and has no useful
minimum) and static calls (``mean_dwell=None``): a mid-call handoff
migrates a call process into a neighboring cell's station with zero
lookahead, which a conservative scheme cannot honor across a boundary.
:func:`validate_shardable` enforces both with actionable errors.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..cellular import CellularTopology
from ..metrics import AcquisitionRecord, MetricsCollector
from ..obs import ObsData
from ..sim import RemoteRecord, ShardPlan, ShardPort, plan_shards
from ..verify import get_default_policy, set_default_policy
from .config import Scenario
from .runner import Report, build_simulation

__all__ = [
    "ShardResult",
    "validate_shardable",
    "run_sharded",
    "run_sharded_results",
    "merge_shard_results",
]

#: One frontier-cell usage event: (time, op, cell, channel) with
#: op 0 = release, 1 = acquire — tuple order sorts releases first at
#: equal times, the conservative choice for the safety replay.
_Usage = Tuple[float, int, int, int]


def validate_shardable(scenario: Scenario, shards: int) -> None:
    """Raise ``ValueError`` when a scenario cannot be sharded."""
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    if scenario.latency_model != "deterministic":
        raise ValueError(
            "sharded execution requires latency_model='deterministic': "
            "the conservative lookahead is the latency model's minimum "
            f"delay, and the {scenario.latency_model!r} model draws "
            "from a single global stream (shard-variant by construction)"
        )
    if scenario.mean_dwell is not None:
        raise ValueError(
            "sharded execution requires static calls (mean_dwell=None): "
            "a handoff migrates the call process into the neighbor "
            "cell's station with zero lookahead, which the window "
            "scheme cannot honor across a shard boundary"
        )
    if scenario.fastlane:
        raise ValueError(
            "sharded execution is incompatible with fastlane=True: a "
            "fluid cell is off the event heap, so its kernel exposes no "
            "lookahead into the analytic interval and a frontier "
            "neighbor's borrow message could not conservatively "
            "materialize it mid-window; run fastlane scenarios "
            "unsharded (run_scenario without shards=)"
        )


@dataclass
class ShardResult:
    """Everything one shard measured, reduced to plain picklable data."""

    shard: int
    records: List[AcquisitionRecord] = field(default_factory=list)
    releases: int = 0
    faults_injected: Dict[str, int] = field(default_factory=dict)
    faults_recovered: Dict[str, int] = field(default_factory=dict)
    retries: int = 0
    retry_exhausted: int = 0
    #: Messages sent since warmup by this shard's stations.
    messages_total: int = 0
    messages_by_kind: Dict[str, int] = field(default_factory=dict)
    mode_changes: int = 0
    local_acquires: int = 0
    local_notify: int = 0
    #: Intra-shard interference violations (local monitor).
    violations: int = 0
    calls_started: int = 0
    calls_completed: int = 0
    #: Frontier-cell channel usage log for the cross-shard replay.
    usage: List[_Usage] = field(default_factory=list)
    #: Envelopes exported to other shards.
    exported: int = 0
    #: Events this shard's kernel processed (includes one window-stop
    #: event per window — diagnostic, not a parity quantity).
    processed_events: int = 0
    #: Synchronization windows this shard ran (same for every shard of
    #: a run).  Under ``window_mode="adaptive"`` this is the quantity
    #: the null-message optimization shrinks; under ``"fixed"`` it is
    #: ``ceil(duration / T)``.
    windows: int = 0
    #: CPU seconds this shard's stack spent (build + all windows).  In
    #: process mode this is per worker process, so ``max(cpu_s)`` over
    #: shards approximates the run's critical path; in inline mode all
    #: shards share one process and the split is not meaningful.
    cpu_s: float = 0.0
    obs: Optional[ObsData] = None


class _ShardRun:
    """One shard's live stack plus its window-stepping interface."""

    def __init__(
        self, scenario: Scenario, plan: ShardPlan, shard: int
    ) -> None:
        self._cpu0 = time.process_time()
        self.scenario = scenario
        self.plan = plan
        self.shard = shard
        self.port = ShardPort(shard, plan.owner)
        sim = build_simulation(
            scenario, cells=plan.cells_of(shard), shard_port=self.port
        )
        self.sim = sim
        if sim.sanitizers is not None:
            stamps = sim.sanitizers.vector_clock._stamps
            self.port.stamp_of = lambda seq: stamps.pop(seq, None)
        #: Windows advanced so far (mirrors the coordinator's count).
        self.windows = 0
        #: Frontier-cell usage log (empty when the shard has no
        #: frontier, i.e. shards=1).
        self.usage: List[_Usage] = []
        frontier = frozenset(plan.frontier_of(shard))
        if frontier:
            env = sim.env
            usage = self.usage

            def on_acquired(now: float, payload: Tuple[int, int]) -> None:
                cell, channel = payload
                if cell in frontier:
                    usage.append((now, 1, cell, channel))

            def on_released(now: float, payload: Tuple[int, int]) -> None:
                cell, channel = payload
                if cell in frontier:
                    usage.append((now, 0, cell, channel))

            env.subscribe("channel.acquired", on_acquired)
            env.subscribe("channel.released", on_released)
        # Same start-of-run choreography as Simulation.run().
        env = sim.env
        warmup = scenario.warmup

        def at_warmup():
            yield env.timeout(warmup)
            sim.metrics.snapshot_message_baseline(sim.network)

        env.process(at_warmup())
        sim.source.start()

    def inject(self, records: Sequence[RemoteRecord]) -> None:
        network = self.sim.network
        for record in records:
            network.inject_remote(record)

    def advance(self, until: float) -> None:
        self.windows += 1
        self.sim.env.run(until=until)

    def drain(self) -> List[RemoteRecord]:
        return self.port.drain()

    def peek(self) -> float:
        """Time of this kernel's next pending event (``inf`` if idle).

        Read at the barrier, after :meth:`drain` — the coordinator's
        adaptive window widening needs the earliest instant at which
        any kernel can act.
        """
        return self.sim.env.peek()

    def result(self) -> ShardResult:
        sim = self.sim
        m = sim.metrics
        stations = sim.stations.values()
        return ShardResult(
            shard=self.shard,
            records=list(m.records),
            releases=m.releases,
            faults_injected=dict(m.faults_injected),
            faults_recovered=dict(m.faults_recovered),
            retries=m.retries,
            retry_exhausted=m.retry_exhausted,
            messages_total=m.messages_since_warmup(sim.network),
            messages_by_kind=m.messages_by_kind(sim.network),
            mode_changes=sum(getattr(s, "mode_changes", 0) for s in stations),
            local_acquires=sum(
                getattr(s, "local_acquires", 0) for s in stations
            ),
            local_notify=sum(
                getattr(s, "local_notify_sum", 0) for s in stations
            ),
            violations=len(sim.monitor.violations),
            calls_started=sim.source.log.started,
            calls_completed=sim.source.log.completed,
            usage=self.usage,
            exported=self.port.exported,
            processed_events=sim.env._eid - len(sim.env._queue),
            windows=self.windows,
            cpu_s=time.process_time() - self._cpu0,
            obs=(
                sim.observer.collect() if sim.observer is not None else None
            ),
        )


# -- window loop -----------------------------------------------------------


class _WindowClock:
    """Window-boundary sequencer for the coordinator loops.

    Boundaries always lie on the ``k * T`` grid, computed as ``k * T``
    (not accumulated) so float drift cannot desynchronize shards from
    the classic kernel's idea of, e.g., the warmup instant.

    ``mode="fixed"`` steps one grid point per window: ``1*T, 2*T, ...``
    capped at ``duration``.

    ``mode="adaptive"`` is the null-message optimization: at each
    barrier the coordinator knows ``low`` — the earliest instant
    anything can happen anywhere (min over every kernel's
    :meth:`_ShardRun.peek` and the ``deliver_at`` of every routed
    record still in flight).  No kernel processes an event before
    ``low``, so nothing is *sent* before ``low``, so nothing can
    *deliver* before ``low + T`` — any grid boundary ``b <= low + T``
    is as safe as the fixed step.  The clock jumps to the largest such
    boundary, collapsing quiescent stretches (call holds, idle traffic
    gaps with no cross-shard borrowing in flight) into one window.

    Windows under both modes process the identical sim-event sequence:
    a window stop is a priority ``-1`` event (ahead of every sim event
    at its time) and consumes one event id *between* windows, shifting
    all later sim-event ids uniformly — relative id order, the only
    thing heap tie-breaking reads, is unchanged.  ``adaptive`` is
    therefore row-identical to ``fixed``; the suite asserts it.
    """

    def __init__(self, duration: float, T: float, mode: str) -> None:
        if mode not in ("fixed", "adaptive"):
            raise ValueError(f"unknown window mode {mode!r}")
        self.duration = duration
        self.T = T
        self.adaptive = mode == "adaptive"
        self.k = 0
        self.t = 0.0
        #: Windows issued (for the bench's null-message accounting).
        self.windows = 0

    def next(self, low: float) -> Optional[float]:
        """Advance to the next window end, or ``None`` when done.

        ``low`` is the earliest pending instant across the whole run
        (``inf`` when fully quiescent); pass ``0.0`` for the first
        window, before any kernel state exists to inspect.
        """
        if self.t >= self.duration:
            return None
        k = self.k + 1
        if self.adaptive and low > k * self.T:
            if low >= self.duration:
                # Nothing pending before the horizon: one last window.
                k = max(k, int(self.duration // self.T) + 1)
            else:
                wide = int(low // self.T) + 1
                # Guard the conservative bound (wide-1)*T <= low against
                # float division rounding low/T up across a grid point.
                while wide > k and (wide - 1) * self.T > low:
                    wide -= 1
                k = max(k, wide)
        self.k = k
        self.t = min(k * self.T, self.duration)
        self.windows += 1
        return self.t


def _windows(duration: float, T: float):
    """Yield the fixed-mode window ends ``1*T, 2*T, ...`` capped at
    ``duration`` — the reference schedule adaptive mode must refine
    (every adaptive boundary is one of these)."""
    clock = _WindowClock(duration, T, "fixed")
    until = clock.next(0.0)
    while until is not None:
        yield until
        until = clock.next(0.0)


def _in_flight_low(pending: Sequence[Sequence[RemoteRecord]]) -> float:
    """Earliest delivery among routed-but-uninjected records."""
    return min(
        (record.deliver_at for bucket in pending for record in bucket),
        default=float("inf"),
    )


def _route(
    plan: ShardPlan, drains: Sequence[Sequence[RemoteRecord]]
) -> List[List[RemoteRecord]]:
    """Group drained records by destination shard, in merge order."""
    buckets: List[List[RemoteRecord]] = [[] for _ in range(plan.shards)]
    owner = plan.owner
    for drained in drains:
        for record in drained:
            buckets[owner[record.dst]].append(record)
    for bucket in buckets:
        # Payloads are excluded from the key: the five leading fields
        # already totally order every record one run can produce.
        bucket.sort(key=lambda r: r[:5])
    return buckets


def _run_inline(
    scenario: Scenario, plan: ShardPlan, window_mode: str = "fixed"
) -> List[ShardResult]:
    """All shards in this process, round-robin per window.

    Exactly the protocol of the process mode minus the transport —
    kept as the reference implementation (and the fast path for tests,
    which care about parity, not wall-clock).
    """
    runs = [_ShardRun(scenario, plan, s) for s in range(plan.shards)]
    pending: List[List[RemoteRecord]] = [[] for _ in runs]
    clock = _WindowClock(scenario.duration, scenario.latency_T, window_mode)
    until = clock.next(0.0)
    while until is not None:
        drains = []
        for run, records in zip(runs, pending):
            run.inject(records)
            run.advance(until)
            drains.append(run.drain())
        pending = _route(plan, drains)
        low = min(
            min(run.peek() for run in runs),
            _in_flight_low(pending),
        )
        until = clock.next(low)
    return [run.result() for run in runs]


def _shard_worker(
    conn: Any,
    scenario: Scenario,
    plan: ShardPlan,
    shard: int,
    policy: Optional[str],
) -> None:
    """Spawn-safe worker: one shard kernel driven over a pipe.

    Protocol: parent sends ``("window", until, records)`` per window
    and finally ``("finish",)``; the worker answers ``("drained",
    records, peek)`` per window — ``peek`` is the kernel's next event
    time, feeding the coordinator's adaptive window widening — and
    ``("result", ShardResult)`` at the end.  Any exception is shipped
    back as ``("error", traceback)``.
    """
    try:
        if get_default_policy() != policy:
            set_default_policy(policy)
        run = _ShardRun(scenario, plan, shard)
        conn.send(("ready",))
        while True:
            message = conn.recv()
            tag = message[0]
            if tag == "window":
                _, until, records = message
                run.inject(records)
                run.advance(until)
                conn.send(("drained", run.drain(), run.peek()))
            elif tag == "finish":
                conn.send(("result", run.result()))
                return
            else:  # pragma: no cover - protocol misuse
                raise RuntimeError(f"unknown coordinator message {tag!r}")
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        conn.close()


def _expect(conn: Any, shard: int, tag: str) -> Tuple[Any, ...]:
    message = conn.recv()
    if message[0] == "error":
        raise RuntimeError(
            f"shard {shard} failed:\n{message[1]}"
        )
    if message[0] != tag:
        raise RuntimeError(
            f"shard {shard}: expected {tag!r}, got {message[0]!r}"
        )
    return message


def _run_process(
    scenario: Scenario, plan: ShardPlan, window_mode: str = "fixed"
) -> List[ShardResult]:
    """One worker process per shard, barrier-synchronized over pipes."""
    ctx = multiprocessing.get_context("spawn")
    policy = get_default_policy()
    conns = []
    procs = []
    try:
        for shard in range(plan.shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker,
                args=(child_conn, scenario, plan, shard, policy),
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)
        for shard, conn in enumerate(conns):
            _expect(conn, shard, "ready")
        pending: List[List[RemoteRecord]] = [[] for _ in conns]
        clock = _WindowClock(
            scenario.duration, scenario.latency_T, window_mode
        )
        until = clock.next(0.0)
        while until is not None:
            for conn, records in zip(conns, pending):
                conn.send(("window", until, records))
            replies = [
                _expect(conn, shard, "drained")
                for shard, conn in enumerate(conns)
            ]
            pending = _route(plan, [reply[1] for reply in replies])
            low = min(
                min(reply[2] for reply in replies),
                _in_flight_low(pending),
            )
            until = clock.next(low)
        results = []
        for shard, conn in enumerate(conns):
            conn.send(("finish",))
            results.append(_expect(conn, shard, "result")[1])
        return results
    finally:
        for conn in conns:
            conn.close()
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join()


# -- merging ---------------------------------------------------------------


def _cross_shard_violations(
    topo: CellularTopology, plan: ShardPlan, usage: List[_Usage]
) -> int:
    """Replay the merged frontier usage log; count boundary violations.

    Only pairs owned by *different* shards are counted — same-shard
    pairs were already checked live by that shard's monitor.  At equal
    times releases replay before acquires (the log's tuple order), the
    conservative direction: a reuse that is legal under any
    interleaving is never flagged.
    """
    usage = sorted(usage)
    holders: Dict[int, set] = {}
    owner = plan.owner
    count = 0
    for _time, op, cell, channel in usage:
        users = holders.setdefault(channel, set())
        if op == 0:
            users.discard(cell)
            continue
        shard = owner[cell]
        region = topo.IN(cell)
        for other in users:
            if other in region and owner[other] != shard:
                count += 1
        users.add(cell)
    return count


def _merge_obs(parts: List[Optional[ObsData]]) -> Optional[ObsData]:
    """Combine per-shard ObsData into one run-level container.

    Spans/instants are concatenated and re-sorted on stable domain
    keys; the per-cell time series merge on their (disjoint) cell
    keys; kernel vitals are per-kernel by nature and nest under a
    ``"shards"`` list.
    """
    present = [p for p in parts if p is not None]
    if not present:
        return None
    out = ObsData(config=dict(present[0].config))
    spans: List[Dict[str, Any]] = []
    open_spans: List[Dict[str, Any]] = []
    instants: List[List[Any]] = []
    for part in present:
        spans.extend(part.spans)
        open_spans.extend(part.open_spans)
        instants.extend(part.instants)
        for key, value in part.span_stats.items():
            out.span_stats[key] = out.span_stats.get(key, 0) + value
    spans.sort(key=lambda s: (s.get("t_begin") or 0.0, s.get("cell", -1)))
    open_spans.sort(key=lambda s: (s.get("cell", -1), s.get("t_begin") or 0.0))
    instants.sort(key=lambda i: (i[0], str(i[1]), str(i[2])))
    out.spans = spans
    out.open_spans = open_spans
    out.instants = instants
    with_series = [p for p in present if p.series]
    if with_series:
        first = with_series[0].series
        times = max(
            (p.series.get("times", []) for p in with_series), key=len
        )
        cells: Dict[Any, Any] = {}
        for part in with_series:
            cells.update(part.series.get("cells", {}))
        out.series = {
            "interval": first.get("interval"),
            "times": times,
            "cells": cells,
        }
    kernels = [p.kernel for p in present if p.kernel]
    if kernels:
        out.kernel = {"shards": kernels}
    return out


def merge_shard_results(
    scenario: Scenario,
    plan: ShardPlan,
    results: List[ShardResult],
    topo: Optional[CellularTopology] = None,
) -> Report:
    """Fold per-shard results into one :class:`Report`.

    Every merged quantity is either a sum over shards, an
    order-insensitive statistic over the concatenated acquisition
    records, or the cross-shard safety replay — so the merge is
    deterministic for any shard count.
    """
    merged = MetricsCollector(warmup=scenario.warmup)
    for result in results:
        merged.records.extend(result.records)
        merged.releases += result.releases
        merged.retries += result.retries
        merged.retry_exhausted += result.retry_exhausted
        for kind, n in sorted(result.faults_injected.items()):
            merged.faults_injected[kind] = (
                merged.faults_injected.get(kind, 0) + n
            )
        for kind, n in sorted(result.faults_recovered.items()):
            merged.faults_recovered[kind] = (
                merged.faults_recovered.get(kind, 0) + n
            )
    merged.records.sort(key=lambda r: (r.time, r.cell))

    messages_total = sum(r.messages_total for r in results)
    by_kind: Dict[str, int] = {}
    for result in results:
        for kind, n in result.messages_by_kind.items():
            by_kind[kind] = by_kind.get(kind, 0) + n
    by_kind = dict(sorted(by_kind.items()))

    violations = sum(r.violations for r in results)
    usage = [u for r in results for u in r.usage]
    if usage and plan.shards > 1:
        if topo is None:
            topo = _topology(scenario)
        violations += _cross_shard_violations(topo, plan, usage)

    local_acquires = sum(r.local_acquires for r in results)
    local_notify = sum(r.local_notify for r in results)
    times = merged.acquisition_times()
    waits = merged.queue_waits()
    return Report(
        scenario=scenario,
        offered=merged.offered,
        granted=merged.granted,
        dropped=merged.dropped,
        drop_rate=merged.drop_rate,
        new_call_block_rate=merged.drop_rate_of("new"),
        handoff_failure_rate=merged.drop_rate_of("handoff"),
        mean_acquisition_time=merged.mean_acquisition_time(),
        p95_acquisition_time=merged.acquisition_time_percentile(95),
        max_acquisition_time=float(times.max()) if times.size else 0.0,
        mean_queue_wait=float(waits.mean()) if waits.size else 0.0,
        mean_attempts=merged.mean_attempts(),
        max_attempts=merged.max_attempts(),
        mode_fractions=merged.mode_fractions(),
        messages_total=messages_total,
        messages_by_kind=by_kind,
        messages_per_acquisition=(
            messages_total / merged.offered if merged.offered else 0.0
        ),
        fairness_index=merged.fairness_index(),
        per_cell_drop_rates=merged.per_cell_drop_rates(),
        violations=violations,
        mode_changes=sum(r.mode_changes for r in results),
        calls_started=sum(r.calls_started for r in results),
        calls_completed=sum(r.calls_completed for r in results),
        duration=scenario.duration - scenario.warmup,
        measured_n_borrow=(
            local_notify / local_acquires if local_acquires else 0.0
        ),
        faults_injected=dict(merged.faults_injected),
        faults_recovered=dict(merged.faults_recovered),
        retries=merged.retries,
        retry_exhausted=merged.retry_exhausted,
        obs=_merge_obs([r.obs for r in results]),
        metrics=merged,
    )


def _topology(scenario: Scenario) -> CellularTopology:
    return CellularTopology(
        scenario.rows,
        scenario.cols,
        num_channels=scenario.num_channels,
        cluster_size=scenario.cluster_size,
        interference_radius=scenario.interference_radius,
        wrap=scenario.wrap,
        channels_per_color=scenario.channels_per_color,
    )


def run_sharded_results(
    scenario: Scenario,
    shards: int,
    mode: str = "process",
    window_mode: str = "fixed",
) -> Tuple[ShardPlan, List[ShardResult]]:
    """Run sharded and return the raw per-shard results (unmerged).

    For callers that want per-shard diagnostics — the bench driver
    reads ``cpu_s`` per worker to compute the critical-path speedup
    and ``windows`` to account for the null-message optimization —
    before folding into a :class:`Report` via
    :func:`merge_shard_results`.
    """
    validate_shardable(scenario, shards)
    if window_mode not in ("fixed", "adaptive"):
        raise ValueError(f"unknown window mode {window_mode!r}")
    plan = plan_shards(_topology(scenario), shards)
    if mode == "inline" or plan.shards == 1:
        return plan, _run_inline(scenario, plan, window_mode)
    if mode == "process":
        return plan, _run_process(scenario, plan, window_mode)
    raise ValueError(f"unknown shard mode {mode!r}")


def run_sharded(
    scenario: Scenario,
    shards: int,
    mode: str = "process",
    window_mode: str = "fixed",
) -> Report:
    """Run one scenario over ``shards`` conservatively synced kernels.

    ``mode="process"`` (the default, and what ``run_scenario(...,
    shards=N)`` uses) runs one spawn-context worker process per shard;
    ``mode="inline"`` runs every shard kernel in this process with the
    same window/merge protocol — bit-identical results, no spawn cost,
    no parallelism (used by the parity tests and as the reference
    implementation of the protocol).

    ``window_mode="adaptive"`` turns on the null-message optimization
    (see :class:`_WindowClock`): barriers are skipped across quiescent
    stretches where no kernel has a pending event and no cross-shard
    message is in flight.  Row-identical to ``"fixed"`` — only the
    number of barriers (and hence sync overhead) changes.
    """
    plan, results = run_sharded_results(
        scenario, shards, mode=mode, window_mode=window_mode
    )
    return merge_shard_results(scenario, plan, results)
