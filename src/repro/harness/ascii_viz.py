"""Terminal visualizations: sparklines, bar charts, hex heat maps.

Pure-text output so results render anywhere (CI logs, EXPERIMENTS.md);
no plotting dependencies.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

__all__ = ["sparkline", "bar_chart", "hex_heatmap"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """Compact one-line trend, e.g. ▁▂▅█▅▂▁."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo = min(vals) if lo is None else lo
    hi = max(vals) if hi is None else hi
    span = hi - lo
    if span <= 0:
        return _SPARK_LEVELS[0] * len(vals)
    out = []
    for v in vals:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[max(0, min(idx, len(_SPARK_LEVELS) - 1))])
    return "".join(out)


def bar_chart(
    items: Dict[str, float], width: int = 40, fmt: str = "{:.3f}"
) -> str:
    """Horizontal labelled bar chart."""
    if not items:
        return ""
    label_w = max(len(k) for k in items)
    peak = max(abs(v) for v in items.values()) or 1.0
    lines = []
    for label, value in items.items():
        bar = "█" * max(0, int(round(abs(value) / peak * width)))
        lines.append(f"{label.ljust(label_w)}  {bar} {fmt.format(value)}")
    return "\n".join(lines)


def hex_heatmap(
    values: Dict[int, float],
    rows: int,
    cols: int,
    levels: str = " .:-=+*#%@",
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """Render per-cell values on the hex grid (row-major ids, offset
    indent suggests the hexagonal geometry)."""
    vals = [values.get(c, 0.0) for c in range(rows * cols)]
    lo = min(vals) if lo is None else lo
    hi = max(vals) if hi is None else hi
    span = hi - lo or 1.0
    lines = []
    for r in range(rows):
        cells = []
        for q in range(cols):
            v = vals[r * cols + q]
            idx = int((v - lo) / span * (len(levels) - 1))
            cells.append(levels[max(0, min(idx, len(levels) - 1))])
        lines.append(" " * r + " ".join(cells))
    return "\n".join(lines)
