"""Scenario execution: build the simulation stack, run it, report.

``run_scenario`` wires together the full system — topology, network,
one MSS per cell (of the configured scheme), traffic source, metrics
and safety monitor — runs it to the scenario horizon, and returns a
:class:`Report` with every quantity the paper's evaluation discusses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Type

from ..cellular import CellularTopology
from ..core import AdaptiveMSS
from ..faults import FaultInjector, Hardening
from ..metrics import MetricsCollector
from ..obs import ObsData, Observer
from ..protocols import (
    AdvancedUpdateMSS,
    BasicSearchMSS,
    BasicUpdateMSS,
    FixedMSS,
    InterferenceMonitor,
    MSS,
    PrakashMSS,
)
from ..sim import (
    DeterministicLatency,
    Environment,
    Network,
    StreamRegistry,
    UniformLatency,
)
from ..policies.base import policy_spec
from ..traffic import CallConfig, TrafficSource
from ..verify import SanitizerSuite, get_default_policy
from .config import Scenario
from .fastlane import FastLane

__all__ = ["SCHEMES", "Simulation", "Report", "build_simulation", "run_scenario", "run_replications"]

#: Registry of allocation schemes by name.
SCHEMES: Dict[str, Type[MSS]] = {
    "fixed": FixedMSS,
    "basic_search": BasicSearchMSS,
    "basic_update": BasicUpdateMSS,
    "advanced_update": AdvancedUpdateMSS,
    "adaptive": AdaptiveMSS,
    "prakash": PrakashMSS,
}


@dataclass
class Simulation:
    """A fully wired simulation ready to run (useful for custom drivers)."""

    scenario: Scenario
    env: Environment
    topo: CellularTopology
    network: Network
    stations: Dict[int, MSS]
    metrics: MetricsCollector
    monitor: InterferenceMonitor
    source: TrafficSource
    streams: StreamRegistry
    #: Runtime sanitizers (attached when a default policy is active,
    #: e.g. under pytest; None otherwise).
    sanitizers: Optional[SanitizerSuite] = None
    #: Fault injector (present iff the scenario has an enabled plan).
    injector: Optional[FaultInjector] = None
    #: Observability collectors (present iff ``scenario.obs`` is enabled).
    observer: Optional[Observer] = None
    #: Hybrid analytic fast lane (present iff ``scenario.fastlane``).
    fastlane: Optional[FastLane] = None

    def run(self) -> "Report":
        """Run to the scenario horizon and build the report."""
        env = self.env
        warmup = self.scenario.warmup

        def at_warmup():
            yield env.timeout(warmup)
            self.metrics.snapshot_message_baseline(self.network)

        env.process(at_warmup())
        self.source.start()
        env.run(until=self.scenario.duration)
        if self.fastlane is not None:
            self.fastlane.finalize()
        return Report.from_simulation(self)


@dataclass
class Report:
    """Everything measured in one run, with paper-aligned accessors."""

    scenario: Scenario
    offered: int
    granted: int
    dropped: int
    drop_rate: float
    new_call_block_rate: float
    handoff_failure_rate: float
    mean_acquisition_time: float
    p95_acquisition_time: float
    max_acquisition_time: float
    mean_queue_wait: float
    mean_attempts: float
    max_attempts: int
    mode_fractions: Dict[str, float]
    messages_total: int
    messages_by_kind: Dict[str, int]
    messages_per_acquisition: float
    fairness_index: float
    per_cell_drop_rates: Dict[int, float]
    violations: int
    mode_changes: int
    calls_started: int
    calls_completed: int
    duration: float
    #: Adaptive-scheme extras: measured average number of borrowing
    #: neighbors at local acquisitions (the paper's N_borrow); 0 for
    #: other schemes.
    measured_n_borrow: float = 0.0
    #: Drop-rate excess over the clairvoyant oracle on the same
    #: (scenario, seed) — filled by ``repro.policies.compare_policies``;
    #: None for runs outside a policy comparison.  The oracle's own
    #: regret is exactly 0.0 by construction.
    regret_vs_oracle: Optional[float] = None
    #: Fast-lane divergence summary (see ``FastLane.summary``); None
    #: when the run did not use the hybrid analytic lane.
    fastlane: Optional[Dict[str, Any]] = None
    # Fault-injection accounting (all zero / empty without a plan).
    faults_injected: Dict[str, int] = field(default_factory=dict)
    faults_recovered: Dict[str, int] = field(default_factory=dict)
    retries: int = 0
    retry_exhausted: int = 0
    #: Observability data (spans, series, kernel vitals) when the run
    #: was traced; see ``repro.obs``.  Plain data: pickles through the
    #: worker pool and the result cache unchanged.
    obs: Optional[ObsData] = field(repr=False, default=None)
    # Kept for custom post-processing.
    metrics: MetricsCollector = field(repr=False, default=None)

    @classmethod
    def from_simulation(cls, sim: Simulation) -> "Report":
        m = sim.metrics
        times = m.acquisition_times()
        waits = m.queue_waits()
        mode_changes = sum(
            getattr(s, "mode_changes", 0) for s in sim.stations.values()
        )
        local_acquires = sum(
            getattr(s, "local_acquires", 0) for s in sim.stations.values()
        )
        local_notify = sum(
            getattr(s, "local_notify_sum", 0) for s in sim.stations.values()
        )
        return cls(
            scenario=sim.scenario,
            offered=m.offered,
            granted=m.granted,
            dropped=m.dropped,
            drop_rate=m.drop_rate,
            new_call_block_rate=m.drop_rate_of("new"),
            handoff_failure_rate=m.drop_rate_of("handoff"),
            mean_acquisition_time=m.mean_acquisition_time(),
            p95_acquisition_time=m.acquisition_time_percentile(95),
            max_acquisition_time=float(times.max()) if times.size else 0.0,
            mean_queue_wait=float(waits.mean()) if waits.size else 0.0,
            mean_attempts=m.mean_attempts(),
            max_attempts=m.max_attempts(),
            mode_fractions=m.mode_fractions(),
            messages_total=m.messages_since_warmup(sim.network),
            messages_by_kind=m.messages_by_kind(sim.network),
            messages_per_acquisition=m.messages_per_acquisition(sim.network),
            fairness_index=m.fairness_index(),
            per_cell_drop_rates=m.per_cell_drop_rates(),
            violations=len(sim.monitor.violations),
            mode_changes=mode_changes,
            calls_started=sim.source.log.started,
            calls_completed=sim.source.log.completed,
            duration=sim.scenario.duration - sim.scenario.warmup,
            measured_n_borrow=(
                local_notify / local_acquires if local_acquires else 0.0
            ),
            fastlane=(
                sim.fastlane.summary() if sim.fastlane is not None else None
            ),
            faults_injected=dict(m.faults_injected),
            faults_recovered=dict(m.faults_recovered),
            retries=m.retries,
            retry_exhausted=m.retry_exhausted,
            obs=(
                sim.observer.collect() if sim.observer is not None else None
            ),
            metrics=m,
        )

    @property
    def xi(self) -> Dict[str, float]:
        """The paper's (ξ1, ξ2, ξ3) as {'local', 'update', 'search'}."""
        return {
            "local": self.mode_fractions.get("local", 0.0),
            "update": self.mode_fractions.get("update", 0.0),
            "search": self.mode_fractions.get("search", 0.0),
        }

    def summary(self) -> str:
        xi = self.xi
        lines = [
            f"scheme={self.scenario.scheme}  load={self.scenario.offered_load} "
            f"Erlang/cell  seed={self.scenario.seed}",
            f"  requests: {self.offered}  granted: {self.granted}  "
            f"drop rate: {self.drop_rate:.4f} "
            f"(new {self.new_call_block_rate:.4f} / "
            f"handoff {self.handoff_failure_rate:.4f})",
            f"  acquisition time: mean {self.mean_acquisition_time:.3f}  "
            f"p95 {self.p95_acquisition_time:.3f}  "
            f"max {self.max_acquisition_time:.3f} (units of T)",
            f"  messages: {self.messages_total} total, "
            f"{self.messages_per_acquisition:.2f} per request",
            f"  attempts: mean {self.mean_attempts:.2f}  max {self.max_attempts}",
            f"  xi(local/update/search): {xi['local']:.3f} / "
            f"{xi['update']:.3f} / {xi['search']:.3f}",
            f"  fairness index: {self.fairness_index:.4f}  "
            f"violations: {self.violations}",
        ]
        if self.faults_injected:
            lines.append(
                f"  faults: {sum(self.faults_injected.values())} injected, "
                f"{sum(self.faults_recovered.values())} recovered, "
                f"{self.retries} retries "
                f"({self.retry_exhausted} exhausted)"
            )
        return "\n".join(lines)


def _make_latency(scenario: Scenario, streams: StreamRegistry):
    if scenario.latency_model == "deterministic":
        return DeterministicLatency(scenario.latency_T)
    if scenario.latency_model == "uniform":
        return UniformLatency(
            scenario.latency_T,
            scenario.latency_T + scenario.latency_spread,
            streams.stream("network", "latency"),
        )
    raise ValueError(f"unknown latency model {scenario.latency_model!r}")


def build_simulation(
    scenario: Scenario,
    cells: Optional[Sequence[int]] = None,
    shard_port: Optional[Any] = None,
) -> Simulation:
    """Construct the full stack for a scenario (without running it).

    ``cells`` restricts the stack to a subset of the grid (sharded
    execution, see :mod:`repro.harness.sharded`): stations, traffic
    and crash hooks are built only for those cells, while the topology
    and every per-cell random substream stay global — so a cell
    behaves identically whether it shares a kernel with the whole grid
    or only with its shard.  ``shard_port`` is attached to the network
    to route sends at non-local cells to the inter-shard coordinator.
    """
    if scenario.scheme not in SCHEMES:
        raise ValueError(
            f"unknown scheme {scenario.scheme!r}; available: {sorted(SCHEMES)}"
        )
    if scenario.fastlane:
        # The fluid model is only valid where its quiescence/Erlang-loss
        # assumptions hold; everything else is rejected honestly rather
        # than silently approximated (see DESIGN.md fast-lane matrix).
        if cells is not None:
            raise ValueError(
                "fastlane is incompatible with sharded execution "
                "(fluid cells have no events for the conservative "
                "window protocol to order)"
            )
        if scenario.scheme not in ("fixed", "adaptive"):
            raise ValueError(
                f"fastlane supports schemes 'fixed' and 'adaptive', "
                f"not {scenario.scheme!r}"
            )
        if scenario.faults is not None and scenario.faults.enabled:
            raise ValueError(
                "fastlane is incompatible with fault injection "
                "(fault-plan actions target discrete per-cell state)"
            )
        if scenario.mean_dwell is not None:
            raise ValueError(
                "fastlane is incompatible with mobility (the fluid "
                "model has no handoff flows)"
            )
        if scenario.extra_params.get("guard_channels"):
            raise ValueError(
                "fastlane is incompatible with guard channels (fluid "
                "admission is plain Erlang loss)"
            )
        if scenario.scheme == "adaptive" and not policy_spec(
            scenario.policy
        ).fastlane_safe:
            raise ValueError(
                f"fastlane is incompatible with policy "
                f"{scenario.policy!r} (its decisions depend on more "
                f"than the reconciled occupancy sample, so demoted "
                f"cells cannot be advanced analytically)"
            )
    streams = StreamRegistry(scenario.seed)
    env = Environment()
    topo = CellularTopology(
        scenario.rows,
        scenario.cols,
        num_channels=scenario.num_channels,
        cluster_size=scenario.cluster_size,
        interference_radius=scenario.interference_radius,
        wrap=scenario.wrap,
        channels_per_color=scenario.channels_per_color,
    )
    network = Network(env, _make_latency(scenario, streams), fifo=scenario.fifo)
    if shard_port is not None:
        network.shard_port = shard_port
    metrics = MetricsCollector(warmup=scenario.warmup)
    monitor = InterferenceMonitor(topo, policy=scenario.monitor_policy)
    sanitizer_policy = get_default_policy()
    sanitizers = (
        SanitizerSuite(env, network, policy=sanitizer_policy)
        if sanitizer_policy is not None
        else None
    )

    # Fault injection + protocol hardening: wired only for a plan that
    # actually injects something, so a disabled/absent plan runs the
    # original reliable-network code paths event-for-event.
    injector: Optional[FaultInjector] = None
    hardening: Optional[Hardening] = None
    plan = scenario.faults
    if plan is not None and plan.enabled:
        injector = FaultInjector(
            env,
            plan,
            streams,
            network.latency,
            metrics,
        )
        network.injector = injector
        hardening = Hardening.from_plan(
            plan, network.latency.max_delay + plan.max_extra_delay()
        )

    cls = SCHEMES[scenario.scheme]
    kwargs: Dict[str, Any] = dict(scenario.extra_params)
    if hardening is not None:
        kwargs["hardening"] = hardening
    if cls is AdaptiveMSS:
        kwargs.setdefault("alpha", scenario.alpha)
        kwargs.setdefault("theta_low", scenario.theta_low)
        kwargs.setdefault("theta_high", scenario.theta_high)
        kwargs.setdefault("window", scenario.window)
        kwargs.setdefault("policy", scenario.policy)
        kwargs.setdefault("policy_params", dict(scenario.policy_params))
    elif cls in (BasicUpdateMSS, AdvancedUpdateMSS):
        kwargs.setdefault("max_attempts", scenario.max_attempts)

    local_cells = list(topo.grid) if cells is None else sorted(cells)
    stations: Dict[int, MSS] = {}
    for cell in local_cells:
        stations[cell] = cls(
            env, network, topo, cell, metrics=metrics, monitor=monitor, **kwargs
        )
    for station in stations.values():
        station.start()
    if injector is not None:
        shadow = (
            () if cells is None
            else [c for c in topo.grid if c not in stations]
        )
        injector.install(stations, shadow=shadow)

    source = TrafficSource(
        env,
        stations,
        scenario.effective_pattern(),
        CallConfig(
            mean_holding=scenario.mean_holding,
            mean_dwell=scenario.mean_dwell,
            setup_deadline=scenario.setup_deadline,
        ),
        streams,
        horizon=scenario.duration,
    )

    # Hybrid analytic fast lane: wired only when requested, so the
    # default path constructs nothing and stays event-for-event
    # identical to the classic kernel.
    lane: Optional[FastLane] = None
    if scenario.fastlane:
        lane = FastLane(env, stations, source, metrics, scenario, streams)
        lane.install()

    # Observability: attached last so its probe subscriptions see the
    # fully wired stack.  With no (enabled) obs config, nothing here
    # subscribes and the kernel's no-probe fast path stays active.
    observer: Optional[Observer] = None
    if scenario.obs is not None and scenario.obs.enabled:
        observer = Observer(
            env,
            stations,
            scenario.obs,
            duration=scenario.duration,
            network=network,
        )

    return Simulation(
        scenario=scenario,
        env=env,
        topo=topo,
        network=network,
        stations=stations,
        metrics=metrics,
        monitor=monitor,
        source=source,
        streams=streams,
        sanitizers=sanitizers,
        injector=injector,
        observer=observer,
        fastlane=lane,
    )


def run_scenario(scenario: Scenario, shards: int = 1) -> Report:
    """Build and run one scenario; returns its :class:`Report`.

    ``shards > 1`` partitions the grid into contiguous row bands and
    runs one conservatively synchronized kernel per band in its own
    worker process (see :mod:`repro.harness.sharded`); the merged
    report is row-identical to ``shards=1``.
    """
    if shards != 1:
        # Local import: sharded builds on this module's machinery.
        from .sharded import run_sharded

        return run_sharded(scenario, shards)
    return build_simulation(scenario).run()


def run_replications(
    scenario: Scenario,
    n: int,
    workers: Optional[int] = 1,
    cache: Any = None,
    warmup_checkpoint: Any = None,
) -> List[Report]:
    """Run ``n`` independent replications (seeds seed, seed+1, ...).

    ``workers`` fans replications out over a process pool (``None`` =
    one per CPU) with deterministically ordered results; ``cache``
    controls the persistent result cache (see
    :func:`repro.harness.cache.resolve_cache`).

    ``warmup_checkpoint`` switches the sweep to *warm-start forking*
    (see :mod:`repro.snap`): the scenario runs once to a checkpoint and
    every replication forks from that snapshot under its own seed, so
    the warmup transient is simulated once instead of ``n`` times.
    Accepts a checkpoint instant (a float, typically
    ``scenario.warmup``) or a ready-made
    :class:`~repro.snap.Snapshot`.  Forked replications share the
    pre-checkpoint trajectory by construction — they are exchangeable
    draws of the post-checkpoint window, not fully independent runs —
    and run serially in-process (``workers`` is ignored; the speedup
    comes from skipping the warmup, and cache rows are keyed by the
    snapshot hash so warm results never alias cold ones).
    """
    if warmup_checkpoint is not None:
        from ..snap import Snapshot, fork_replications, run_to_checkpoint

        if isinstance(warmup_checkpoint, Snapshot):
            snapshot = warmup_checkpoint
        else:
            snapshot = run_to_checkpoint(scenario, float(warmup_checkpoint))
        seeds = [scenario.seed + i for i in range(n)]
        return fork_replications(snapshot, n, cache=cache, seeds=seeds)

    # Local import: parallel builds on this module's run_scenario.
    from .parallel import run_cells

    cells = [scenario.with_(seed=scenario.seed + i) for i in range(n)]
    return run_cells(cells, workers=workers, cache=cache)
