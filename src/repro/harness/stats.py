"""Replication statistics: means, confidence intervals, comparisons.

Simulation point estimates without error bars invite over-reading.
``summarize`` turns replicated reports into mean ± half-width Student-t
confidence intervals, and ``compare`` answers "is scheme A better than
scheme B on metric m?" with a paired-by-seed interval — the right test
when both schemes were run under common random numbers (as
``run_replications`` does).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

from .runner import Report

__all__ = ["CI", "summarize", "compare"]

# Two-sided 95% Student-t critical values by degrees of freedom (1..30);
# beyond that the normal value is used.  Avoids a scipy dependency in
# the core path (scipy is available but this keeps `repro` lean).
_T95 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


def _t95(df: int) -> float:
    if df < 1:
        raise ValueError("need at least 2 samples for an interval")
    return _T95[df - 1] if df <= len(_T95) else 1.96


@dataclass(frozen=True)
class CI:
    """A mean with a 95% confidence half-width."""

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def excludes_zero(self) -> bool:
        """True when the interval lies strictly on one side of zero."""
        return self.low > 0 or self.high < 0

    def __str__(self) -> str:
        return f"{self.mean:.4f} ± {self.half_width:.4f} (n={self.n})"


def _interval(values: Sequence[float]) -> CI:
    n = len(values)
    if n == 0:
        raise ValueError("no samples")
    mean = sum(values) / n
    if n == 1:
        return CI(mean, float("inf"), 1)
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    half = _t95(n - 1) * math.sqrt(var / n)
    return CI(mean, half, n)


def summarize(reports: Sequence[Report], metrics: Sequence[str]) -> Dict[str, CI]:
    """95% CI of each report attribute over the replications."""
    out: Dict[str, CI] = {}
    for metric in metrics:
        out[metric] = _interval([float(getattr(r, metric)) for r in reports])
    return out


def compare(
    a: Sequence[Report], b: Sequence[Report], metric: str
) -> CI:
    """Paired 95% CI of (a − b) on ``metric``.

    Reports must be paired by seed (common random numbers): same length
    and matching seeds, as produced by running ``run_replications``
    with two schemes on the same base scenario.
    """
    if len(a) != len(b):
        raise ValueError("replication lists differ in length")
    for ra, rb in zip(a, b):
        if ra.scenario.seed != rb.scenario.seed:
            raise ValueError("replications are not paired by seed")
    diffs = [
        float(getattr(ra, metric)) - float(getattr(rb, metric))
        for ra, rb in zip(a, b)
    ]
    return _interval(diffs)
