"""Experiment harness: scenarios, runners, replication, table output."""

from .config import Scenario
from .runner import (
    Report,
    SCHEMES,
    Simulation,
    build_simulation,
    run_replications,
    run_scenario,
)
from .ascii_viz import bar_chart, hex_heatmap, sparkline
from .cache import ResultCache, cache_key, code_stamp, resolve_cache
from .parallel import CellFailure, ExperimentError, default_workers, run_cells
from .presets import PRESETS, preset, preset_names
from .sharded import (
    ShardResult,
    merge_shard_results,
    run_sharded,
    run_sharded_results,
    validate_shardable,
)
from .stats import CI, compare, summarize
from .sweeps import DEFAULT_COLUMNS, SweepResult, sweep, to_csv
from .tables import format_value, render_table
from .timeline import ModeSampler
from .tuning import TuneResult, tune_policy

__all__ = [
    "sweep",
    "SweepResult",
    "to_csv",
    "DEFAULT_COLUMNS",
    "run_cells",
    "default_workers",
    "CellFailure",
    "ExperimentError",
    "ResultCache",
    "resolve_cache",
    "cache_key",
    "code_stamp",
    "sparkline",
    "bar_chart",
    "hex_heatmap",
    "CI",
    "summarize",
    "compare",
    "preset",
    "preset_names",
    "PRESETS",
    "ModeSampler",
    "Scenario",
    "Report",
    "Simulation",
    "SCHEMES",
    "build_simulation",
    "run_scenario",
    "run_replications",
    "run_sharded",
    "run_sharded_results",
    "merge_shard_results",
    "ShardResult",
    "validate_shardable",
    "render_table",
    "format_value",
    "tune_policy",
    "TuneResult",
]
