"""Hybrid analytic/DES fast lane: fluid cells, on-demand materialization.

At low load the adaptive scheme's whole point is that most cells sit in
local mode exchanging *no* messages — yet the discrete kernel still
pays one arrival process, one call process and one release timeout per
call in every one of them.  The fast lane removes that cost: a cell
whose protocol state is quiescent (see ``MSS.fastlane_eligible``) is
*demoted* to a fluid representation — its arrival process is taken off
the event heap (``Environment.cancel`` of the pending gap timeout) and
its dynamics are advanced analytically as an M/M/c/c Erlang-loss
system on its ``c = |PR|`` primaries.

While fluid, the cell's behaviour is reconstructed lazily:

* **Settlement** — when a fluid interval ``[t0, t1)`` closes, its
  arrivals are replayed from a dedicated per-cell substream
  ``("fastlane", "cell", cell)`` by the same thinned-Poisson scheme the
  discrete traffic source uses, each blocked independently with
  probability ``erlang_b(A(t), c)`` (the Erlang-loss blocking model —
  the lane's one approximation) and each admission given an explicit
  exponential holding time; every arrival becomes a synthetic
  acquisition record (``mode="local"``, zero wait) so the metrics
  pipeline folds them in untouched (all report statistics are
  order-insensitive).
* **Observation** — at each observation instant (cadence = the
  scenario's prediction window ``W``) an adaptive cell's occupancy is
  tested against the truncated-Poisson stationary law: one uniform per
  cell per instant against the memoized tail probability
  ``P(busy > c - θ_l)`` — distributionally identical to drawing the
  occupancy by inverse CDF and comparing, at a fraction of the cost.
  A spike (or discrete residual calls already past the threshold)
  promotes the cell back to discrete simulation so the borrowing
  machinery can run.
* **Promotion (materialization)** — the state bridge reconciles fluid
  occupancy with discrete call records: admissions whose holding time
  outlives the interval are materialized onto the lowest free primaries
  with their true remaining durations (residual discrete calls kept
  draining through the interval, so the reconciled ``use`` set is a
  faithful sample path, not an independent stationary draw — an earlier
  stationary-resample bridge ratcheted occupancy toward the maximum of
  repeated draws and inflated drops 20× at high load); the arrival
  process is then relaunched on its memoized traffic substream,
  resuming exactly where the previous incarnation left off, and the
  protocol's predictor history is reset flat
  (``MSS.fastlane_reconcile``).

Promotion triggers: any protocol message delivered to the cell
(``MSS.on_message`` promotes before handling — a borrow of one of our
primaries necessarily sends us a Request, so fluid state can never be
implicated silently), the cell itself entering borrowing mode, a
sampled occupancy spike, and end-of-run finalization.  Fault plans,
mobility, snapshots and sharded execution are rejected up front (see
``build_simulation`` / ``validate_shardable`` / ``repro.snap``).

Per-cell lane substreams are seed-deterministic and scheme-invariant;
with ``fastlane=False`` (the default) none of this module is even
constructed and the kernel is bit-identical to the classic path.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from ..analysis.erlang import carried_load, erlang_b
from ..analysis.occupancy import truncated_poisson_pmf

__all__ = ["FastLane"]


class FastLane:
    """Controller for fluid (analytically advanced) cells of one run."""

    #: Adaptive-scheme validity gate: a cell is only demoted while its
    #: Erlang-loss blocking probability is below this.  The fluid model
    #: replaces *borrowing* with *blocking*; the substitution is honest
    #: exactly where both are negligible — at loads where B(A, c) is
    #: material, the real scheme would borrow, so such cells must stay
    #: discrete (the lane then degrades gracefully to a near-no-op).
    MAX_FLUID_BLOCKING = 0.01

    def __init__(
        self,
        env: Any,
        stations: Dict[int, Any],
        source: Any,
        metrics: Any,
        scenario: Any,
        streams: Any,
    ) -> None:
        if source.mix is not None:
            raise ValueError(
                "fastlane models a single call class; TrafficMix traffic "
                "is not supported"
            )
        self.env = env
        self.stations = stations
        self.source = source
        self.metrics = metrics
        self.scenario = scenario
        self.streams = streams
        self.pattern = source.pattern
        self.mean_holding = scenario.mean_holding
        self.duration = scenario.duration
        #: Observation cadence — the adaptive scheme's prediction window.
        self.period = scenario.window
        self.adaptive = scenario.scheme == "adaptive"
        #: Fluid cells: cell id -> start time of the open fluid interval.
        self._fluid: Dict[int, float] = {}
        #: Erlang-B memo: (offered_load, servers) -> blocking probability
        #: (constant-rate patterns hit one entry per cell size).
        self._bcache: Dict[Tuple[float, int], float] = {}
        # -- counters / divergence accumulators ---------------------------
        self.demotions = 0
        self.promotions: Dict[str, int] = {"message": 0, "spike": 0, "borrow": 0}
        self.fluid_time = 0.0
        self.arrivals = 0
        self.blocked = 0
        self.materialized = 0
        #: Survivors that found no free primary at materialization (the
        #: Erlang-B blocking model admitted more than capacity; counted
        #: as completed, reported here for honesty).
        self.shed = 0
        self._model_block_sum = 0.0  # sum of model B over fluid arrivals
        self._occ_samples = 0
        self._occ_sum = 0
        self._occ_model_sum = 0.0
        self._tailcache: Dict[Tuple[float, int, int], float] = {}
        self._rngs: Dict[int, Any] = {}
        self._finalized = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Attach to the stations/source and claim eligible cells at t=0."""
        for station in self.stations.values():
            station.fastlane = self
        self.source.lane = self
        for cell in sorted(self.stations):
            if self._demotable(cell):
                self._demote(cell)
        self.env.process(self._ticks(), name="fastlane[ticks]")

    def claims(self, cell: int) -> bool:
        """True if ``cell`` is fluid (the traffic source must not launch
        its arrival process)."""
        return cell in self._fluid

    # ------------------------------------------------------------------
    # Promotion triggers
    # ------------------------------------------------------------------
    def notify_message(self, cell: int) -> None:
        """A protocol message is about to be handled by ``cell``:
        materialize it first (no-op for discrete cells)."""
        if cell in self._fluid:
            self._promote(cell, "message")

    def notify_borrow(self, cell: int) -> None:
        """``cell`` is about to enter borrowing mode (a residual call's
        release flipped the predictor): materialize it first."""
        if cell in self._fluid:
            self._promote(cell, "borrow")

    # ------------------------------------------------------------------
    # Observation instants
    # ------------------------------------------------------------------
    def _ticks(self):
        # Bounded by the horizon so a drain (``env.run()`` with no
        # ``until``) terminates: a tick at or past ``duration`` would
        # never execute during the run anyway (the stop event outranks
        # it), and not scheduling it shifts later event ids uniformly —
        # relative order, the heap tie-break, is unchanged.
        while self.env.now + self.period < self.duration:
            yield self.env.timeout(self.period)
            self._tick()

    def _tick(self) -> None:
        now = self.env.now
        # Spike checks (adaptive only — FCA never needs to borrow): one
        # uniform per fluid cell against the memoized truncated-Poisson
        # tail P(busy > c - θ_l).  Equivalent in distribution to
        # sampling the occupancy by inverse CDF and comparing (both
        # consume exactly one uniform), but the pmf is computed once
        # per (offered, c) instead of per cell per instant — this loop
        # runs cells x (duration/W) times and must stay off the fast
        # lane's own critical path.
        if self.adaptive:
            theta = self.scenario.theta_low
            for cell in sorted(self._fluid):
                station = self.stations[cell]
                c = len(station.PR)
                a = self._offered(cell, now)
                u = float(self._rng(cell).random())
                if len(station.use) > c - theta or u < self._spike_tail(
                    a, c, theta
                ):
                    self._promote(cell, "spike")
        # Demotion checks: a discrete cell joins the fluid lane only at
        # observation instants, only while it *and its whole
        # interference neighborhood* are quiescent, and (adaptive) only
        # with θ_h free primaries of hysteresis headroom.
        for cell in sorted(self.stations):
            if cell not in self._fluid and self._demotable(cell):
                self._demote(cell)

    def _demotable(self, cell: int) -> bool:
        station = self.stations[cell]
        if self.pattern.max_rate(cell) <= 0:
            return False  # nothing to advance; stay discrete
        if not station.fastlane_eligible():
            return False
        for j in station.IN:
            neighbor = self.stations.get(j)
            if neighbor is None or not neighbor.fastlane_eligible():
                return False
        if self.adaptive:
            if station.free_primary_count() < self.scenario.theta_high:
                return False
            blocking = self._blocking(
                self._offered(cell, self.env.now), len(station.PR)
            )
            if blocking > self.MAX_FLUID_BLOCKING:
                return False
        return True

    # ------------------------------------------------------------------
    # Demotion / promotion (the state bridge)
    # ------------------------------------------------------------------
    def _demote(self, cell: int) -> None:
        self._fluid[cell] = self.env.now
        self.demotions += 1
        self.source.halt(cell)
        self.env.emit("fastlane.demote", (cell,))

    def _promote(self, cell: int, reason: str) -> None:
        t0 = self._fluid.pop(cell, None)
        if t0 is None:
            return  # re-entrant trigger: already discrete
        now = self.env.now
        station = self.stations[cell]
        survivors = self._settle(cell, t0, now)
        free = sorted(station.PR - station.use)
        placed = min(len(survivors), len(free))
        for channel, remaining in zip(free, survivors[:placed]):
            station._grab(channel)
            self.env.process(
                self._holdover(station, channel, remaining),
                name=f"fastlane-call[{cell}]",
            )
        self.materialized += placed
        if placed < len(survivors):
            # Erlang-B admitted beyond the free primaries; the excess
            # cannot be placed — fold it into completions and report it.
            self.shed += len(survivors) - placed
            self.source.log.completed += len(survivors) - placed
        self._occ_sample(cell, len(station.use), now)
        self.fluid_time += now - t0
        self.promotions[reason] += 1
        self.source.launch(cell)
        station.fastlane_reconcile()
        self.env.emit("fastlane.promote", (cell, reason))
        check_mode = getattr(station, "_check_mode", None)
        if check_mode is not None:
            # Materialization may have consumed the cell's headroom; let
            # the protocol's own predictor react (possibly re-entering
            # borrowing, which re-promotes as a no-op).
            check_mode()

    def _holdover(self, station, channel: int, remaining: float):
        yield self.env.timeout(remaining)
        station.release_channel(channel)
        self.source.log.completed += 1

    # ------------------------------------------------------------------
    # Settlement: replay a fluid interval analytically
    # ------------------------------------------------------------------
    def _settle(self, cell: int, t0: float, t1: float) -> list:
        """Replay ``[t0, t1)`` arrivals for ``cell``.

        Thinned-Poisson arrival replay — same scheme as
        ``TrafficSource._arrivals``, on the lane's own substream — with
        each arrival blocked independently with probability
        ``erlang_b(A(t), c)`` and each admission given an explicit
        exponential holding time.  Admissions ending inside the
        interval complete on the spot; the rest are returned as their
        remaining-after-``t1`` durations (ascending by arrival time)
        for the caller to materialize.  Accounting goes to the same
        sinks the discrete path feeds: one acquisition record per
        arrival and the source's aggregate ``CallLog``.
        """
        station = self.stations[cell]
        c = len(station.PR)
        rng = self._rng(cell)
        pattern = self.pattern
        lam_max = pattern.max_rate(cell)
        n = b = 0
        survivors = []
        t = t0
        while True:
            t += float(rng.exponential(1.0 / lam_max))
            if t >= t1 or t >= self.duration:
                break
            rate = pattern.rate(cell, t)
            accept = rate / lam_max
            if accept < 1.0 and rng.random() >= accept:
                continue
            n += 1
            blocking = self._blocking(rate * self.mean_holding, c)
            self._model_block_sum += blocking
            dropped = blocking > 0.0 and float(rng.random()) < blocking
            if dropped:
                b += 1
            else:
                holding = float(rng.exponential(self.mean_holding))
                if t + holding >= t1:
                    survivors.append(t + holding - t1)
            self.metrics.record_acquisition(
                cell=cell,
                kind="new",
                granted=not dropped,
                queue_wait=0.0,
                acquisition_time=0.0,
                attempts=1,
                mode="local",
                time=t,
            )
        log = self.source.log
        log.started += n
        log.blocked += b
        log.completed += n - b - len(survivors)
        self.arrivals += n
        self.blocked += b
        return survivors

    def _blocking(self, offered: float, servers: int) -> float:
        key = (offered, servers)
        cached = self._bcache.get(key)
        if cached is None:
            cached = self._bcache[key] = erlang_b(offered, servers)
        return cached

    def _spike_tail(self, offered: float, servers: int, theta: int) -> float:
        """Memoized ``P(busy > servers - theta)`` under the truncated
        Poisson (Erlang-loss) stationary law."""
        key = (offered, servers, theta)
        cached = self._tailcache.get(key)
        if cached is None:
            pmf = truncated_poisson_pmf(offered, servers)
            cached = self._tailcache[key] = sum(
                p for k, p in pmf.items() if k > servers - theta
            )
        return cached

    def _offered(self, cell: int, t: float) -> float:
        return self.pattern.rate(cell, t) * self.mean_holding

    def _rng(self, cell: int):
        rng = self._rngs.get(cell)
        if rng is None:
            rng = self._rngs[cell] = self.streams.stream(
                "fastlane", "cell", cell
            )
        return rng

    # ------------------------------------------------------------------
    # End of run
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Settle every still-fluid cell through the horizon.

        Admissions that outlive the horizon are left uncompleted,
        exactly like discrete calls still holding channels at the end
        of a run; nothing is materialized — the simulation is over.
        """
        if self._finalized:
            return
        self._finalized = True
        end = self.duration
        for cell in sorted(self._fluid):
            t0 = self._fluid.pop(cell)
            station = self.stations[cell]
            survivors = self._settle(cell, t0, end)
            self._occ_sample(cell, len(station.use) + len(survivors), end)
            self.fluid_time += end - t0

    def _occ_sample(self, cell: int, occupancy: int, t: float) -> None:
        """One model-vs-sim occupancy divergence sample: the reconciled
        discrete occupancy against the Erlang-loss mean."""
        station = self.stations[cell]
        self._occ_samples += 1
        self._occ_sum += occupancy
        self._occ_model_sum += carried_load(
            self._offered(cell, t), len(station.PR)
        )

    # ------------------------------------------------------------------
    # Divergence summary (rendered into the run report)
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        cells = len(self.stations)
        span = cells * self.duration if cells else 0.0
        measured_block = self.blocked / self.arrivals if self.arrivals else 0.0
        model_block = (
            self._model_block_sum / self.arrivals if self.arrivals else 0.0
        )
        occ_mean = self._occ_sum / self._occ_samples if self._occ_samples else 0.0
        occ_model = (
            self._occ_model_sum / self._occ_samples if self._occ_samples else 0.0
        )
        return {
            "demotions": self.demotions,
            "promotions": dict(self.promotions),
            "fluid_time": self.fluid_time,
            "fluid_fraction": self.fluid_time / span if span else 0.0,
            "arrivals": self.arrivals,
            "blocked": self.blocked,
            "materialized": self.materialized,
            "shed": self.shed,
            "measured_block_rate": measured_block,
            "model_block_rate": model_block,
            "block_rate_abs_err": abs(measured_block - model_block),
            "occupancy_samples": self._occ_samples,
            "occupancy_mean": occ_mean,
            "occupancy_model_mean": occ_model,
            "occupancy_abs_err": abs(occ_mean - occ_model),
        }
