"""Mode-occupancy sampling: watch cells enter and leave borrowing mode.

A :class:`ModeSampler` polls every station's ``mode`` on a fixed
interval during the run and renders per-cell ASCII timelines — the
clearest way to *see* the paper's central mechanism (cells switching
modes to track their own load) in action.

Glyphs: ``.`` local, ``b`` borrowing-idle, ``U`` update round in
flight, ``S`` search in flight, ``?`` anything else (unknown or
transient mode values sample as :data:`repro.obs.UNKNOWN_MODE` instead
of raising — the glyph map is shared with the observability layer's
run reports, see ``repro.obs.timeseries``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..obs.timeseries import MODE_GLYPHS as _GLYPHS
from ..obs.timeseries import coerce_mode
from ..sim import Environment

__all__ = ["ModeSampler"]


class ModeSampler:
    """Samples station modes on a fixed interval.

    Works with any scheme: stations without a ``mode`` attribute sample
    as local (0).  Start it before running the simulation:

    >>> sim = build_simulation(scenario)
    >>> sampler = ModeSampler(sim.env, sim.stations, interval=50.0)
    >>> sim.run()
    >>> print(sampler.timeline(cells=[24, 25]))
    """

    def __init__(
        self,
        env: Environment,
        stations: Dict[int, object],
        interval: float = 50.0,
        horizon: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.env = env
        self.stations = stations
        self.interval = interval
        self.horizon = horizon
        self.times: List[float] = []
        self.samples: Dict[int, List[int]] = {c: [] for c in stations}
        env.process(self._sampler(), name="mode-sampler")

    def _sampler(self):
        while self.horizon is None or self.env.now < self.horizon:
            self.times.append(self.env.now)
            for cell, station in self.stations.items():
                mode = getattr(station, "mode", 0)
                self.samples[cell].append(coerce_mode(mode))
            yield self.env.timeout(self.interval)

    # -- analysis ------------------------------------------------------------
    def borrowing_fraction(self, cell: int) -> float:
        """Fraction of samples the cell spent outside local mode."""
        values = self.samples[cell]
        if not values:
            return 0.0
        # v > 0: unknown modes (coerced to -1) are not borrowing.
        return sum(1 for v in values if v > 0) / len(values)

    def system_borrowing_series(self) -> List[float]:
        """Per-sample fraction of cells in borrowing mode."""
        if not self.times:
            return []
        cells = list(self.samples)
        out = []
        for i in range(len(self.times)):
            borrowing = sum(
                1 for c in cells if self.samples[c][i] > 0
            )
            out.append(borrowing / len(cells))
        return out

    # -- rendering ---------------------------------------------------------------
    def timeline(
        self, cells: Optional[Iterable[int]] = None, width: int = 80
    ) -> str:
        """One ASCII row per cell; columns are (possibly thinned) samples."""
        chosen = sorted(cells) if cells is not None else sorted(self.samples)
        n = len(self.times)
        if n == 0:
            return "(no samples)"
        stride = max(1, n // width)
        label_w = max(len(str(c)) for c in chosen)
        lines = []
        for cell in chosen:
            row = "".join(
                _GLYPHS.get(self.samples[cell][i], "?")
                for i in range(0, n, stride)
            )
            lines.append(f"{str(cell).rjust(label_w)} {row}")
        span = f"t = {self.times[0]:g} .. {self.times[-1]:g}"
        lines.append(f"{' ' * label_w} ({span}; . local, b/U/S borrowing)")
        return "\n".join(lines)
