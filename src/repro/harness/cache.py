"""Persistent scenario→report result cache.

Every experiment cell in this repo is a pure function of its
:class:`~repro.harness.config.Scenario` (the simulator is fully
deterministic and seeded), so a finished :class:`Report` can be reused
whenever the exact same scenario is run again.  The cache maps a
canonical content hash of the scenario — its dataclass fields plus
``extra_params``, salted with a code-version stamp — to a pickled
report under ``.repro-cache/``.

Key properties:

* **Canonical keys.** The hash is computed over the scenario's
  sorted-key JSON serialization, so field order and dict insertion
  order never matter.  Scenarios that cannot be serialized (e.g. a
  custom load pattern, or non-JSON ``extra_params``) are simply not
  cacheable and always run.
* **Version salt.** The key is salted with :func:`code_stamp` — a hash
  of every ``repro`` source file plus :data:`SCHEMA_VERSION` — so any
  edit to the simulator invalidates all previous entries.  Stale
  results cannot leak across code changes.
* **Kill switch.** ``REPRO_CACHE=off`` in the environment disables the
  *default* cache (``cache=None`` callers).  An explicitly passed
  cache (``cache=True``, a directory path, or a :class:`ResultCache`)
  always wins.  ``REPRO_CACHE_DIR`` relocates the default directory.
* **Concurrency-safe writes.** Entries are written to a temp file and
  atomically renamed, so parallel workers and concurrent sweeps never
  observe a torn entry.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Optional, Union

from .config import Scenario

__all__ = [
    "ResultCache",
    "cache_key",
    "code_stamp",
    "resolve_cache",
    "DEFAULT_CACHE_DIR",
    "SCHEMA_VERSION",
]

#: Default on-disk location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Environment switch: ``off``/``0``/``false``/``no`` disables the
#: default cache; ``on``/``1``/``true``/``yes`` force-enables it.
ENV_SWITCH = "REPRO_CACHE"

#: Environment override for the default cache directory.
ENV_DIR = "REPRO_CACHE_DIR"

#: Bump manually to invalidate every cached result on a semantic change
#: that is not visible in the source tree (e.g. a data-file format).
SCHEMA_VERSION = 1

_FALSY = frozenset({"off", "0", "false", "no"})
_TRUTHY = frozenset({"on", "1", "true", "yes"})

_code_stamp: Optional[str] = None


def code_stamp() -> str:
    """Hash of the ``repro`` package sources — the cache version salt.

    Any edit to any ``.py`` file under the installed ``repro`` package
    (or a :data:`SCHEMA_VERSION` bump) changes this stamp and thereby
    invalidates every existing cache entry.  Computed once per process.
    """
    global _code_stamp
    if _code_stamp is None:
        import repro

        digest = hashlib.sha256()
        digest.update(
            f"schema={SCHEMA_VERSION};version={repro.__version__}".encode()
        )
        root = Path(repro.__file__).resolve().parent
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _code_stamp = digest.hexdigest()[:16]
    return _code_stamp


def cache_key(
    scenario: Scenario,
    salt: Optional[str] = None,
    variant: Optional[str] = None,
) -> Optional[str]:
    """Canonical content hash of ``scenario``, or None if uncacheable.

    The key covers every dataclass field including ``extra_params``
    (via the scenario's sorted-key JSON form) and is salted with
    ``salt`` (default: :func:`code_stamp`).

    ``variant`` distinguishes results produced by a *different
    execution recipe* for the same scenario.  The one stock producer is
    warm-start forking (``variant="warm:<snapshot content hash>"``, see
    :func:`repro.snap.fork_replications`): a replication forked from a
    warmed-up checkpoint simulates a different trajectory than a cold
    run of the same scenario, so the two must never share a cache row —
    and two forks of *different* snapshots must not share one either,
    which is why the snapshot's own content hash is part of the
    variant string.
    """
    try:
        blob = scenario.to_json()
    except (TypeError, ValueError):
        # Unserializable pattern or extra_params: not cacheable.
        return None
    digest = hashlib.sha256()
    digest.update((salt if salt is not None else code_stamp()).encode())
    digest.update(b"\0")
    digest.update(blob.encode())
    if variant is not None:
        digest.update(b"\0variant\0")
        digest.update(variant.encode())
    return digest.hexdigest()


class ResultCache:
    """On-disk scenario→report cache with hit/miss accounting.

    Parameters
    ----------
    root:
        Cache directory (default: ``$REPRO_CACHE_DIR`` or
        ``.repro-cache``).  Created lazily on the first store.
    salt:
        Version-salt override; defaults to :func:`code_stamp`.  Tests
        use this to exercise invalidation without editing sources.
    """

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        salt: Optional[str] = None,
    ) -> None:
        self.root = Path(root or os.environ.get(ENV_DIR) or DEFAULT_CACHE_DIR)
        self.salt = salt
        #: Lookup counters (since construction).
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> Path:
        # Two-level fanout keeps directory listings manageable.
        return self.root / key[:2] / f"{key}.pkl"

    def get(
        self, scenario: Scenario, variant: Optional[str] = None
    ) -> Optional[Any]:
        """Return the cached report for ``scenario``, or None.

        ``variant`` must match the value the entry was stored with (see
        :func:`cache_key`); a plain run (``variant=None``) never reads a
        warm-forked row and vice versa.
        """
        key = cache_key(scenario, self.salt, variant=variant)
        if key is None:
            self.misses += 1
            return None
        try:
            with open(self._path(key), "rb") as fh:
                entry: Dict[str, Any] = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            return None
        # Guard against key collisions / foreign files: the stored
        # scenario and variant must match exactly.
        if (
            entry.get("key") != key
            or entry.get("scenario") != scenario.to_dict()
            or entry.get("variant") != variant
        ):
            self.misses += 1
            return None
        self.hits += 1
        return entry["report"]

    def put(
        self, scenario: Scenario, report: Any, variant: Optional[str] = None
    ) -> bool:
        """Store ``report`` under ``scenario``'s key; False if uncacheable."""
        key = cache_key(scenario, self.salt, variant=variant)
        if key is None:
            return False
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": key,
            "scenario": scenario.to_dict(),
            "variant": variant,
            "report": report,
        }
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)  # atomic: concurrent readers never see a torn file
        except (OSError, pickle.PicklingError):
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self.stores += 1
        return True


def default_enabled() -> bool:
    """Whether ambient (``cache=None``) caching is currently on."""
    value = os.environ.get(ENV_SWITCH, "").strip().lower()
    if value in _FALSY:
        return False
    if value in _TRUTHY:
        return True
    return True  # cache is on by default; the version salt keeps it safe


def resolve_cache(
    cache: Union[None, bool, str, Path, "ResultCache"],
) -> Optional[ResultCache]:
    """Normalize a user-facing ``cache`` knob to a cache instance.

    * ``None`` — the ambient default: a :class:`ResultCache` in the
      default directory, unless ``REPRO_CACHE=off``.
    * ``True`` / ``False`` — force on (default directory) / off.
    * a path — cache rooted there.
    * a :class:`ResultCache` — used as-is.

    Explicit values override the ``REPRO_CACHE`` environment switch.
    """
    if cache is None:
        return ResultCache() if default_enabled() else None
    if cache is True:
        return ResultCache()
    if cache is False:
        return None
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(root=cache)
