"""Protocol trace recording and conformance checking.

A :class:`TraceRecorder` hooks the network and logs every envelope; the
``check_*`` functions then audit protocol-level pairing invariants that
neither the interference monitor (channel-level) nor unit tests
(per-node) can see globally:

* every REQUEST receives exactly one RESPONSE from each addressee,
  matched by round id — deferred responses included, duplicates are
  errors;
* every SEARCH-type RESPONSE a node sends is eventually balanced by an
  ACQUISITION(search) from that searcher (the ``waiting`` hand-shake of
  Figs. 3/4/7 — this is the liveness bookkeeping whose violation showed
  up as the saturation deadlock documented in DESIGN.md);
* every CHANGE_MODE is answered with a STATUS response (Fig. 5).

Use in tests::

    recorder = TraceRecorder(network)
    ... run simulation ...
    recorder.check_all()          # raises TraceViolation on any breach
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..sim import Envelope, Network
from .messages import AcqType, Acquisition, ChangeMode, Request, Response, ResType

__all__ = ["TraceViolation", "TraceRecorder"]


class TraceViolation(AssertionError):
    """A protocol-conformance breach found in the message trace."""


@dataclass(frozen=True)
class _Sent:
    time: float
    src: int
    dst: int
    payload: object


class TraceRecorder:
    """Records every sent envelope and audits pairing invariants."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self.sent: List[_Sent] = []
        network.on_send.append(self._record)

    def _record(self, envelope: Envelope) -> None:
        self.sent.append(
            _Sent(envelope.sent_at, envelope.src, envelope.dst, envelope.payload)
        )

    # -- individual checks ---------------------------------------------------
    def check_requests_answered(self) -> None:
        """Each (requester, responder, round) has exactly one response."""
        expected: Set[Tuple[int, int, int]] = set()
        for s in self.sent:
            if isinstance(s.payload, Request):
                key = (s.payload.sender, s.dst, s.payload.round_id)
                if key in expected:
                    raise TraceViolation(f"duplicate request {key}")
                expected.add(key)

        answered: Set[Tuple[int, int, int]] = set()
        for s in self.sent:
            if isinstance(s.payload, Response) and s.payload.res_type in (
                ResType.GRANT,
                ResType.REJECT,
                ResType.SEARCH,
                ResType.CONDITIONAL_GRANT,
            ):
                key = (s.dst, s.payload.sender, s.payload.round_id)
                if key not in expected:
                    # STATUS responses to CHANGE_MODE rounds share the
                    # Response class but use their own round ids; only
                    # request-type responses are audited here.
                    raise TraceViolation(
                        f"response without matching request: {key}"
                    )
                if key in answered:
                    raise TraceViolation(f"duplicate response for {key}")
                answered.add(key)

        missing = expected - answered
        if missing:
            raise TraceViolation(
                f"{len(missing)} requests never answered; first: "
                f"{sorted(missing)[0]}"
            )

    def check_search_acks_balanced(self) -> None:
        """Every SEARCH response is balanced by an ACQUISITION(search).

        Pairing is per (responder, searcher) and ordered — the FIFO
        links guarantee a searcher's ack arrives before its next search
        request reaches the same responder.
        """
        owed: Dict[Tuple[int, int], int] = defaultdict(int)
        for s in self.sent:
            if (
                isinstance(s.payload, Response)
                and s.payload.res_type is ResType.SEARCH
            ):
                owed[(s.src, s.dst)] += 1  # responder owes... searcher owes ack
            elif (
                isinstance(s.payload, Acquisition)
                and s.payload.acq_type is AcqType.SEARCH
            ):
                key = (s.dst, s.payload.sender)
                owed[key] -= 1
                if owed[key] < 0:
                    raise TraceViolation(
                        f"search ACQUISITION from {s.payload.sender} to "
                        f"{s.dst} without a prior SEARCH response"
                    )
        unbalanced = {k: v for k, v in owed.items() if v != 0}
        if unbalanced:
            raise TraceViolation(
                f"{len(unbalanced)} unacknowledged search responses "
                f"(waiting-counter leak); first: {sorted(unbalanced)[0]}"
            )

    def check_change_mode_answered(self) -> None:
        """Every CHANGE_MODE gets a STATUS response (Fig. 5)."""
        expected: Set[Tuple[int, int, int]] = set()
        for s in self.sent:
            if isinstance(s.payload, ChangeMode):
                expected.add((s.payload.sender, s.dst, s.payload.round_id))
        for s in self.sent:
            if (
                isinstance(s.payload, Response)
                and s.payload.res_type is ResType.STATUS
            ):
                expected.discard((s.dst, s.payload.sender, s.payload.round_id))
        if expected:
            raise TraceViolation(
                f"{len(expected)} CHANGE_MODE messages never answered with "
                f"STATUS; first: {sorted(expected)[0]}"
            )

    def check_all(self, allow_inflight: bool = False) -> None:
        """Run every audit.

        ``allow_inflight`` skips the completeness checks (use when the
        simulation was cut off mid-protocol rather than drained).
        """
        if not allow_inflight:
            self.check_requests_answered()
            self.check_search_acks_balanced()
            self.check_change_mode_answered()

    # -- statistics ------------------------------------------------------------
    def counts_by_type(self) -> Dict[str, int]:
        out: Dict[str, int] = defaultdict(int)
        for s in self.sent:
            out[type(s.payload).__name__] += 1
        return dict(out)
