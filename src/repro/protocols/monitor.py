"""Global interference monitor — a runtime oracle for Theorem 1.

The monitor sits outside the protocols (it has God's-eye view of the
simulation) and observes every channel acquisition and release.  It
checks the co-channel interference invariant of the paper's Theorem 1:

    a channel r is never simultaneously used by two cells within the
    minimum reuse distance of each other.

Protocols report through :meth:`acquired` / :meth:`released`; tests run
with ``policy="raise"`` so any safety violation fails loudly, while
exploratory experiments may use ``policy="record"`` to *measure* unsafe
windows (e.g. of the advanced-update baseline the paper criticises).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from ..cellular import CellularTopology

__all__ = ["InterferenceViolation", "InterferenceMonitor"]


@dataclass(frozen=True)
class InterferenceViolation:
    """One observed co-channel conflict."""

    time: float
    channel: int
    cell: int
    conflicting_cell: int

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"t={self.time}: channel {self.channel} acquired by cell "
            f"{self.cell} while in use by interfering cell {self.conflicting_cell}"
        )


class InterferenceMonitor:
    """Tracks channel usage globally and checks the reuse invariant.

    Parameters
    ----------
    topo:
        The cellular topology (supplies interference regions).
    policy:
        ``"raise"`` — raise ``AssertionError`` on a violation (tests);
        ``"record"`` — append to :attr:`violations` and continue.
    """

    def __init__(self, topo: CellularTopology, policy: str = "raise") -> None:
        if policy not in ("raise", "record"):
            raise ValueError(f"unknown policy {policy!r}")
        self.topo = topo
        self.policy = policy
        #: channel -> set of cells currently using it
        self.users: Dict[int, Set[int]] = {}
        self.violations: List[InterferenceViolation] = []
        #: Running counters for reporting.
        self.total_acquisitions = 0
        self.total_releases = 0
        self.max_concurrent_users = 0
        # Active (cell, channel) pairs, maintained incrementally so
        # per-acquisition bookkeeping stays O(1) instead of summing
        # every channel's user set.
        self._active = 0

    def acquired(self, cell: int, channel: int, time: float) -> None:
        """Record that ``cell`` started using ``channel`` at ``time``."""
        users = self.users.setdefault(channel, set())
        if cell in users:
            raise AssertionError(
                f"cell {cell} double-acquired channel {channel} at t={time}"
            )
        region = self.topo.IN(cell)
        for other in users:
            if other in region:
                violation = InterferenceViolation(time, channel, cell, other)
                if self.policy == "raise":
                    raise AssertionError(str(violation))
                self.violations.append(violation)
        users.add(cell)
        self.total_acquisitions += 1
        self._active += 1
        if self._active > self.max_concurrent_users:
            self.max_concurrent_users = self._active

    def released(self, cell: int, channel: int, time: float) -> None:
        """Record that ``cell`` stopped using ``channel``."""
        users = self.users.get(channel)
        if not users or cell not in users:
            raise AssertionError(
                f"cell {cell} released channel {channel} it does not hold (t={time})"
            )
        users.discard(cell)
        self.total_releases += 1
        self._active -= 1

    @property
    def in_use(self) -> int:
        """Number of (cell, channel) pairs currently active."""
        return self._active

    def channels_used_by(self, cell: int) -> Set[int]:
        return {ch for ch, users in self.users.items() if cell in users}

    def assert_clean(self) -> None:
        """Raise if any violation was recorded (for record-mode tests)."""
        if self.violations:
            raise AssertionError(
                f"{len(self.violations)} interference violations recorded; "
                f"first: {self.violations[0]}"
            )
