"""Fixed (static) channel allocation — the FCA baseline.

Each cell may only ever use its statically assigned primary channels
(the reuse-pattern partition).  Channel acquisition is purely local:
zero latency, zero control messages.  A request is denied ("call
dropped" in the paper's terminology) as soon as all primaries are busy
— even when neighboring cells sit on idle channels, which is exactly
the weakness the paper's introduction motivates.

Extension: classic *guard channels* (Hong & Rappaport 1986) — reserve
the last ``guard_channels`` free primaries for handoffs, since users
perceive a dropped ongoing call as far worse than a blocked new one.
Off by default.
"""

from __future__ import annotations

from typing import Optional

from .base import MSS
from .messages import Timestamp

__all__ = ["FixedMSS"]


class FixedMSS(MSS):
    """Static allocation: serve from ``PR_i`` or deny."""

    scheme = "fixed"

    def __init__(self, *args, guard_channels: int = 0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if guard_channels < 0 or guard_channels >= len(self.PR):
            raise ValueError(
                "guard_channels must be in [0, primaries per cell)"
            )
        self.guard_channels = guard_channels

    def _request(self, ts: Timestamp) -> Optional[int]:
        self._attempts = 1
        self._grant_mode = "local"
        free = self.PR - self.use
        if not free:
            return None
        if self._req_kind == "new" and len(free) <= self.guard_channels:
            return None  # reserved for handoffs
        channel = min(free)  # deterministic pick
        self._grab(channel)
        return channel

    def _release(self, channel: int) -> None:
        self._drop_from_use(channel)

    def fastlane_eligible(self) -> bool:
        """FCA is always an isolated M/M/c/c loss system — any live
        cell may be advanced analytically (no messages, no borrowing)."""
        return not self.down
