"""Allocated-set dynamic allocation (Prakash, Shivaratri & Singhal [8]).

The paper's §6 compares the adaptive scheme against this PODC'95
algorithm.  Its key idea: a cell *keeps* channels it has acquired (its
``allocated`` set) and serves later calls from them without any
messages — adapting to load much like the adaptive scheme's primary
sets, but with the allocated sets migrating between cells over time:

* a request served from the allocated set costs 0 messages / 0 latency;
* otherwise the cell polls its interference region for every neighbor's
  (allocated, busy) sets — one 2N round, timestamp-serialized exactly
  like basic search;
* if some channel is allocated to nobody in the region, the cell claims
  it (adds to its allocated set);
* if not, the cell picks a channel that is allocated-but-idle at a
  neighbor and runs the paper's TRANSFER/AGREE-or-KEEP handshake to
  migrate it (the extra message rounds §6 holds against this scheme —
  our adaptive scheme moves a channel with a single search round).

Channels in a cell's allocated set are exclusively reusable by that
cell within its interference region, so the co-channel invariant
reduces to allocated-set exclusivity; the timestamp-deferred poll round
serializes concurrent claims the same way basic search serializes
concurrent channel picks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..sim import Collector
from .base import MSS
from .messages import (
    Acquisition,
    AcqType,
    NO_CHANNEL,
    Release,
    ReqType,
    Request,
    Timestamp,
)

__all__ = ["PrakashMSS", "Transfer", "TransferReply", "PollResponse"]


@dataclass(frozen=True)
class PollResponse:
    """Reply to a poll: the responder's allocated and busy sets."""

    sender: int
    allocated: FrozenSet[int]
    busy: FrozenSet[int]
    round_id: int


@dataclass(frozen=True)
class Transfer:
    """TRANSFER(r): ask the receiver to give up allocated channel r."""

    sender: int
    channel: int
    ts: Timestamp
    round_id: int


@dataclass(frozen=True)
class TransferReply:
    """AGREE (granted=True) or KEEP (granted=False) for a Transfer."""

    sender: int
    channel: int
    granted: bool
    round_id: int


class PrakashMSS(MSS):
    """Distributed allocation with migrating allocated sets."""

    scheme = "prakash"

    def __init__(self, *args, max_transfer_rounds: int = 8, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.max_transfer_rounds = max_transfer_rounds
        #: Channels this cell owns the right to use (starts at PR_i, the
        #: natural initial partition).
        self.allocated: Set[int] = set(self.PR)
        #: Channels transferred away via AGREE.  Still reported as
        #: allocated in poll responses: between the donor's AGREE and
        #: the recipient's claim there is a window where a third poller
        #: would otherwise see the channel as allocated to nobody and
        #: claim it concurrently — pledging closes that hole (at worst
        #: it is conservative: both donor and recipient report it).
        self.pledged: Set[int] = set()
        #: Channel of an in-flight TRANSFER we initiated.  Reported as
        #: allocated in poll responses from the moment the TRANSFER is
        #: sent: a poller whose region contains us but not the donor
        #: would otherwise see the channel as entirely unallocated while
        #: our claim is in flight and grab it concurrently.
        self._claiming: Optional[int] = None
        self._polling = False
        self._poll_ts: Optional[Timestamp] = None
        self._deferred: List[Tuple[int, int]] = []
        self._collector: Optional[Collector] = None
        self._collector_round = -1
        self._transfer_collector: Optional[Collector] = None
        self._transfer_round = -1

    # -- requesting -----------------------------------------------------------
    def _request(self, ts: Timestamp):
        free_allocated = self.allocated - self.use
        if free_allocated:
            self._attempts = 1
            self._grant_mode = "local"
            channel = min(free_allocated)
            self._grab(channel)
            return channel

        self._grant_mode = "search"
        self._attempts = 0
        try:
            channel = yield from self._acquire_remote(ts)
        finally:
            # Deferred pollers are answered only once this request has
            # fully completed, so their view includes our claim.
            self._polling = False
            self._poll_ts = None
            self._answer_deferred()
        return channel

    def _acquire_remote(self, ts: Timestamp):
        rounds = 0
        refused: Set[int] = set()  # channels whose donor replied KEEP
        while rounds < self.max_transfer_rounds:
            rounds += 1
            self._attempts = rounds
            # Poll the region (timestamp-serialized, like basic search).
            round_id = self._next_round()
            self._poll_ts = ts
            self._polling = True
            self._collector = Collector(self.env, self.IN)
            self._collector_round = round_id
            self._broadcast(
                Request(ReqType.SEARCH, NO_CHANNEL, ts, self.cell, round_id)
            )
            responses = yield self._collector.done
            self._collector = None

            allocated_in_region: Set[int] = set(self.allocated) | self.pledged
            busy_in_region: Set[int] = set()
            owners_of: Dict[int, List[int]] = {}
            for j, resp in responses.items():
                allocated_in_region |= resp.allocated
                busy_in_region |= resp.busy
                for ch in resp.allocated:
                    owners_of.setdefault(ch, []).append(j)

            unallocated = self.spectrum - allocated_in_region
            if unallocated:
                channel = min(unallocated)
                self.allocated.add(channel)
                self._grab(channel)
                return channel

            # No unallocated channel: migrate an idle allocated channel
            # (TRANSFER / AGREE-or-KEEP, §6).  Every owner inside our
            # region must agree — a channel can legitimately have
            # several owners here (same-color cells of the original
            # reuse pattern sit at distance 3 around us), and taking it
            # from only one would still conflict with the others; this
            # is the paper's "transfer r from more than one cell" case.
            candidates = sorted(
                ch
                for ch, owners in owners_of.items()
                if ch not in busy_in_region
                and ch not in refused
                and ch not in self.pledged  # we gave it away ourselves
            )
            if not candidates:
                return None  # region truly saturated (or all refused)
            channel = candidates[0]
            donors = sorted(owners_of[channel])
            t_round = self._next_round()
            self._transfer_collector = Collector(self.env, donors)
            self._transfer_round = t_round
            self._claiming = channel
            for donor in donors:
                self._send(donor, Transfer(self.cell, channel, ts, t_round))
            replies = yield self._transfer_collector.done
            self._transfer_collector = None
            if all(r.granted for r in replies.values()):
                self.allocated.add(channel)
                self._claiming = None
                self._grab(channel)
                # Confirm: donors may drop their pledge entirely — from
                # now on we are the visible owner in every region that
                # could interfere with us.
                for donor in donors:
                    self._send(
                        donor, Acquisition(AcqType.NON_SEARCH, self.cell, channel)
                    )
                return channel
            # Some donor KEEPs: undo the AGREEd pledges and move on.
            self._claiming = None
            for donor in sorted(replies):
                if replies[donor].granted:
                    self._send(donor, Release(self.cell, channel))
            refused.add(channel)
        return None

    def _release(self, channel: int) -> None:
        # The channel stays allocated to this cell; only usage ends.
        self._drop_from_use(channel)

    def _reported_allocated(self) -> FrozenSet[int]:
        extra = {self._claiming} if self._claiming is not None else set()
        return frozenset(self.allocated | self.pledged | extra)

    def _answer_deferred(self) -> None:
        deferred, self._deferred = self._deferred, []
        snapshot_alloc = self._reported_allocated()
        snapshot_busy = frozenset(self.use)
        for sender, rid in deferred:
            self._send(
                sender, PollResponse(self.cell, snapshot_alloc, snapshot_busy, rid)
            )

    # -- message handlers ---------------------------------------------------------
    def _on_Request(self, msg: Request) -> None:
        self.env.emit("proto.request", (self.cell, msg.sender, msg.round_id))
        if self._polling and msg.ts > self._poll_ts:
            self._deferred.append((msg.sender, msg.round_id))
        else:
            self._send(
                msg.sender,
                PollResponse(
                    self.cell,
                    self._reported_allocated(),
                    frozenset(self.use),
                    msg.round_id,
                ),
            )

    def _on_PollResponse(self, msg: PollResponse) -> None:
        if (
            self._collector is not None
            and msg.round_id == self._collector_round
            and msg.sender in self._collector.outstanding
        ):
            self._collector.deliver(msg.sender, msg)

    def _on_Transfer(self, msg: Transfer) -> None:
        self.env.emit("proto.request", (self.cell, msg.sender, msg.round_id))
        channel = msg.channel
        can_give = (
            channel in self.allocated
            and channel not in self.use
            and not self._polling  # mid-poll: state in flux, keep it
        )
        if can_give:
            self.allocated.discard(channel)
            self.pledged.add(channel)
        self._send(
            msg.sender,
            TransferReply(self.cell, channel, can_give, msg.round_id),
        )

    def _on_Acquisition(self, msg: Acquisition) -> None:
        # Transfer confirmed: the recipient is now the visible owner,
        # our pledge can be retired for good.
        self.pledged.discard(msg.channel)

    def _on_Release(self, msg: Release) -> None:
        # Transfer aborted: restore the pledged channel to our
        # allocated set.
        if msg.channel in self.pledged:
            self.pledged.discard(msg.channel)
            self.allocated.add(msg.channel)

    def _on_TransferReply(self, msg: TransferReply) -> None:
        if (
            self._transfer_collector is not None
            and msg.round_id == self._transfer_round
            and msg.sender in self._transfer_collector.outstanding
        ):
            self._transfer_collector.deliver(msg.sender, msg)
