"""Basic search scheme (Dong & Lai [4]; paper §2.2).

An MSS needing a channel polls its entire interference region: every
neighbor replies with its set of used channels, the requester computes
the free set and picks one.  No node maintains any information about
its neighborhood between requests, so acquisitions cost exactly
2N messages (N REQUESTs + N RESPONSEs) and releases are free.

Concurrent searches in overlapping regions are serialized by request
timestamps: an MSS that is itself searching *defers* its response to
any request carrying a higher (younger) timestamp until its own search
completes — the deferred response then reflects the channel it just
acquired, so the younger searcher cannot pick the same one (this is the
mutual-exclusion argument of the paper's Theorem 1, case 1a).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..sim import Collector
from .base import MSS
from .messages import NO_CHANNEL, ReqType, Request, ResType, Response, Timestamp

__all__ = ["BasicSearchMSS"]


class BasicSearchMSS(MSS):
    """Search-based dynamic allocation (stateless between requests)."""

    scheme = "basic_search"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._searching = False
        self._search_ts: Optional[Timestamp] = None
        self._collector: Optional[Collector] = None
        self._collector_round = -1
        #: (sender, round_id) pairs whose response we postponed.
        self._deferred: List[Tuple[int, int]] = []

    # -- requesting ---------------------------------------------------------
    def _request(self, ts: Timestamp):
        self._attempts = 1
        self._grant_mode = "search"
        round_id = self._next_round()
        self._search_ts = ts
        self._searching = True
        self._collector = Collector(self.env, self.IN)
        self._collector_round = round_id

        self._broadcast(Request(ReqType.SEARCH, NO_CHANNEL, ts, self.cell, round_id))
        use_sets, complete = yield from self._await_round(self._collector)

        if complete:
            free = self.spectrum - self.use
            for use_j in use_sets.values():
                free -= use_j
            channel = min(free) if free else None
        else:
            # Hardened round deadline expired: with any neighbor's Use
            # set unknown, no pick is provably safe — abandon (the
            # deferred responses below still go out, so younger
            # searchers are not stuck behind us).
            channel = None
        if channel is not None:
            self._grab(channel)

        # Search complete: answer everyone we deferred, with the
        # post-acquisition Use set (this is what makes deferral safe).
        self._searching = False
        self._search_ts = None
        self._collector = None
        deferred, self._deferred = self._deferred, []
        snapshot = frozenset(self.use)
        for sender, rid in deferred:
            self._send(sender, Response(ResType.SEARCH, self.cell, snapshot, rid))
        return channel

    def _release(self, channel: int) -> None:
        # Stateless scheme: nobody tracks our usage, nothing to send.
        self._drop_from_use(channel)

    # -- message handlers -----------------------------------------------------
    def _on_Request(self, msg: Request) -> None:
        self.env.emit("proto.request", (self.cell, msg.sender, msg.round_id))
        if msg.req_type is not ReqType.SEARCH:
            raise AssertionError("basic search only issues search requests")
        if self._searching and msg.ts > self._search_ts:
            # Younger request: defer until our own search completes.
            self._deferred.append((msg.sender, msg.round_id))
        else:
            self._send(
                msg.sender,
                Response(ResType.SEARCH, self.cell, frozenset(self.use), msg.round_id),
            )

    def _on_Response(self, msg: Response) -> None:
        if (
            self._collector is not None
            and msg.round_id == self._collector_round
            and msg.sender in self._collector.outstanding
        ):
            self._collector.deliver(msg.sender, msg.payload)
        # else: stale response from a past round — cannot happen in this
        # scheme (every response is matched), but tolerate defensively.
