"""Basic update scheme (Dong & Lai [4]; paper §2.2).

Every MSS continuously mirrors its neighborhood's channel usage: each
acquisition/release is broadcast to the interference region, so a
requester can *locally* pick a channel it believes free and only needs
one permission round (N REQUESTs + N RESPONSEs) to guard against races.

Conflict rule while a request for channel r is pending (paper §2.2):
a same-channel request with a *younger* timestamp is rejected; an
*older* one is granted and the own attempt is aborted (retry with a
different channel).  Grants do not update neighbor state — only the
winner's ACQUISITION broadcast does — giving the paper's message count
of ``2Nm + 2N`` for m attempts (Table 1).

Under heavy load the retry loop is unbounded in the original scheme
(Table 3 lists ∞); we cap it with ``max_attempts`` so simulations
terminate, and count a capped request as a drop.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..sim import Collector
from .base import MSS
from .messages import (
    Acquisition,
    AcqType,
    Release,
    ReqType,
    Request,
    ResType,
    Response,
    Timestamp,
)

__all__ = ["BasicUpdateMSS"]


class BasicUpdateMSS(MSS):
    """Update-based dynamic allocation with local channel pick."""

    scheme = "basic_update"

    def __init__(self, *args, max_attempts: int = 25, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.max_attempts = max_attempts
        #: Mirrored usage of each interference neighbor (paper's U_j).
        self.U: Dict[int, Set[int]] = {j: set() for j in self.IN}
        self._pending: Optional[Tuple[int, Timestamp]] = None  # (channel, ts)
        self._abort = False
        self._collector: Optional[Collector] = None
        self._collector_round = -1

    # -- derived state -------------------------------------------------------
    def interfered(self) -> Set[int]:
        """Channels known to be in use somewhere in IN (paper's I_i)."""
        result: Set[int] = set()
        for use_j in self.U.values():
            result |= use_j
        return result

    # -- requesting ------------------------------------------------------------
    def _request(self, ts: Timestamp):
        self._grant_mode = "update"
        attempts = 0
        while attempts < self.max_attempts:
            attempts += 1
            self._attempts = attempts
            free = self.spectrum - self.use - self.interfered()
            if not free:
                return None  # no channel believed free → call dropped
            channel = min(free)

            round_id = self._next_round()
            self._pending = (channel, ts)
            self._abort = False
            self._collector = Collector(self.env, self.IN)
            self._collector_round = round_id
            self._broadcast(Request(ReqType.UPDATE, channel, ts, self.cell, round_id))
            verdicts, complete = yield from self._await_round(self._collector)
            self._pending = None
            self._collector = None

            # A round that timed out (hardening) counts every missing
            # verdict as a rejection: grants in this scheme record no
            # state at the granter, so simply retrying is safe.
            all_granted = complete and all(
                v is ResType.GRANT for v in verdicts.values()
            )
            if all_granted and not self._abort:
                self._grab(channel)
                self._broadcast(Acquisition(AcqType.NON_SEARCH, self.cell, channel))
                return channel
            # Rejected (or aborted in favour of an older same-channel
            # request): try another channel per refreshed local info.
        return None  # attempt cap reached → drop (paper: unbounded)

    def _release(self, channel: int) -> None:
        self._drop_from_use(channel)
        self._broadcast(Release(self.cell, channel))

    # -- message handlers ---------------------------------------------------------
    def _on_Request(self, msg: Request) -> None:
        self.env.emit("proto.request", (self.cell, msg.sender, msg.round_id))
        if msg.req_type is not ReqType.UPDATE:
            raise AssertionError("basic update only issues update requests")
        channel = msg.channel
        if channel in self.use:
            verdict = ResType.REJECT
        elif self._pending is not None and self._pending[0] == channel:
            my_ts = self._pending[1]
            if my_ts < msg.ts:
                verdict = ResType.REJECT  # we are older: we win
            else:
                verdict = ResType.GRANT  # they are older: yield and retry
                self._abort = True
        else:
            verdict = ResType.GRANT
        self._send(
            msg.sender, Response(verdict, self.cell, channel, msg.round_id)
        )

    def _on_Response(self, msg: Response) -> None:
        if (
            self._collector is not None
            and msg.round_id == self._collector_round
            and msg.sender in self._collector.outstanding
        ):
            self._collector.deliver(msg.sender, msg.res_type)

    def _on_Acquisition(self, msg: Acquisition) -> None:
        self.U[msg.sender].add(msg.channel)

    def _on_Release(self, msg: Release) -> None:
        self.U[msg.sender].discard(msg.channel)
