"""Advanced update scheme (Dong & Lai [3]; paper §5, §6 and Figure 11).

A refinement of basic update that saves messages two ways:

1. a cell uses its own free primaries without asking anyone
   (acquisition time 0 at low load — paper Table 2);
2. to borrow channel r, a cell asks only the *primary* cells of r — the
   paper's ``NP(c, r)``, ``n_p`` cells — instead of all N interference
   neighbors.

Primaries arbitrate concurrent borrows of their channel: the first
request in flight gets a GRANT; a later-arriving request with an
*older* timestamp gets only a CONDITIONAL_GRANT (valid only if the
earlier grantee fails), and a younger one is rejected.  A requester
succeeds only on unanimous unconditional grants.

This reproduces the unfairness the paper criticises in Figure 11: if
c2's messages overtake c1's in the network, both primaries grant c2 and
c1 — despite its lower timestamp — fails.  Our adaptive scheme avoids
this by always querying the full interference region.

Reconstruction note (the original OSU TR [3] is not available): with
arbiters restricted to primaries *inside* the requester's interference
region, two interfering borrowers can have disjoint arbiter sets — no
common serialization point — and our interference monitor caught real
co-channel violations under load.  We therefore use as arbiters all
primaries of r within distance 2R of the requester: for any two cells
within reuse distance R of each other, every primary within R of one is
within 2R of the other, so interfering requests always share at least
one arbiter and safety is restored.  On the k=7/R=2 topology this is
~8 arbiters per channel versus N = 18 neighbors, preserving the
scheme's message-saving character (and its Figure 11 unfairness).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..sim import Collector
from .base import MSS
from .messages import (
    Acquisition,
    AcqType,
    Release,
    ReqType,
    Request,
    ResType,
    Response,
    Timestamp,
)

__all__ = ["AdvancedUpdateMSS"]


class AdvancedUpdateMSS(MSS):
    """Primary-arbitrated borrowing (Dong & Lai's advanced update)."""

    scheme = "advanced_update"

    def __init__(self, *args, max_attempts: int = 25, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.max_attempts = max_attempts
        #: Mirrored usage of cells we hear broadcasts from.
        self.U: Dict[int, Set[int]] = {}
        #: As a primary/arbiter: channel -> (grantee, grantee_ts).
        self.outstanding: Dict[int, Tuple[int, Timestamp]] = {}
        self._collector: Optional[Collector] = None
        self._collector_round = -1
        # Arbiter map: channel -> primary cells of that channel within
        # distance 2R (excluding ourselves).  See reconstruction note.
        grid = self.topo.grid
        reach = 2 * self.topo.interference_radius
        self._arbiters: Dict[int, Tuple[int, ...]] = {}
        near = [
            p for p in grid if p != self.cell
            and grid.distance(self.cell, p) <= reach
        ]
        for ch in sorted(self.spectrum):
            self._arbiters[ch] = tuple(
                p for p in near if ch in self.topo.PR(p)
            )
        #: Everyone who must hear our borrowed-channel events.
        self._notify: Dict[int, Tuple[int, ...]] = {
            ch: tuple(sorted(set(self.IN) | set(self._arbiters[ch])))
            for ch in sorted(self.spectrum)
        }

    def arbiters(self, channel: int) -> Tuple[int, ...]:
        """Arbiter cells whose unanimous grant a borrow of ``channel``
        requires (the reconstruction's ``NP(c, r)``)."""
        return self._arbiters[channel]

    def interfered(self) -> Set[int]:
        """Channels known in use within our interference region."""
        result: Set[int] = set()
        for holder, use_j in self.U.items():
            if holder in self.topo.IN(self.cell):
                result |= use_j
        return result

    def granted_channels(self) -> Set[int]:
        """Own primaries currently granted out to a borrower."""
        return set(self.outstanding)

    # -- requesting -----------------------------------------------------------
    def _request(self, ts: Timestamp):
        # Local primary first: zero acquisition latency.  Channels we
        # granted to a pending borrower are off limits until released.
        free_primary = (
            self.PR - self.use - self.interfered() - self.granted_channels()
        )
        if free_primary:
            self._attempts = 1
            self._grant_mode = "local"
            channel = min(free_primary)
            self._grab(channel)
            self._broadcast(Acquisition(AcqType.NON_SEARCH, self.cell, channel))
            return channel

        yield from ()  # generator even on the immediate-drop path
        attempts = 0
        refused = set()  # channels refused by an arbiter this request
        self._grant_mode = "update"
        while attempts < self.max_attempts:
            attempts += 1
            self._attempts = attempts
            free = self.spectrum - self.PR - self.use - self.interfered()
            candidates = [
                ch for ch in sorted(free)
                if self._arbiters[ch] and ch not in refused
            ]
            if not candidates:
                return None
            # Spread concurrent borrowers across the candidate list by
            # cell id: hot-spot neighbors otherwise all fight over the
            # globally lowest free channel and reject each other.
            channel = candidates[self.cell % len(candidates)]
            arbiters = self._arbiters[channel]

            round_id = self._next_round()
            self._collector = Collector(self.env, arbiters)
            self._collector_round = round_id
            for p in arbiters:
                self._send(
                    p, Request(ReqType.UPDATE, channel, ts, self.cell, round_id)
                )
            verdicts = yield self._collector.done
            self._collector = None

            if all(v is ResType.GRANT for v in verdicts.values()):
                self._grab(channel)
                self.network.multicast(
                    self.cell,
                    self._notify[channel],
                    Acquisition(AcqType.NON_SEARCH, self.cell, channel),
                )
                return channel
            # Failure: release the arbiters that did grant so they can
            # clear their outstanding-grant entry (the paper's
            # ``n_p (m-1)`` extra messages) and avoid re-requesting the
            # same channel this request.
            refused.add(channel)
            for p in sorted(verdicts):
                if verdicts[p] in (ResType.GRANT, ResType.CONDITIONAL_GRANT):
                    self._send(p, Release(self.cell, channel))
        return None

    def _release(self, channel: int) -> None:
        self._drop_from_use(channel)
        if channel in self.PR:
            self._broadcast(Release(self.cell, channel))
        else:
            self.network.multicast(
                self.cell, self._notify[channel], Release(self.cell, channel)
            )

    # -- arbiter side -------------------------------------------------------------
    def _on_Request(self, msg: Request) -> None:
        self.env.emit("proto.request", (self.cell, msg.sender, msg.round_id))
        channel = msg.channel
        if channel not in self.PR:
            raise AssertionError(
                f"cell {self.cell} asked to arbitrate non-primary channel {channel}"
            )
        verdict = self._arbitrate(channel, msg.sender, msg.ts)
        self._send(
            msg.sender, Response(verdict, self.cell, channel, msg.round_id)
        )

    def _arbitrate(self, channel: int, requester: int, ts: Timestamp) -> ResType:
        if channel in self.use:
            return ResType.REJECT
        # Reject if we know of a user that interferes with the requester.
        requester_region = self.topo.IN(requester)
        for holder, use_j in self.U.items():
            if channel in use_j and (
                holder == requester or holder in requester_region
            ):
                return ResType.REJECT
        granted = self.outstanding.get(channel)
        if granted is None:
            self.outstanding[channel] = (requester, ts)
            return ResType.GRANT
        grantee, grantee_ts = granted
        if grantee == requester:
            # Retry from the same requester (lost release race): refresh.
            self.outstanding[channel] = (requester, ts)
            return ResType.GRANT
        if ts < grantee_ts:
            # Older request arriving late (message overtaking — Figure
            # 11): only a conditional grant.  The earlier grantee keeps
            # the real grant, so the older requester will fail.
            return ResType.CONDITIONAL_GRANT
        return ResType.REJECT

    # -- message handlers ----------------------------------------------------------
    def _on_Response(self, msg: Response) -> None:
        if (
            self._collector is not None
            and msg.round_id == self._collector_round
            and msg.sender in self._collector.outstanding
        ):
            self._collector.deliver(msg.sender, msg.res_type)

    def _on_Acquisition(self, msg: Acquisition) -> None:
        self.U.setdefault(msg.sender, set()).add(msg.channel)
        granted = self.outstanding.get(msg.channel)
        if granted is not None and granted[0] == msg.sender:
            del self.outstanding[msg.channel]

    def _on_Release(self, msg: Release) -> None:
        self.U.setdefault(msg.sender, set()).discard(msg.channel)
        granted = self.outstanding.get(msg.channel)
        if granted is not None and granted[0] == msg.sender:
            del self.outstanding[msg.channel]
