"""Channel-allocation protocols: framework, baselines and monitor.

The paper's own scheme lives in :mod:`repro.core`; this package holds
the shared MSS framework, message vocabulary, the safety monitor and
the three published baselines it is compared against (§2.2, §5):
fixed allocation, basic search, basic update, advanced update.
"""

from .advanced_update import AdvancedUpdateMSS
from .base import MSS
from .basic_search import BasicSearchMSS
from .basic_update import BasicUpdateMSS
from .fixed import FixedMSS
from .messages import (
    Acquisition,
    AcqType,
    ChangeMode,
    Donate,
    NO_CHANNEL,
    Release,
    ReqType,
    Request,
    ResType,
    Response,
    Solicit,
    Timestamp,
)
from .monitor import InterferenceMonitor, InterferenceViolation
from .prakash import PrakashMSS
from .tracing import TraceRecorder, TraceViolation

__all__ = [
    "MSS",
    "FixedMSS",
    "BasicSearchMSS",
    "BasicUpdateMSS",
    "AdvancedUpdateMSS",
    "PrakashMSS",
    "InterferenceMonitor",
    "InterferenceViolation",
    "TraceRecorder",
    "TraceViolation",
    "Request",
    "Response",
    "ChangeMode",
    "Acquisition",
    "Release",
    "Solicit",
    "Donate",
    "ReqType",
    "ResType",
    "AcqType",
    "Timestamp",
    "NO_CHANNEL",
]
