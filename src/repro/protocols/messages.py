"""Protocol message types (paper §3.2).

The five message families of the adaptive scheme — REQUEST, RESPONSE,
CHANGE_MODE, ACQUISITION, RELEASE — are shared by the baseline schemes
(which use subsets of them), so message-complexity counts are directly
comparable across protocols: the network counts envelopes by payload
class name.

Every message that participates in a request/response round carries a
``round_id`` so late (deferred) responses are matched to the right
round and stale responses from a superseded round are discarded — the
paper leaves this bookkeeping implicit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Tuple, Union

__all__ = [
    "Timestamp",
    "ReqType",
    "ResType",
    "AcqType",
    "Request",
    "Response",
    "ChangeMode",
    "Acquisition",
    "Release",
    "Solicit",
    "Donate",
    "NO_CHANNEL",
]

#: A request timestamp: (generation time, node id).  Comparing tuples
#: lexicographically yields the total order the paper's proofs rely on
#: (time first, node id as the tie-breaker).
Timestamp = Tuple[float, int]

#: Channel placeholder used by failed searches (paper's ``-1``).
NO_CHANNEL = -1


class ReqType(enum.IntEnum):
    """REQUEST.req_type (paper: 0 = update, 1 = search)."""

    UPDATE = 0
    SEARCH = 1


class ResType(enum.IntEnum):
    """RESPONSE.res_type (paper: reject/grant carry a channel id,
    search/status carry the responder's Use set)."""

    REJECT = 0
    GRANT = 1
    SEARCH = 2
    STATUS = 3
    #: Extension used by the advanced-update baseline ([3], Figure 11):
    #: a grant that is valid only if the earlier grantee's request fails.
    CONDITIONAL_GRANT = 4


class AcqType(enum.IntEnum):
    """ACQUISITION.acq_type (paper: 0 = non-search, 1 = search)."""

    NON_SEARCH = 0
    SEARCH = 1


@dataclass(frozen=True)
class Request:
    """REQUEST(req_type, r, ts_j, j): sender j wants to acquire a channel.

    ``channel`` is the concrete channel sought for update requests and
    ``NO_CHANNEL`` for search requests (paper passes ``-1``).
    """

    req_type: ReqType
    channel: int
    ts: Timestamp
    sender: int
    round_id: int


@dataclass(frozen=True)
class Response:
    """RESPONSE(res_type, j, ch): reply to a Request or ChangeMode.

    ``payload`` is a channel id for REJECT/GRANT (and CONDITIONAL_GRANT)
    and the sender's frozen ``Use`` set for SEARCH/STATUS.
    """

    res_type: ResType
    sender: int
    payload: Union[int, FrozenSet[int]]
    round_id: int


@dataclass(frozen=True)
class ChangeMode:
    """CHANGE_MODE(mode, j): sender j switched local (0) / borrowing (1)."""

    mode: int
    sender: int
    round_id: int


@dataclass(frozen=True)
class Acquisition:
    """ACQUISITION(acq_type, j, r): sender j acquired channel r.

    A failed search still broadcasts this with ``channel=NO_CHANNEL`` so
    that responders can decrement their ``waiting`` counters (Fig. 3,
    case 3 runs regardless of the search outcome).
    """

    acq_type: AcqType
    sender: int
    channel: int


@dataclass(frozen=True)
class Release:
    """RELEASE(j, r): sender j relinquished channel r."""

    sender: int
    channel: int


@dataclass(frozen=True)
class Solicit:
    """SOLICIT(j, need): sender j is starved and solicits donations.

    Extension used by the ``harvest`` mode policy (not in the paper):
    a borrowing-mode cell whose predictor stays below θ_l broadcasts
    its shortfall to the interference region instead of borrowing
    blind.  Purely advisory — it changes no channel state.
    """

    sender: int
    need: int


@dataclass(frozen=True)
class Donate:
    """DONATE(j, channels): sender j offers free primaries for borrowing.

    Reply to a :class:`Solicit` (harvest policy extension).  The offer
    is advisory: the solicitor still acquires any donated channel
    through the full update-round permission protocol, so donation
    adds no new safety obligations — it only steers target selection.
    """

    sender: int
    channels: Tuple[int, ...]
