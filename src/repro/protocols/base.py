"""Protocol framework: the mobile service station (MSS) base class.

Every allocation scheme is an :class:`MSS` subclass attached to one
cell.  The base class provides:

* the public call-level API used by the traffic layer —
  :meth:`request_channel` (a generator to ``yield from``) and
  :meth:`release_channel`;
* per-MSS serialization of channel acquisitions (the paper's pseudocode
  processes one ``Request_Channel`` at a time per node; concurrent call
  arrivals queue);
* message dispatch from the network to ``_on_<MessageType>`` handlers;
* timestamp generation (``(time, node_id)`` pairs — the paper's
  "timestamp of the node at the time of generating the request");
* bookkeeping hooks into the metrics collector and the global
  interference monitor.

Subclasses implement ``_request(ts) -> channel | None`` (plain function
or generator) and ``_release(channel)``.
"""

from __future__ import annotations

import inspect
from collections import deque
from typing import Any, Dict, FrozenSet, Optional, Set

from ..cellular import CellularTopology
from ..faults.arq import Ack, DedupFilter, Hardening, ReliableLink
from ..sim import Environment, Envelope, Network, Resource
from .messages import Timestamp
from .monitor import InterferenceMonitor

__all__ = ["MSS"]


class MSS:
    """Base mobile service station (one per cell).

    Parameters
    ----------
    env, network, topo:
        Simulation environment, message fabric, cellular topology.
    cell:
        This station's cell id; doubles as the network node id.
    metrics:
        Optional :class:`repro.metrics.MetricsCollector`.
    monitor:
        Optional :class:`InterferenceMonitor` for safety checking.
    """

    #: Human-readable scheme name (subclasses override).
    scheme = "abstract"

    def __init__(
        self,
        env: Environment,
        network: Network,
        topo: CellularTopology,
        cell: int,
        metrics: Any = None,
        monitor: Optional[InterferenceMonitor] = None,
        hardening: Optional[Hardening] = None,
    ) -> None:
        self.env = env
        self.network = network
        self.topo = topo
        self.cell = cell
        self.node_id = cell  # network address
        self.metrics = metrics
        self.monitor = monitor
        #: Unreliable-network hardening (see :mod:`repro.faults`): when
        #: set, every outgoing protocol message goes through a per-MSS
        #: ARQ (ack + bounded retransmission) and incoming messages are
        #: acknowledged and de-duplicated by ``Envelope.msg_id``.  None
        #: (the default, and always the case without an active fault
        #: plan) leaves the original reliable-network fast paths fully
        #: intact.
        self.hardening = hardening
        if hardening is not None:
            self._link: Optional[ReliableLink] = ReliableLink(
                env, network, cell, hardening, metrics
            )
            self._dedup: Optional[DedupFilter] = DedupFilter()
        else:
            self._link = None
            self._dedup = None
        #: True while this station is crashed (fault injection).
        self.down = False
        #: Credits for channels force-released by a crash: the calls
        #: that held them are gone, but their handles will still call
        #: :meth:`release_channel` later; each credit silently absorbs
        #: one such stale release so accounting stays balanced.
        self._crash_released = 0

        #: Channels currently in use by this cell (paper's ``Use_i``).
        self.use: Set[int] = set()
        #: Interference region ids (paper's ``IN_i``), sorted for
        #: deterministic iteration.
        self.IN = tuple(sorted(topo.IN(cell)))
        #: Primary set (paper's ``PR_i``).
        self.PR: FrozenSet[int] = topo.PR(cell)
        self.spectrum: FrozenSet[int] = topo.spectrum.all_channels

        self._lock = Resource(env, capacity=1)
        self._round_counter = 0
        self._req_seq = 0  # per-MSS request id (probe-bus span pairing)
        self._req_kind = "new"
        #: Channel-reassignment aliases: when an MSS internally moves a
        #: call from channel b to channel r (repacking), the holder of b
        #: still releases "b" — the alias redirects that to r.  A
        #: retired id can be re-borrowed by a *new* call while the old
        #: alias is outstanding, so each id maps to a FIFO of targets
        #: (the calls are physically interchangeable, any pairing works).
        self._alias: Dict[int, "deque[int]"] = {}
        #: Dispatch cache: payload type -> bound ``_on_<Type>`` handler
        #: (filled lazily; saves a name format + getattr per message).
        self._handlers: Dict[type, Any] = {}
        #: Fast-lane controller (see ``repro.harness.fastlane``); set by
        #: the harness when the scenario enables the hybrid lane, None
        #: otherwise.  Protocol handlers must never read lane state —
        #: the lane talks to the MSS, not the other way around (ANA204).
        self.fastlane: Optional[Any] = None
        network.attach(self)

    # ------------------------------------------------------------------
    # Public call-level API (used by the traffic layer)
    # ------------------------------------------------------------------
    def request_channel(
        self, kind: str = "new", setup_deadline: Optional[float] = None
    ):
        """Acquire a channel; generator returning the channel id or None.

        ``kind`` labels the request for metrics ("new" or "handoff").
        Acquisitions are serialized per MSS; the queueing delay behind
        earlier requests of the same cell is recorded separately from
        the protocol's own acquisition time.  If the protocol cannot
        even *start* within ``setup_deadline`` (the MSS is busy with
        earlier requests), the call abandons — blocked-calls-cleared
        semantics, which keeps offered load well defined at overload.
        """
        self._req_seq = req_id = self._req_seq + 1
        self.env.emit("request.begin", (self.cell, req_id, kind))
        channel = None
        try:
            channel = yield from self._request_channel(
                kind, setup_deadline, req_id
            )
        finally:
            # Fires on normal return AND on generator abandonment (the
            # traffic layer closing a half-driven request, a crashed
            # process): every opened acquisition span closes exactly once.
            self.env.emit("request.end", (self.cell, req_id, channel))
        return channel

    def _request_channel(
        self, kind: str, setup_deadline: Optional[float], req_id: int
    ):
        t_arrival = self.env.now
        if self.down:
            # Crashed station: no service (blocked-calls-cleared).
            if self.metrics is not None:
                self.metrics.record_acquisition(
                    cell=self.cell,
                    kind=kind,
                    granted=False,
                    queue_wait=0.0,
                    acquisition_time=0.0,
                    attempts=0,
                    mode="down",
                    time=t_arrival,
                )
            return None
        #: Kind of the request being served ("new"/"handoff"), readable
        #: by protocols implementing admission policies (guard channels).
        self._req_kind = kind
        lock_req = self._lock.request()
        if setup_deadline is not None and not lock_req.triggered:
            yield self.env.any_of([lock_req, self.env.timeout(setup_deadline)])
            if not lock_req.triggered:
                self._lock.cancel(lock_req)
                if self.metrics is not None:
                    self.metrics.record_acquisition(
                        cell=self.cell,
                        kind=kind,
                        granted=False,
                        queue_wait=setup_deadline,
                        acquisition_time=0.0,
                        attempts=0,
                        mode="queue_timeout",
                        time=self.env.now,
                    )
                return None
        else:
            yield lock_req
        t_start = self.env.now
        # Serving starts now: the queue wait behind earlier requests of
        # this cell is over (down-station and queue-timeout requests
        # never reach this point and never serve).
        self.env.emit("request.serve", (self.cell, req_id))
        ts: Timestamp = (t_start, self.cell)
        self._attempts = 0  # protocols update this as they retry
        try:
            outcome = self._request(ts)
            if inspect.isgenerator(outcome):
                channel = yield from outcome
            else:
                channel = outcome
        finally:
            self._lock.release()
        t_done = self.env.now

        if channel is not None and self.down:
            # The station crashed while this acquisition was in flight:
            # the grant is void.  If the grab happened before the crash,
            # the crash already force-released it; if after (a round
            # deadline resumed the generator while down), undo it here.
            if channel in self.use:
                self._drop_from_use(channel)
            else:
                self._crash_released -= 1  # crash released it; no stale handle
            channel = None
        if channel is not None:
            if channel not in self.use:
                raise AssertionError(
                    f"protocol bug: granted channel {channel} not in Use_{self.cell}"
                )
        if self.metrics is not None:
            self.metrics.record_acquisition(
                cell=self.cell,
                kind=kind,
                granted=channel is not None,
                queue_wait=t_start - t_arrival,
                acquisition_time=t_done - t_start,
                attempts=self._attempts,
                mode=getattr(self, "_grant_mode", None),
                time=t_done,
            )
        return channel

    def release_channel(self, channel: int) -> None:
        """Relinquish a channel this cell holds.

        The id is resolved through the reassignment alias map first
        (repacking may have moved the call to a different physical
        channel), and the protocol may substitute another channel to
        retire instead (e.g. free a borrowed channel and keep the
        primary for the remaining call).
        """
        aliases = self._alias.get(channel)
        if aliases:
            resolved = aliases.popleft()
            if not aliases:
                del self._alias[channel]
            channel = resolved
        if channel not in self.use:
            if self._crash_released > 0:
                # Stale handle of a call whose channel a crash already
                # force-released; consume one credit and do nothing.
                self._crash_released -= 1
                return
            raise ValueError(
                f"cell {self.cell} does not hold channel {channel}"
            )
        channel = self._repack_substitute(channel)
        self._release(channel)
        if channel in self.use:
            raise AssertionError(
                f"protocol bug: _release left channel {channel} in Use_{self.cell}"
            )
        if self.metrics is not None:
            self.metrics.record_release(self.cell, channel, self.env.now)

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Called once after all stations are attached (optional)."""

    def _request(self, ts: Timestamp):
        raise NotImplementedError

    def _release(self, channel: int) -> None:
        raise NotImplementedError

    def _repack_substitute(self, channel: int) -> int:
        """Optionally retire a different channel than the one released
        (channel reassignment).  Default: no reassignment."""
        return channel

    def fastlane_eligible(self) -> bool:
        """May this station be advanced analytically right now?

        The fast lane demotes a cell only while its protocol state is
        *quiescent*: nothing in flight, nothing deferred, no borrowed
        channels — so that an Erlang-loss fluid model is an exact
        stand-in for the discrete dynamics.  Subclasses that support
        the lane override this; the abstract default is conservative.
        """
        return False

    def fastlane_reconcile(self) -> None:
        """State-bridge hook: reconcile protocol-internal history with
        the just-materialized occupancy (called by the fast lane after
        it populates ``use`` at a promotion).  Default: nothing —
        stateless schemes need no reconciliation."""

    # -- shared helpers -----------------------------------------------------
    def _grab(self, channel: int) -> None:
        """Add a channel to Use and notify the interference monitor."""
        self.use.add(channel)
        self.env.emit("channel.acquired", (self.cell, channel))
        if self.monitor is not None:
            self.monitor.acquired(self.cell, channel, self.env.now)

    def _drop_from_use(self, channel: int) -> None:
        """Remove a channel from Use and notify the monitor."""
        self.use.discard(channel)
        self.env.emit("channel.released", (self.cell, channel))
        if self.monitor is not None:
            self.monitor.released(self.cell, channel, self.env.now)

    def _next_round(self) -> int:
        self._round_counter += 1
        return self._round_counter

    def _send(self, dst: int, payload: Any) -> None:
        if self._link is not None:
            self._link.send(dst, payload)
        else:
            self.network.send(self.cell, dst, payload)

    def _broadcast(self, payload: Any, dsts=None) -> int:
        """Send ``payload`` to every cell in ``dsts`` (default: IN_i)."""
        targets = self.IN if dsts is None else dsts
        if self._link is not None:
            count = 0
            for dst in targets:
                self._link.send(dst, payload)
                count += 1
            return count
        return self.network.multicast(self.cell, targets, payload)

    def _await_round(self, collector):
        """Wait for a response round; returns ``(responses, complete)``.

        Without hardening this is exactly ``yield collector.done`` (the
        reliable network guarantees completion — event-for-event
        identical to the historical inline wait).  With hardening the
        wait is bounded by the round deadline; on expiry the collector
        is cancelled and the partial responses are returned with
        ``complete=False`` so the protocol can resolve the round
        conservatively.
        """
        self.env.emit("round.begin", (self.cell, len(collector.outstanding)))
        if self.hardening is None:
            yield collector.done
            self.env.emit("round.end", (self.cell, True))
            return collector.responses, True
        deadline = self.env.timeout(self.hardening.round_deadline)
        yield self.env.any_of([collector.done, deadline])
        if collector.done.triggered:
            self.env.emit("round.end", (self.cell, True))
            return collector.responses, True
        collector.cancel()
        self.env.emit("fault.round_timeout", (self.cell, sorted(collector.outstanding)))
        self.env.emit("round.end", (self.cell, False))
        return collector.responses, False

    # ------------------------------------------------------------------
    # Crash / restart (driven by the fault injector)
    # ------------------------------------------------------------------
    def _crash(self, lose_state: bool) -> None:
        """Fail this station: calls drop, messages stop, state may wipe.

        Every held channel is force-released (the calls carried on it
        are gone) with a matching ``_crash_released`` credit so the
        calls' stale :meth:`release_channel` invocations are absorbed.
        Protocol-specific volatile state is handled by the
        :meth:`_crash_hook` hook.
        """
        self.down = True
        if self._link is not None:
            self._link.down = True
            self._link.flush()
        for channel in tuple(self.use):
            self._drop_from_use(channel)
            self._crash_released += 1
        self._alias.clear()
        if lose_state and self._dedup is not None:
            self._dedup.reset()
        self._crash_hook(lose_state)

    def _restart(self) -> None:
        """Bring a crashed station back; triggers :meth:`_restart_hook`
        (protocols rebuild their neighborhood view there)."""
        self.down = False
        if self._link is not None:
            self._link.down = False
        self._restart_hook()

    def _crash_hook(self, lose_state: bool) -> None:
        """Hook: clear protocol-specific volatile state (optional)."""

    def _restart_hook(self) -> None:
        """Hook: re-synchronize with the neighborhood (optional)."""

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def on_message(self, envelope: Envelope) -> None:
        """Route an incoming envelope to ``_on_<PayloadClass>``.

        Under hardening, link-layer traffic is peeled off first: ACKs
        feed the ARQ, every other message is acknowledged (even when it
        turns out to be a duplicate — the previous ACK may have been
        the lost copy) and then de-duplicated by ``msg_id`` so each
        logical message reaches its handler exactly once.
        """
        payload = envelope.payload
        if self.fastlane is not None:
            # Materialize before handling: a fluid cell (or one whose
            # fluid neighbor this message implicates) must be discrete
            # before any protocol handler observes it.
            self.fastlane.notify_message(self.cell)
        if self._link is not None:
            if type(payload) is Ack:
                self._link.on_ack(payload)
                return
            if self.down:
                return  # crashed: the radio is off
            self.network.send(self.cell, envelope.src, Ack(envelope.msg_id))
            if not self._dedup.accept(envelope.src, envelope.msg_id):
                self.env.emit(
                    "fault.duplicate_suppressed",
                    (self.cell, envelope.src, envelope.msg_id),
                )
                return
        cls = type(payload)
        try:
            handler = self._handlers[cls]
        except KeyError:
            handler = getattr(self, f"_on_{cls.__name__}", None)
            if handler is None:
                raise NotImplementedError(
                    f"{type(self).__name__} has no handler for {cls.__name__}"
                ) from None
            self._handlers[cls] = handler
        handler(payload)

    # -- debugging ----------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} cell={self.cell} use={sorted(self.use)}>"
