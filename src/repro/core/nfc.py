"""NFC — the free-primary-channel history window (paper §3.1, Fig. 6).

``NFC_i`` is a list of (t, s) samples meaning "at time t the number of
free primary channels changed to s".  It supports the two primitives of
the pseudocode:

* ``add_nfc(t, s)`` — record a sample and prune history older than the
  window ``W`` (we keep one boundary sample so the step function can
  still be evaluated exactly at ``t - W``);
* ``get_nfc(t)`` — evaluate the step function at time ``t``.

``check_mode`` uses these to linearly extrapolate the free-channel
count one round-trip (2T) into the future:

    next = s + 2·T·(s − get_nfc(t − W)) / W
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

__all__ = ["NFCWindow"]


class NFCWindow:
    """Sliding-window step-function history of free-channel counts."""

    def __init__(self, window: float, initial: int = 0) -> None:
        if window <= 0:
            raise ValueError("window W must be positive")
        self.window = float(window)
        # Samples in strictly increasing time order.
        self._samples: Deque[Tuple[float, int]] = deque()
        self._samples.append((float("-inf"), initial))

    def add(self, t: float, s: int) -> None:
        """Record that the free-channel count became ``s`` at time ``t``."""
        if s < 0:
            raise ValueError("free-channel count cannot be negative")
        samples = self._samples  # never empty: seeded with (-inf, initial)
        last_t = samples[-1][0]
        if t < last_t:
            raise ValueError(
                f"samples must be time-ordered (got {t} after {last_t})"
            )
        if last_t == t:
            # Same-instant update supersedes the previous sample.
            samples.pop()
        samples.append((t, s))
        # Prune inline (same rule as _prune; this is the hot caller).
        horizon = t - self.window
        while len(samples) >= 2 and samples[1][0] <= horizon:
            samples.popleft()
        first = samples[0]
        if first[0] < horizon:
            samples[0] = (horizon, first[1])

    def _prune(self, horizon: float) -> None:
        # Delete samples strictly older than the horizon, but keep the
        # most recent of them as the boundary value so get(horizon) is
        # still answerable (the paper's deletion rule is looser; this is
        # the exact-semantics version).
        samples = self._samples
        while len(samples) >= 2 and samples[1][0] <= horizon:
            samples.popleft()
        first = samples[0]
        if first[0] < horizon:
            samples[0] = (horizon, first[1])

    def get(self, t: float) -> int:
        """Free-channel count in effect at time ``t``.

        Times before recorded history return the oldest known value.
        """
        samples = self._samples
        # Fast paths for the two queries ``predict`` makes right after
        # ``add``: the newest sample (t >= last add) and the pruned
        # window boundary (t == now - W, which lands on samples[0]).
        newest = samples[-1]
        if newest[0] <= t:
            return newest[1]
        if len(samples) > 1 and samples[1][0] > t:
            return samples[0][1]
        result = samples[0][1]
        for when, value in samples:
            if when <= t:
                result = value
            else:
                break
        return result

    def predict(self, t: float, horizon: float) -> float:
        """Fig. 6's linear extrapolation ``horizon`` time units ahead.

        ``next = s + horizon · (s − get(t − W)) / W`` where ``s`` is the
        current value.
        """
        s = self.get(t)
        last = self.get(t - self.window)
        return s + horizon * (s - last) / self.window

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def current(self) -> int:
        return self._samples[-1][1]
