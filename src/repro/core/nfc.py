"""NFC — the free-primary-channel history window (paper §3.1, Fig. 6).

``NFC_i`` is a list of (t, s) samples meaning "at time t the number of
free primary channels changed to s".  It supports the two primitives of
the pseudocode:

* ``add_nfc(t, s)`` — record a sample and prune history older than the
  window ``W`` (we keep one boundary sample so the step function can
  still be evaluated exactly at ``t - W``);
* ``get_nfc(t)`` — evaluate the step function at time ``t``.

``check_mode`` uses these to linearly extrapolate the free-channel
count one round-trip (2T) into the future:

    next = s + 2·T·(s − get_nfc(t − W)) / W
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

__all__ = ["NFCWindow"]


class NFCWindow:
    """Sliding-window step-function history of free-channel counts."""

    def __init__(self, window: float, initial: int = 0) -> None:
        if window <= 0:
            raise ValueError("window W must be positive")
        self.window = float(window)
        # Samples in strictly increasing time order.
        self._samples: Deque[Tuple[float, int]] = deque()
        self._samples.append((float("-inf"), initial))

    def add(self, t: float, s: int) -> None:
        """Record that the free-channel count became ``s`` at time ``t``."""
        if s < 0:
            raise ValueError("free-channel count cannot be negative")
        if self._samples and t < self._samples[-1][0]:
            raise ValueError(
                f"samples must be time-ordered (got {t} after "
                f"{self._samples[-1][0]})"
            )
        if self._samples and self._samples[-1][0] == t:
            # Same-instant update supersedes the previous sample.
            self._samples.pop()
        self._samples.append((t, s))
        self._prune(t - self.window)

    def _prune(self, horizon: float) -> None:
        # Delete samples strictly older than the horizon, but keep the
        # most recent of them as the boundary value so get(horizon) is
        # still answerable (the paper's deletion rule is looser; this is
        # the exact-semantics version).
        while (
            len(self._samples) >= 2 and self._samples[1][0] <= horizon
        ):
            self._samples.popleft()
        if self._samples and self._samples[0][0] < horizon:
            value = self._samples[0][1]
            self._samples[0] = (horizon, value)

    def get(self, t: float) -> int:
        """Free-channel count in effect at time ``t``.

        Times before recorded history return the oldest known value.
        """
        result = self._samples[0][1]
        for when, value in self._samples:
            if when <= t:
                result = value
            else:
                break
        return result

    def predict(self, t: float, horizon: float) -> float:
        """Fig. 6's linear extrapolation ``horizon`` time units ahead.

        ``next = s + horizon · (s − get(t − W)) / W`` where ``s`` is the
        current value.
        """
        s = self.get(t)
        last = self.get(t - self.window)
        return s + horizon * (s - last) / self.window

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def current(self) -> int:
        return self._samples[-1][1]
