"""The paper's contribution: the adaptive hybrid allocation scheme.

Implements Figures 2–10 of Kahol, Khurana, Gupta & Srimani (1998).
Each MSS independently switches between

* **local mode** (``mode = 0``) — serve requests from the static
  primary set ``PR_i``; zero latency, and ACQUISITION/RELEASE
  notifications go only to neighbors currently borrowing
  (``UpdateS_i``), so at uniformly low load no messages flow at all;
* **borrowing mode** (``mode = 1``) — additionally borrow idle primary
  channels of interference neighbors through an update-style unanimous
  permission round (``mode = 2`` while pending), falling back after
  ``α`` failed rounds to a search-style totally-ordered acquisition
  (``mode = 3`` while pending) that is guaranteed to find a channel if
  one exists.

Mode transitions are driven by ``check_mode`` (Fig. 6): a linear
prediction of the free-primary count one round-trip ahead crosses the
low threshold ``θ_l`` (enter borrowing) or the high threshold ``θ_h``
(return to local); ``θ_l < θ_h`` gives hysteresis against flapping.
The decision rule itself is pluggable (``repro.policies``): the
default ``linear`` policy is the paper's predictor, bit-identically;
alternatives (ewma, quantile, clairvoyant oracle, harvest/trade with
SOLICIT/DONATE donation) swap in per scenario without touching this
module — see docs/POLICIES.md.

Documented deviations from the TR pseudocode (see DESIGN.md §5):

* (D1) Fig. 2's borrowing-update test reads ``r ∈ PR_i ∩ …``; taken
  literally it is dead code (own free primaries were handled two lines
  up), so we borrow from the Best() target's primary set ``PR_j``.
* (D2) ``Best()`` requires the candidate to have a *primary* channel
  free for us (``PR_j ∩ Free ≠ ∅``) rather than any channel, so the
  subsequent update round is always meaningful.
* (D3) The "wait until ``waiting_i = 0``" gate guards primary
  acquisitions in borrowing mode as well as local mode; Fig. 2 applies
  it only in local mode, but Theorem 1's case 1(c) argument needs it
  whenever a cell could grab a channel that an in-flight search might
  select.
* (D4) A node in borrowing-search mode replies *reject* (not grant) to
  an older update request for a channel it is currently using — Fig. 4
  case 3 omits the ``r ∈ Use_i`` check that safety requires.
* (D5) Responses/requests carry explicit round ids so deferred and
  stale responses are matched to the right wait (implicit in the
  paper).
* (D6) Channels granted to a neighbor but not yet confirmed acquired
  are tracked in a separate ``granted_out`` overlay instead of being
  merged into the mirrored ``U_j`` sets.  The paper merges them, but a
  STATUS/SEARCH response (which carries the *current* ``Use_j`` and
  replaces the mirror) can then erase a grant for a borrow still in
  flight, after which the granter may locally reacquire its own
  primary — a co-channel violation our interference monitor caught in
  the paper-literal variant.  The overlay is cleared by the grantee's
  RELEASE (failure) or final release (success).
* (D7) A *borrowed* channel (``r ∉ PR_i``) is always released to the
  whole interference region, even from local mode; Fig. 9's
  UpdateS-only release is kept for primaries.  Every granter recorded
  the borrow, so every granter must see the release (D6 depends on
  this; without it the paper's own ``I_j`` sets leak stale entries
  until the next full-state refresh).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Dict, Optional, Set, Tuple

from ..policies.base import make_policy
from ..protocols.base import MSS
from ..protocols.messages import (
    Acquisition,
    AcqType,
    ChangeMode,
    Donate,
    NO_CHANNEL,
    Release,
    ReqType,
    Request,
    ResType,
    Response,
    Solicit,
    Timestamp,
)
from ..sim import Collector, Gate

__all__ = ["Mode", "AdaptiveMSS"]


class _CountedSet(set):
    """A set that maintains a shared per-channel reference count.

    The adaptive node derives its interference view ``I_i`` from ~19
    mirrored sets (``U_j`` plus ``granted_out_j``); recomputing that
    union inside ``check_mode`` — which runs on *every* message — was
    the simulator's hottest path (40% of runtime, measured).  Instead,
    every mutation of a mirrored set updates the owner's channel
    refcount, so ``interfered()`` and ``free_primary_count`` become
    O(result) lookups.
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: Dict[int, int]) -> None:
        super().__init__()
        self._counts = counts

    def add(self, channel: int) -> None:
        if channel not in self:
            super().add(channel)
            self._counts[channel] = self._counts.get(channel, 0) + 1

    def discard(self, channel: int) -> None:
        if channel in self:
            super().discard(channel)
            remaining = self._counts[channel] - 1
            if remaining:
                self._counts[channel] = remaining
            else:
                del self._counts[channel]

    def replace(self, new_members) -> None:
        """Make the set equal ``new_members``, updating counts."""
        new = set(new_members)
        for channel in tuple(self - new):
            self.discard(channel)
        for channel in new - self:
            self.add(channel)

    # Guard against accidental use of bypassing mutators.
    def update(self, *args, **kwargs):  # pragma: no cover - guard
        raise NotImplementedError("use add/replace so refcounts stay exact")

    def remove(self, channel):  # pragma: no cover - guard
        raise NotImplementedError("use discard so refcounts stay exact")

    def clear(self):  # pragma: no cover - guard
        raise NotImplementedError("use replace(()) so refcounts stay exact")


class Mode(enum.IntEnum):
    """Paper §3.1: the four values of ``mode_i``."""

    LOCAL = 0
    BORROW_IDLE = 1
    BORROW_UPDATE = 2
    BORROW_SEARCH = 3

    @property
    def is_borrowing(self) -> bool:
        return self is not Mode.LOCAL


class AdaptiveMSS(MSS):
    """Adaptive distributed dynamic channel allocation (the paper's scheme).

    Parameters (beyond the :class:`MSS` base):

    alpha:
        Max borrow attempts in update mode before switching to search
        (paper's ``α``).
    theta_low, theta_high:
        Mode-transition thresholds ``θ_l < θ_h`` on the predicted
        free-primary count.
    window:
        Prediction window ``W`` of the NFC history.
    policy, policy_params:
        The mode-switching decision rule, by registry name (see
        :mod:`repro.policies`), plus its policy-specific parameters.
        The default ``"linear"`` is the paper's Fig. 6 predictor and
        is bit-identical to the pre-registry implementation.
    best_policy:
        Borrow-target selection: ``"best"`` (Fig. 10's heuristic —
        fewest borrowing neighbors in common), ``"first"`` (lowest
        eligible cell id) or ``"random"`` (uniform among eligible).
        Non-default values exist for the ablation study of the Best()
        design choice (EXPERIMENTS.md E4).
    guard_channels:
        Extension (classic handoff-priority reservation): a *new* call
        is admitted only while more than this many primaries are free;
        handoffs are exempt and keep the full adaptive machinery
        (primaries plus borrowing).  Redirecting guarded new calls to
        the borrow path instead was tried and measured worse for
        everyone — it floods the region with borrow traffic exactly
        when it is tightest.  Default 0 (the paper's algorithm).
    repack:
        Extension (channel reassignment in the spirit of Cox & Reudink
        [1], which the paper cites as prior art): when a call on an own
        *primary* channel ends while the cell also holds *borrowed*
        channels, retire a borrowed channel instead and move the
        remaining call onto the freed primary.  Borrowed channels
        return to their owners sooner, shrinking the interference
        footprint.  Off by default (the paper's algorithm); the E9
        ablation benchmark measures its effect.
    """

    scheme = "adaptive"

    def __init__(
        self,
        *args,
        alpha: int = 2,
        theta_low: float = 1.0,
        theta_high: float = 3.0,
        window: float = 30.0,
        policy: str = "linear",
        policy_params: Optional[Dict[str, object]] = None,
        best_policy: str = "best",
        repack: bool = False,
        guard_channels: int = 0,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        if theta_low > theta_high:
            raise ValueError("need theta_low <= theta_high (paper: θ_l < θ_h)")
        if window <= 0:
            raise ValueError("window W must be positive")
        if best_policy not in ("best", "first", "random"):
            raise ValueError(f"unknown best_policy {best_policy!r}")
        self.alpha = alpha
        self.theta_low = theta_low
        self.theta_high = theta_high
        self.window = window
        self.best_policy = best_policy
        self._best_rng = None  # lazily seeded for the "random" policy
        self.repack = repack
        #: Number of reassignments performed (repack diagnostics).
        self.repacks = 0
        if guard_channels < 0 or guard_channels >= len(self.PR):
            raise ValueError(
                "guard_channels must be in [0, primaries per cell)"
            )
        self.guard_channels = guard_channels
        #: Max one-way message latency (paper's T); 2T is the round trip
        #: used by the Fig. 6 prediction.
        self.T = self.network.latency.max_delay

        self.mode = Mode.LOCAL
        #: Per-channel count of mirrored entries (see _CountedSet).
        self._icount: Dict[int, int] = {}
        #: Mirrored usage of interference neighbors (paper's U_j sets).
        self.U: Dict[int, Set[int]] = {
            j: _CountedSet(self._icount) for j in self.IN
        }
        #: Channels granted to a neighbor whose borrow is still
        #: unconfirmed (deviation D6); part of the interference view.
        self.granted_out: Dict[int, Set[int]] = {
            j: _CountedSet(self._icount) for j in self.IN
        }
        #: Neighbors currently in borrowing mode (paper's UpdateS_i).
        self.UpdateS: Set[int] = set()
        #: Deferred requests: (req_type, channel, ts, sender, round_id).
        self.DeferQ: Deque[Tuple[ReqType, int, Timestamp, int, int]] = deque()
        #: Search responses sent but not yet acknowledged by ACQUISITION,
        #: keyed by searcher with the search's timestamp.  ``waiting``
        #: (the paper's counter) is its size; keeping the timestamps lets
        #: the request path prove that parking on the gate cannot close a
        #: wait-for cycle (see ``_request_loop``).
        self._owed_acks: Dict[int, Timestamp] = {}
        #: True while a local request is parked on the waiting gate.
        self.pending = False
        #: Borrow attempts of the in-flight request (paper's ``rounds``).
        self.rounds = 0

        #: The mode-switching decision rule (see ``repro.policies``).
        self.policy = make_policy(
            policy,
            policy_params,
            cell=self.cell,
            theta_low=theta_low,
            theta_high=theta_high,
            window=window,
            horizon=2 * self.T,
            initial=len(self.PR),
        )
        self._gate = Gate(self.env)
        self._req_ts: Optional[Timestamp] = None
        self._collector: Optional[Collector] = None
        self._collector_round = -1
        #: STATUS collectors keyed by CHANGE_MODE round id.  Several can
        #: be alive at once (mode flaps while responses are in flight),
        #: and each eventually completes because Fig. 5 answers every
        #: CHANGE_MODE unconditionally.
        self._status_collectors: Dict[int, Collector] = {}
        self._last_status_collector: Optional[Collector] = None
        #: Counters exposed to the metrics layer.
        self.mode_changes = 0
        self.stale_responses = 0
        #: For the §5 analytical comparison: local acquisitions and the
        #: number of borrowing neighbors notified at each (gives the
        #: measured N_borrow of Table 1).
        self.local_acquires = 0
        self.local_notify_sum = 0

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------
    def interfered(self) -> Set[int]:
        """Channels in use somewhere in IN_i per local info (paper's
        I_i), including unconfirmed outbound grants (D6)."""
        return set(self._icount)

    def free_primary_count(self) -> int:
        """``s = |PR_i − (I_i ∪ Use_i)|`` of Fig. 6."""
        use = self.use
        icount = self._icount
        count = 0
        for channel in self.PR:
            if channel not in use and channel not in icount:
                count += 1
        return count

    @property
    def waiting(self) -> int:
        """Unacknowledged search responses (paper's ``waiting_i``)."""
        return len(self._owed_acks)

    def fastlane_eligible(self) -> bool:
        """Quiescence predicate for the hybrid analytic fast lane.

        An adaptive cell may be advanced analytically only while it is
        a pure M/M/c/c loss system on its own primaries and no protocol
        interaction can implicate it without first sending it a message:

        * local mode, with no borrowing neighbors (empty ``UpdateS`` —
          otherwise acquisitions/releases must be broadcast);
        * nothing deferred, owed, parked or collecting (any of those
          means a round is in flight that will resume via local state,
          not via a message we could promote on);
        * every held channel is an own primary, and per local knowledge
          no neighbor uses one of our primaries (``use ⊆ PR`` and
          ``PR ∩ I_i = ∅``) — so ``c = |PR|`` servers are genuinely
          available to the fluid model.
        """
        if self.down or self.mode is not Mode.LOCAL:
            return False
        if self.UpdateS or self.DeferQ or self._owed_acks:
            return False
        if self.pending or self._req_ts is not None:
            return False
        if self._status_collectors or self._collector is not None:
            return False
        if not self.use <= self.PR:
            return False
        if self.PR & self.interfered():
            return False
        return True

    def fastlane_reconcile(self) -> None:
        """Re-anchor the mode policy at the current free-primary count.

        The pre-demotion samples plus the materialization jump would
        otherwise read as a crash-dive in free channels — the linear
        extrapolation then flips freshly promoted cells straight into
        borrowing mode, flooding the region with phantom borrow traffic
        (observed: a 20× drop-rate inflation at high load).  The fluid
        interval's sample history is fictional anyway; the honest
        predictor state after materialization is "flat at s"."""
        self.policy.reconcile(self.free_primary_count())

    # ------------------------------------------------------------------
    # Requesting a channel (Fig. 2)
    # ------------------------------------------------------------------
    def _request(self, ts: Timestamp):
        if self.mode in (Mode.BORROW_UPDATE, Mode.BORROW_SEARCH):
            raise AssertionError("concurrent Request_Channel on one MSS")
        self._req_ts = ts
        try:
            channel = yield from self._request_loop(ts)
        finally:
            self._req_ts = None
        return channel

    def _request_loop(self, ts: Timestamp):
        while True:
            # Sequentialization with in-flight searches we responded to
            # (Fig. 2's "wait UNTIL waiting_i = 0").  Parking is only
            # safe when every owed acknowledgment belongs to a search
            # *older* than this request — then every wait-for edge in
            # the system points to a strictly smaller timestamp and no
            # cycle can form (the paper's Theorem 2 argument).  A search
            # answered while this node was transiently in borrowing mode
            # can be *younger*; parking then would deadlock (we found
            # this empirically), so such requests take the guarded
            # update-round path below instead.
            if self.waiting > 0 and all(
                owed < ts for owed in self._owed_acks.values()
            ):
                self.pending = True
                for searcher, owed_ts in self._owed_acks.items():
                    self.env.emit(
                        "wait.block", (self.cell, searcher, "gate", owed_ts)
                    )
                while self.waiting > 0:
                    yield self._gate.wait()
                self.pending = False

            # Primary channel free?  Acquire with zero latency — unless
            # an in-flight search might be choosing it right now
            # (waiting > 0), in which case run a full permission round
            # on the primary: older searches defer us and then reject if
            # they took it; younger searches grant and record the grant,
            # excluding the channel from their later pick (D3/D6).
            free_primary = self.PR - self.use - self.interfered()
            if (
                self.guard_channels
                and self._req_kind == "new"
                and len(free_primary) <= self.guard_channels
            ):
                # Guard-channel extension: the last free primaries are
                # reserved for handoffs — the new call is blocked
                # (classic admission control).
                self._grant_mode = "guard_blocked"
                self._attempts += 1
                return None
            if free_primary:
                if self.waiting == 0:
                    channel = min(free_primary)
                    self._grant_mode = "local"
                    self._attempts += 1
                    self._acquire(channel)
                    return channel
                self.rounds += 1
                if self.rounds <= max(self.alpha, 1):
                    channel = yield from self._update_round(
                        min(free_primary), ts
                    )
                    if channel is not None:
                        return channel
                    continue
                channel = yield from self._borrow_search(ts)
                return channel

            if self.mode is Mode.LOCAL:
                # Enter borrowing mode and refresh neighborhood state
                # (Fig. 2 local else-branch: check_mode + wait for the
                # STATUS response of every neighbor, then retry).
                self._check_mode()
                if self.mode is Mode.LOCAL:
                    # Predictor refused (θ_l = 0 configurations); the
                    # request still needs neighbor state — force it.
                    self._enter_borrowing()
                yield from self._await_round(self._last_status_collector)
                continue

            # ---- borrowing mode (Fig. 2 else-branch) ----
            free = self.spectrum - self.use - self.interfered()
            target = self._best(free)
            self.rounds += 1
            if target is not None and self.rounds <= self.alpha:
                channel = yield from self._update_round(
                    min(self.topo.PR(target) & free), ts
                )
                if channel is not None:
                    return channel
                continue  # rejected: retry (Fig. 2 recursion, same ts)

            channel = yield from self._borrow_search(ts)
            return channel  # search is terminal: channel or dropped call

    def _update_round(self, channel: int, ts: Timestamp):
        """One update-style permission round (mode 2) for ``channel``.

        Used both to borrow a Best()-target's primary and to guard the
        acquisition of an own primary while searches are in flight.
        Returns the channel on unanimous grant, else None.
        """
        prev_mode = self.mode
        self.mode = Mode.BORROW_UPDATE
        self._grant_mode = "update"
        self._attempts += 1
        round_id = self._next_round()
        self._collector = Collector(self.env, self.IN)
        self._collector_round = round_id
        self._broadcast(Request(ReqType.UPDATE, channel, ts, self.cell, round_id))
        verdicts, complete = yield from self._await_round(self._collector)
        self._collector = None

        if complete and all(v is ResType.GRANT for v in verdicts.values()):
            self._acquire(channel)  # mode 2 → BORROW_IDLE, drains DeferQ
            if prev_mode is Mode.LOCAL:
                # A guarded own-primary round from local mode is
                # invisible to the neighbors (no CHANGE_MODE was sent),
                # so restore and let the predictor decide.
                self.mode = Mode.LOCAL
                self._check_mode()
            return channel
        # Failure: revert mode and release the granters (Fig. 2).
        self.mode = prev_mode
        if complete:
            for j in sorted(verdicts):
                if verdicts[j] is ResType.GRANT:
                    self._send(j, Release(self.cell, channel))
        else:
            # Round deadline expired: a missing verdict is treated as a
            # rejection (safe — we never acquire), but it may be a GRANT
            # still in flight or already recorded at the responder, so
            # release to *all* of IN.  RELEASE is idempotent and a no-op
            # at anyone who never granted, and it clears both the U
            # mirror entry and the D6 granted_out overlay at granters.
            self._broadcast(Release(self.cell, channel))
        return None

    def _borrow_search(self, ts: Timestamp):
        """One borrowing-search round (mode 3): guaranteed to find a
        channel if one exists in the region (paper §3.5)."""
        self.mode = Mode.BORROW_SEARCH
        self._grant_mode = "search"
        self._attempts += 1
        round_id = self._next_round()
        self._collector = Collector(self.env, self.IN)
        self._collector_round = round_id
        self.env.emit("search.begin", (self.cell, ts))
        self._broadcast(
            Request(ReqType.SEARCH, NO_CHANNEL, ts, self.cell, round_id)
        )
        _responses, complete = yield from self._await_round(self._collector)
        self._collector = None

        if not complete:
            # Some neighbor never answered (lost beyond the retry
            # budget, partitioned, or crashed): the interference view is
            # stale, so picking any channel could collide — abandon.
            # The ACQUISITION(NO_CHANNEL) broadcast below still goes out
            # so every responder's ``waiting`` counter is decremented.
            self._acquire(None)
            return None

        # Each SEARCH response refreshed the corresponding U_j mirror,
        # so the interference view is now a consistent snapshot of the
        # whole region (plus unconfirmed grants, D6).
        free = self.spectrum - self.use - self.interfered()
        channel = min(free) if free else None
        self._acquire(channel)  # None → ACQUISITION(-1): unblocks waiters
        return channel

    # ------------------------------------------------------------------
    # acquire(r) (Fig. 3)
    # ------------------------------------------------------------------
    def _acquire(self, channel: Optional[int]) -> None:
        if channel is not None:
            self._grab(channel)
        self.rounds = 0

        if self.mode in (Mode.LOCAL, Mode.BORROW_IDLE):
            self.local_acquires += 1
            self.local_notify_sum += len(self.UpdateS)
            if self.UpdateS:
                self._broadcast(
                    Acquisition(AcqType.NON_SEARCH, self.cell, channel),
                    dsts=sorted(self.UpdateS),
                )
        elif self.mode is Mode.BORROW_UPDATE:
            # Granters already recorded the channel when they granted.
            self.mode = Mode.BORROW_IDLE
        else:  # BORROW_SEARCH — notify everyone, even on failure, so
            # their ``waiting`` counters are decremented (Fig. 3 case 3).
            wire_channel = channel if channel is not None else NO_CHANNEL
            self._broadcast(Acquisition(AcqType.SEARCH, self.cell, wire_channel))
            # The ACQUISITION broadcast is now in flight: from here on,
            # nobody is *blocked* on this search any more.
            self.env.emit("search.end", self.cell)
            self.mode = Mode.BORROW_IDLE

        self._drain_deferq()
        if self.mode is Mode.LOCAL:
            self._check_mode()

    def _drain_deferq(self) -> None:
        """Answer every deferred request (tail of Fig. 3)."""
        while self.DeferQ:
            req_type, q, _ts, j, rid = self.DeferQ.popleft()
            self.env.emit("wait.unblock", (j, self.cell))
            if req_type is ReqType.UPDATE:
                if q in self.use:
                    self._send(j, Response(ResType.REJECT, self.cell, q, rid))
                else:
                    self._send(j, Response(ResType.GRANT, self.cell, q, rid))
                    self.granted_out[j].add(q)
                    self.env.emit(
                        "mirror.update", (self.cell, j, "granted_out", "add", q)
                    )
            else:
                self._respond_search(j, _ts, rid)

    # ------------------------------------------------------------------
    # Deallocate (Fig. 9)
    # ------------------------------------------------------------------
    def _repack_substitute(self, channel: int) -> int:
        """Channel reassignment (the ``repack`` extension): when an own
        primary frees while borrowed channels are held, retire a
        borrowed channel instead — the remaining call is reassigned to
        the primary, handing the borrowed channel back to its owners."""
        if not self.repack or channel not in self.PR:
            return channel
        borrowed = self.use - self.PR
        if not borrowed:
            return channel
        retired = max(borrowed)  # prefer retiring the highest borrowed id
        self._alias.setdefault(retired, deque()).append(channel)
        self.repacks += 1
        return retired

    def _release(self, channel: int) -> None:
        self._drop_from_use(channel)
        if self.mode is Mode.LOCAL and channel in self.PR:
            # Primary release in local mode: only borrowing neighbors
            # track our state (Fig. 9).
            if self.UpdateS:
                self._broadcast(
                    Release(self.cell, channel), dsts=sorted(self.UpdateS)
                )
        else:
            # Borrowed channels always go to the whole region (D7).
            self._broadcast(Release(self.cell, channel))
        self._check_mode()

    # ------------------------------------------------------------------
    # check_mode (Fig. 6)
    # ------------------------------------------------------------------
    def _check_mode(self) -> None:
        s = self.free_primary_count()
        t = self.env._now
        policy = self.policy
        target = policy.decide(t, s, self.mode.is_borrowing)
        self.env.emit("policy.decide", (self.cell, t, s, target))
        if target is True:
            if self.mode is Mode.LOCAL:
                self._enter_borrowing()
        elif target is False:
            if self.mode is Mode.BORROW_IDLE:
                self._exit_borrowing()
        # Modes 2 and 3 never transition here (a request is in flight).
        need = policy.solicit_need(t, s, self.mode.is_borrowing)
        if need:
            # Harvest extension: broadcast the shortfall so unloaded
            # neighbors can volunteer channels (advisory; see Donate).
            self.env.emit("policy.solicit", (self.cell, need))
            self._broadcast(Solicit(self.cell, need))

    def _enter_borrowing(self) -> None:
        if self.fastlane is not None:
            # A fluid cell can reach here through a residual call's
            # release (the predictor crossing θ_l): materialize before
            # the mode change so the CHANGE_MODE broadcast and all
            # subsequent borrowing traffic see discrete state.
            # Materialization re-runs check_mode, which may complete the
            # borrowing entry itself — bail instead of broadcasting twice.
            self.fastlane.notify_borrow(self.cell)
            if self.mode is not Mode.LOCAL:
                return
        self.mode = Mode.BORROW_IDLE
        self.mode_changes += 1
        self.env.emit(
            "mode.change", (self.cell, int(Mode.LOCAL), int(Mode.BORROW_IDLE))
        )
        round_id = self._next_round()
        # Every CHANGE_MODE(1) broadcast registers a STATUS collector so
        # a Fig. 2 local-mode request can wait for the refreshed state.
        collector = Collector(self.env, self.IN)
        self._status_collectors[round_id] = collector
        collector.done.callbacks.append(
            lambda _ev, rid=round_id: self._status_collectors.pop(rid, None)
        )
        self._last_status_collector = collector
        self._broadcast(ChangeMode(1, self.cell, round_id))

    def _exit_borrowing(self) -> None:
        self.mode = Mode.LOCAL
        self.mode_changes += 1
        self.env.emit(
            "mode.change", (self.cell, int(Mode.BORROW_IDLE), int(Mode.LOCAL))
        )
        round_id = self._next_round()
        self._broadcast(ChangeMode(0, self.cell, round_id))

    # ------------------------------------------------------------------
    # Best() (Fig. 10)
    # ------------------------------------------------------------------
    def _best(self, free: Set[int]) -> Optional[int]:
        """Neighbor to borrow from: not itself borrowing and with a
        primary channel free for us; among those, the Fig. 10 heuristic
        picks the one with the fewest borrowing cells in common (fewest
        potential collisions), deterministic tie-break by cell id.
        Alternative policies exist for the E4 ablation."""
        eligible = [
            j for j in self.IN  # sorted at construction
            if j not in self.UpdateS and (self.topo.PR(j) & free)
        ]
        if not eligible:
            return None
        # Harvest extension: a neighbor that recently volunteered a
        # still-free channel beats the heuristics below (no-op for
        # policies without a donation book).
        donor = self.policy.preferred_donor(self.env._now, eligible, free)
        if donor is not None:
            return donor
        if self.best_policy == "first":
            return eligible[0]
        if self.best_policy == "random":
            if self._best_rng is None:
                import numpy as np

                self._best_rng = np.random.default_rng(10_000 + self.cell)
            return int(eligible[self._best_rng.integers(0, len(eligible))])
        best_id: Optional[int] = None
        best_bn = float("inf")
        for j in eligible:
            common_bn = len(self.UpdateS & set(self.topo.IN(j)))
            if common_bn < best_bn:
                best_id = j
                best_bn = common_bn
        return best_id

    # ------------------------------------------------------------------
    # Message handlers (Figs. 4, 5, 7, 8)
    # ------------------------------------------------------------------
    def _on_Request(self, msg: Request) -> None:
        if msg.req_type is ReqType.UPDATE:
            self._handle_update_request(msg)
        else:
            self._handle_search_request(msg)

    def _handle_update_request(self, msg: Request) -> None:
        self.env.emit("proto.request", (self.cell, msg.sender, msg.round_id))
        r, sender, rid = msg.channel, msg.sender, msg.round_id
        if self.mode in (Mode.LOCAL, Mode.BORROW_IDLE):
            if r in self.use:
                self._send(sender, Response(ResType.REJECT, self.cell, r, rid))
            else:
                self._grant_update(r, sender, rid)
        elif self.mode is Mode.BORROW_UPDATE:
            # Reject if we use r or our own pending request is older.
            if r in self.use or self._req_ts < msg.ts:
                self._send(sender, Response(ResType.REJECT, self.cell, r, rid))
            else:
                self._grant_update(r, sender, rid)
        else:  # BORROW_SEARCH
            if self._req_ts < msg.ts:
                # Our search is older: defer them until we acquired.
                self.DeferQ.append((ReqType.UPDATE, r, msg.ts, sender, rid))
                self.env.emit("wait.block", (sender, self.cell, "defer", msg.ts))
            elif r in self.use:  # deviation D4: safety check
                self._send(sender, Response(ResType.REJECT, self.cell, r, rid))
            else:
                self._grant_update(r, sender, rid)

    def _grant_update(self, r: int, sender: int, rid: int) -> None:
        self._send(sender, Response(ResType.GRANT, self.cell, r, rid))
        self.granted_out[sender].add(r)
        self.env.emit(
            "mirror.update", (self.cell, sender, "granted_out", "add", r)
        )
        self._check_mode()

    def _handle_search_request(self, msg: Request) -> None:
        self.env.emit("proto.request", (self.cell, msg.sender, msg.round_id))
        sender, rid = msg.sender, msg.round_id
        # Defer a *younger* search while we have an older claim of our
        # own in flight — ANY in-flight request, regardless of mode.
        # The paper keys deferral on modes 0 (parked) / 2 / 3, but a
        # request can also be in flight while the node shows mode 1:
        # parked on the gate after check_mode flapped it, waiting for
        # STATUS responses in the Fig. 2 local-else branch, or between
        # borrow rounds.  Answering a younger search in those windows
        # broke both liveness (a parked node's owed-ack set grew
        # younger → wait-for cycle → observed deadlock) and safety (two
        # status-waiting nodes answered each other, then searched
        # concurrently and picked the same channel → observed co-channel
        # violation).  Keying on the request timestamp alone restores
        # the strictly-decreasing wait-for order of Theorem 2 and the
        # search sequentialization of Theorem 1 case 1(a).
        has_older_claim = self._req_ts is not None and self._req_ts < msg.ts
        if has_older_claim:
            self.DeferQ.append(
                (ReqType.SEARCH, msg.channel, msg.ts, sender, rid)
            )
            self.env.emit("wait.block", (sender, self.cell, "defer", msg.ts))
        else:
            self._respond_search(sender, msg.ts, rid)

    def _respond_search(self, sender: int, ts: Timestamp, rid: int) -> None:
        if sender in self._owed_acks:
            if self.hardening is None:
                raise AssertionError(
                    f"cell {self.cell}: second search response to {sender} "
                    f"before its ACQUISITION"
                )
            # The sender's previous search concluded but its ACQUISITION
            # to us was lost beyond the retry budget; a *new* search
            # from the same sender implicitly acknowledges the old one.
            self.env.emit("wait.unblock", (self.cell, sender))
            del self._owed_acks[sender]
        self._owed_acks[sender] = ts
        if self.pending:
            # Our own request is parked on the gate; this new owed ack
            # extends the park, so it is a live wait-for edge.
            self.env.emit("wait.block", (self.cell, sender, "gate", ts))
        if self.hardening is not None:
            # Backstop for a terminally lost ACQUISITION: clear the owed
            # entry after ack_timeout (sized so the search has certainly
            # ended by then) rather than blocking this node's own
            # requests forever.  Safe for Theorem 1 case 1(c): by expiry
            # the searcher's pick is long since made (or abandoned), so
            # sequentializing against it is moot.
            timer = self.env.timeout(self.hardening.ack_timeout, (sender, ts))
            timer.callbacks.append(self._owed_ack_expire)
        self._send(
            sender, Response(ResType.SEARCH, self.cell, frozenset(self.use), rid)
        )

    def _owed_ack_expire(self, event) -> None:
        sender, ts = event._value
        if self._owed_acks.get(sender) != ts:
            return  # acknowledged (or superseded) in time
        del self._owed_acks[sender]
        self.stale_responses += 1
        self.env.emit("fault.ack_timeout", (self.cell, sender))
        self.env.emit("wait.unblock", (self.cell, sender))
        if not self._owed_acks:
            self._gate.pulse()

    def _on_Response(self, msg: Response) -> None:
        if msg.res_type is ResType.STATUS:
            # Full-state refresh: replace (not merge) the mirrored set —
            # this also heals any stale entries (see DESIGN.md §5 note 6).
            self.U[msg.sender].replace(msg.payload)
            self.env.emit(
                "mirror.update", (self.cell, msg.sender, "U", "replace", None)
            )
            collector = self._status_collectors.get(msg.round_id)
            if collector is not None and msg.sender in collector.outstanding:
                collector.deliver(msg.sender, msg.payload)
            else:
                self.stale_responses += 1
            self._check_mode()
            return

        if (
            self._collector is not None
            and msg.round_id == self._collector_round
            and msg.sender in self._collector.outstanding
        ):
            if msg.res_type is ResType.SEARCH:
                # Search responses carry the responder's full Use set:
                # replace our mirror, then hand it to the waiting round.
                self.U[msg.sender].replace(msg.payload)
                self.env.emit(
                    "mirror.update", (self.cell, msg.sender, "U", "replace", None)
                )
                self._collector.deliver(msg.sender, frozenset(msg.payload))
            else:
                self._collector.deliver(msg.sender, msg.res_type)
        else:
            self.stale_responses += 1

    def _on_ChangeMode(self, msg: ChangeMode) -> None:
        self.env.emit("proto.request", (self.cell, msg.sender, msg.round_id))
        if msg.mode == 0:
            self.UpdateS.discard(msg.sender)
        else:
            self.UpdateS.add(msg.sender)
        # Fig. 5 answers every CHANGE_MODE with a STATUS response.
        self._send(
            msg.sender,
            Response(ResType.STATUS, self.cell, frozenset(self.use), msg.round_id),
        )

    def _on_Acquisition(self, msg: Acquisition) -> None:
        if msg.channel != NO_CHANNEL:
            self.U[msg.sender].add(msg.channel)
            self.env.emit(
                "mirror.update", (self.cell, msg.sender, "U", "add", msg.channel)
            )
            self.granted_out[msg.sender].discard(msg.channel)
            self.env.emit(
                "mirror.update",
                (self.cell, msg.sender, "granted_out", "discard", msg.channel),
            )
        self._check_mode()
        if msg.acq_type is AcqType.SEARCH:
            if msg.sender not in self._owed_acks:
                if self.hardening is not None:
                    # The owed entry was already cleared — by the
                    # ack-timeout backstop, a crash wipe, or a newer
                    # search from the same sender.  Late but harmless.
                    self.stale_responses += 1
                    return
                raise AssertionError(
                    f"cell {self.cell}: search ACQUISITION from {msg.sender} "
                    f"without an owed response"
                )
            del self._owed_acks[msg.sender]
            self.env.emit("wait.unblock", (self.cell, msg.sender))
            if not self._owed_acks:
                self._gate.pulse()

    def _on_Release(self, msg: Release) -> None:
        self.U[msg.sender].discard(msg.channel)
        self.env.emit(
            "mirror.update", (self.cell, msg.sender, "U", "discard", msg.channel)
        )
        self.granted_out[msg.sender].discard(msg.channel)
        self.env.emit(
            "mirror.update",
            (self.cell, msg.sender, "granted_out", "discard", msg.channel),
        )
        self._check_mode()

    # ------------------------------------------------------------------
    # Harvest extension: SOLICIT / DONATE (repro.policies.harvest)
    # ------------------------------------------------------------------
    def _on_Solicit(self, msg: Solicit) -> None:
        # Offer free primaries per local knowledge only; the donation
        # is advisory, so an offer raced by a concurrent acquisition is
        # merely useless, never unsafe (the permission round decides).
        free = sorted(self.PR - self.use - self.interfered())
        count = self.policy.consider_solicit(
            self.env._now, msg.need, len(free), self.mode.is_borrowing
        )
        if count > 0:
            channels = tuple(free[:count])
            self.env.emit("policy.donate", (self.cell, msg.sender, channels))
            self._send(msg.sender, Donate(self.cell, channels))

    def _on_Donate(self, msg: Donate) -> None:
        self.policy.record_donation(
            self.env._now, msg.sender, tuple(msg.channels)
        )

    # ------------------------------------------------------------------
    # Crash / restart (fault injection)
    # ------------------------------------------------------------------
    def _crash_hook(self, lose_state: bool) -> None:
        # Any in-flight round is void: its collector will never complete
        # (the network drops our deliveries while down), and the parked
        # request generator resolves through its hardened round deadline.
        if self._collector is not None:
            self._collector.cancel()
        for collector in self._status_collectors.values():
            collector.cancel()
        self._status_collectors.clear()
        # Deferred requesters must not wait on a dead station; dropping
        # the entries (with the matching wait-graph edge removals) lets
        # their own round deadlines resolve them.
        while self.DeferQ:
            _req_type, _q, _ts, j, _rid = self.DeferQ.popleft()
            self.env.emit("wait.unblock", (j, self.cell))
        if lose_state:
            # Cold restart: every volatile structure is gone.  The U /
            # granted_out mirrors are rebuilt by the restart re-sync;
            # owed acknowledgements are dropped (their searchers' own
            # protection is the ack-timeout backstop on their side).
            for j in self.IN:
                self.U[j].replace(())
                self.env.emit("mirror.update", (self.cell, j, "U", "replace", None))
                self.granted_out[j].replace(())
                self.env.emit(
                    "mirror.update", (self.cell, j, "granted_out", "replace", None)
                )
            self.UpdateS.clear()
            for sender in tuple(self._owed_acks):
                del self._owed_acks[sender]
                self.env.emit("wait.unblock", (self.cell, sender))
            self._gate.pulse()
            self.policy.reset(len(self.PR))

    def _restart_hook(self) -> None:
        # Neighborhood re-sync: Fig. 5 answers *every* CHANGE_MODE with
        # a STATUS response carrying the responder's current Use set, so
        # a mode-0 broadcast (which also clears any stale membership of
        # this cell in the neighbors' UpdateS sets) rebuilds all U_j
        # mirrors without claiming to be borrowing.
        self.mode = Mode.LOCAL
        round_id = self._next_round()
        collector = Collector(self.env, self.IN)
        self._status_collectors[round_id] = collector
        collector.done.callbacks.append(
            lambda _ev, rid=round_id: self._status_collectors.pop(rid, None)
        )
        self._last_status_collector = collector
        self._broadcast(ChangeMode(0, self.cell, round_id))
