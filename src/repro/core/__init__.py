"""The paper's primary contribution: the adaptive hybrid scheme."""

from .adaptive import AdaptiveMSS, Mode
from .nfc import NFCWindow

__all__ = ["AdaptiveMSS", "Mode", "NFCWindow"]
