"""Pluggable mode policies for the adaptive scheme.

The decision rule behind ``check_mode`` (Fig. 6) — *when should a cell
enter or leave borrowing mode?* — is a :class:`ModePolicy` selected
per scenario (``Scenario.policy``, CLI ``--policy``).  The registry
ships five entries:

* ``linear`` — the paper's NFC linear extrapolation (the default;
  bit-identical to the pre-registry simulator);
* ``ewma`` — exponentially weighted level + trend extrapolation;
* ``quantile`` — rank statistic over the sample window;
* ``oracle`` — clairvoyant replay of a recorded load trace (the
  regret yardstick, see :mod:`repro.policies.compare`);
* ``harvest`` — linear predictor plus a SOLICIT/DONATE donation
  market steering borrow-target selection.

A new controller is a one-file drop-in: subclass :class:`ModePolicy`,
decorate with :func:`register_policy`, and every harness entry point
(sweeps, cache, snapshots, CLI, bench) picks it up by name.

See docs/POLICIES.md for the handbook: rule semantics, tuning
workflow, oracle-trace recording and the regret metric.
"""

# Import order matters: `base` must be fully loaded before the policy
# modules, because importing any of them pulls in repro.core, whose
# adaptive scheme imports `make_policy` back out of `base`.
from .base import (
    ModePolicy,
    make_policy,
    policy_names,
    policy_spec,
    register_policy,
)
from .linear import LinearPolicy
from .ewma import EwmaPolicy
from .quantile import QuantilePolicy
from .oracle import OraclePolicy
from .harvest import HarvestPolicy
from .compare import PolicyComparison, compare_policies, record_trace

__all__ = [
    "ModePolicy",
    "register_policy",
    "make_policy",
    "policy_spec",
    "policy_names",
    "LinearPolicy",
    "EwmaPolicy",
    "QuantilePolicy",
    "OraclePolicy",
    "HarvestPolicy",
    "record_trace",
    "compare_policies",
    "PolicyComparison",
]
