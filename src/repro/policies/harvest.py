"""Harvest/trade policy: overloaded cells solicit donations.

``harvest`` keeps the paper's linear predictor for mode switching but
adds a donation market on top (cf. the priority/trade borrowing
variants in arXiv:1810.02539): a cell that stays starved while
borrowing broadcasts a ``SOLICIT(need)`` to its interference
neighbors; an unloaded neighbor answers with ``DONATE(channels)``
naming free primaries it can spare, and the solicitor then *prefers*
donors over the Fig. 10 Best() heuristic when picking a borrow target.

Donations are strictly advisory.  A donated channel is still acquired
through the full update-round permission protocol, so the paper's
safety argument is untouched — the donation book only steers *which*
neighbor the round targets, replacing blind selection with targets
that declared spare capacity moments ago.  Solicitations are
rate-limited (one per ``W``) and donations expire after ``W`` so the
book never acts on stale generosity.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Dict, Iterable, Optional, Set, Tuple

from ..core.nfc import NFCWindow
from .base import ModePolicy, register_policy

__all__ = ["HarvestPolicy"]


@register_policy
class HarvestPolicy(ModePolicy):
    """Linear predictor + SOLICIT/DONATE donation book."""

    name = "harvest"
    #: Donation state references peer interactions the fluid model
    #: never simulates; honestly incompatible with the fast lane.
    fastlane_safe = False

    def __init__(self, **context: Any) -> None:
        super().__init__(**context)
        self.nfc = NFCWindow(self.window, initial=self.initial)
        #: Last solicitation instant (rate limit: one per window W).
        self.last_solicit: Optional[float] = None
        #: donor -> (t, channels) of the freshest donation received.
        self.book: Dict[int, Tuple[float, Tuple[int, ...]]] = {}

    # -- mode decision: the paper's linear rule ------------------------------
    def decide(self, t: float, s: int, borrowing: bool) -> Optional[bool]:
        nfc = self.nfc
        nfc.add(t, s)
        predicted = nfc.predict(t, self.horizon)
        if not borrowing and predicted < self.theta_low:
            return True
        if borrowing and predicted >= self.theta_high:
            return False
        return None

    def predict_at(self, t: float) -> Optional[float]:
        return self.nfc.predict(t, self.horizon)

    # -- the donation market -------------------------------------------------
    def solicit_need(self, t: float, s: int, borrowing: bool) -> Optional[int]:
        if not borrowing:
            return None
        if self.last_solicit is not None and t - self.last_solicit < self.window:
            return None
        predicted = self.nfc.predict(t, self.horizon)
        if predicted >= self.theta_low:
            return None
        need = max(1, int(math.ceil(self.theta_high - predicted)))
        self.last_solicit = t
        return need

    def consider_solicit(
        self, t: float, need: int, surplus: int, borrowing: bool
    ) -> int:
        if borrowing:
            return 0  # a starved cell donates nothing
        # Keep θ_h free primaries for ourselves; offer the rest.
        spare = surplus - int(math.ceil(self.theta_high))
        return max(0, min(need, spare))

    def record_donation(
        self, t: float, donor: int, channels: Tuple[int, ...]
    ) -> None:
        self.book[donor] = (t, tuple(channels))

    def preferred_donor(
        self, t: float, eligible: Iterable[int], free: Set[int]
    ) -> Optional[int]:
        best: Optional[int] = None
        best_t = -math.inf
        for j in eligible:
            entry = self.book.get(j)
            if entry is None:
                continue
            when, channels = entry
            if t - when > self.window:
                del self.book[j]  # expired generosity
                continue
            if not free.intersection(channels):
                continue
            if when > best_t:  # freshest donation wins; eligible order breaks ties
                best = j
                best_t = when
        return best

    # -- lifecycle / snapshot ------------------------------------------------
    def reset(self, initial: int) -> None:
        self.nfc = NFCWindow(self.window, initial=initial)
        self.last_solicit = None
        self.book.clear()

    def state_dict(self) -> Dict[str, Any]:
        return {
            "samples": [list(sample) for sample in self.nfc._samples],
            "last_solicit": self.last_solicit,
            "book": {
                donor: [when, list(channels)]
                for donor, (when, channels) in sorted(self.book.items())
            },
        }

    def load_state(self, data: Dict[str, Any]) -> None:
        self.nfc._samples = deque(
            (float(t), int(s)) for t, s in data["samples"]
        )
        self.last_solicit = (
            None if data["last_solicit"] is None else float(data["last_solicit"])
        )
        self.book = {
            int(donor): (float(when), tuple(int(c) for c in channels))
            for donor, (when, channels) in data["book"].items()
        }
