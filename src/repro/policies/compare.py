"""Oracle-trace recording and policy comparison with regret metrics.

The workflow (see docs/POLICIES.md for the handbook version):

1. :func:`record_trace` runs a scenario once, subscribing to the
   ``policy.decide`` probe stream, and compacts each cell's
   free-primary samples into a step-function trace.
2. The trace parameterizes the clairvoyant ``oracle`` policy
   (``policy_params={"trace": ...}``), which replays it with perfect
   lookahead — the performance ceiling for the traced workload.
3. :func:`compare_policies` runs every requested policy (plus the
   oracle) on the same scenario/seeds through the parallel engine and
   result cache, and writes **regret-vs-oracle** — the drop rate a
   policy leaves on the table relative to the oracle — into each
   report's ``regret_vs_oracle`` field.  The oracle's own regret is 0
   by construction; a *negative* regret for another policy means the
   traced run's workload realization favored it (possible on short
   horizons — regret is an estimate, not a bound, on finite runs).

Imports of the harness are function-local: the harness imports the
core scheme, which imports this package, so a module-level import
would be circular.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .base import policy_names

__all__ = ["record_trace", "compare_policies", "PolicyComparison"]


def record_trace(scenario: Any) -> Dict[int, List[List[float]]]:
    """Per-cell free-primary step function of one run of ``scenario``.

    Returns ``{cell: [[t, s], ...]}`` with strictly increasing ``t``
    per cell and consecutive duplicate values collapsed — the exact
    shape the ``oracle`` policy's ``trace`` parameter takes (and what
    ``--record-policy-trace`` writes as JSON).  The run itself is a
    plain simulation of ``scenario`` under its configured policy
    (record from ``policy="linear"`` to get the paper-baseline trace).
    """
    from ..harness.runner import build_simulation

    sim = build_simulation(scenario)
    trace: Dict[int, List[List[float]]] = {}

    def on_decide(now: float, payload: Any) -> None:
        cell, t, s = payload[0], payload[1], payload[2]
        series = trace.setdefault(cell, [])
        if series:
            if series[-1][0] == t:
                series[-1][1] = s  # same-instant update supersedes
                return
            if series[-1][1] == s:
                return  # step function: only record changes
        series.append([t, s])

    sim.env.subscribe("policy.decide", on_decide)
    sim.run()
    return trace


@dataclass
class PolicyComparison:
    """Tidy per-(policy, seed) rows of a policy comparison."""

    policies: List[str]
    seeds: List[int]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    #: (policy, seed) -> Report, each with ``regret_vs_oracle`` set.
    reports: Dict[Tuple[str, int], Any] = field(default_factory=dict)

    def regret(self, policy: str) -> float:
        """Mean regret-vs-oracle of ``policy`` across seeds."""
        values = [
            row["regret_vs_oracle"]
            for row in self.rows
            if row["policy"] == policy
        ]
        if not values:
            raise KeyError(f"no rows for policy {policy!r}")
        return sum(values) / len(values)


def compare_policies(
    base: Any,
    policies: Optional[Sequence[str]] = None,
    seeds: Optional[Sequence[int]] = None,
    workers: Optional[int] = 1,
    cache: Any = None,
) -> PolicyComparison:
    """Run every policy on ``base``'s workload and compute regrets.

    For each seed, a ``linear`` run of ``base`` is traced first
    (:func:`record_trace`, never cached — the trace is an input, not a
    result); the oracle replays that trace, and every (policy, seed)
    cell then runs through :func:`repro.harness.parallel.run_cells`
    with the usual result-cache semantics.  The oracle is always
    included — it is the regret yardstick.
    """
    from ..harness.parallel import run_cells

    if base.scheme != "adaptive":
        raise ValueError(
            f"compare_policies needs scheme 'adaptive', not {base.scheme!r}"
        )
    names = list(policies) if policies is not None else policy_names()
    if "oracle" not in names:
        names.append("oracle")
    seed_list = list(seeds) if seeds is not None else [base.seed]

    cells: List[Any] = []
    labels: List[Tuple[str, int]] = []
    for seed in seed_list:
        trace = record_trace(
            base.with_(seed=seed, policy="linear", policy_params={})
        )
        for name in names:
            params: Dict[str, Any] = {"trace": trace} if name == "oracle" else {}
            cells.append(base.with_(seed=seed, policy=name, policy_params=params))
            labels.append((name, seed))
    reports = run_cells(cells, workers=workers, cache=cache)

    result = PolicyComparison(policies=names, seeds=seed_list)
    by_label = dict(zip(labels, reports))
    for seed in seed_list:
        oracle_drop = by_label[("oracle", seed)].drop_rate
        for name in names:
            report = by_label[(name, seed)]
            report.regret_vs_oracle = report.drop_rate - oracle_drop
            result.reports[(name, seed)] = report
            result.rows.append({
                "policy": name,
                "seed": seed,
                "drop_rate": report.drop_rate,
                "regret_vs_oracle": report.regret_vs_oracle,
                "mean_acquisition_time": report.mean_acquisition_time,
                "messages_per_acquisition": report.messages_per_acquisition,
                "mode_changes": report.mode_changes,
                "violations": report.violations,
            })
    return result
