"""The paper's linear predictor as a :class:`ModePolicy` (the default).

This is the exact Fig. 6 rule that used to live inline in
``AdaptiveMSS._check_mode``: record the sample in the sliding
:class:`~repro.core.nfc.NFCWindow`, linearly extrapolate the
free-primary count one round-trip (``horizon = 2T``) ahead, enter
borrowing below θ_l, leave at or above θ_h.  Scenarios with
``policy="linear"`` are bit-identical to the pre-registry simulator.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Optional

from ..core.nfc import NFCWindow
from .base import ModePolicy, register_policy

__all__ = ["LinearPolicy"]


@register_policy
class LinearPolicy(ModePolicy):
    """Fig. 6: threshold test on the NFC linear extrapolation."""

    name = "linear"
    fastlane_safe = True

    def __init__(self, **context: Any) -> None:
        super().__init__(**context)
        self.nfc = NFCWindow(self.window, initial=self.initial)

    def decide(self, t: float, s: int, borrowing: bool) -> Optional[bool]:
        nfc = self.nfc
        nfc.add(t, s)
        predicted = nfc.predict(t, self.horizon)
        if not borrowing and predicted < self.theta_low:
            return True
        if borrowing and predicted >= self.theta_high:
            return False
        return None

    def predict_at(self, t: float) -> Optional[float]:
        return self.nfc.predict(t, self.horizon)

    def reset(self, initial: int) -> None:
        self.nfc = NFCWindow(self.window, initial=initial)

    def state_dict(self) -> Dict[str, Any]:
        return {"samples": [list(sample) for sample in self.nfc._samples]}

    def load_state(self, data: Dict[str, Any]) -> None:
        self.nfc._samples = deque(
            (float(t), int(s)) for t, s in data["samples"]
        )
