"""Windowed-quantile policy: threshold test on a low load quantile.

``quantile`` keeps the raw (t, s) samples of the last ``W`` time units
and compares a configurable quantile ``q`` of the retained
free-primary counts against θ_l/θ_h — a rank statistic instead of an
extrapolation.  With the default ``q = 0.25`` the cell reacts to
*sustained* scarcity (a quarter of the recent window at or below the
threshold) and ignores one-sample dips entirely; there is no notion of
trend, so it neither anticipates load like the linear predictor nor
overshoots like it.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

from .base import ModePolicy, register_policy

__all__ = ["QuantilePolicy"]


@register_policy
class QuantilePolicy(ModePolicy):
    """Threshold test on the q-quantile of the sample window."""

    name = "quantile"
    fastlane_safe = True

    def __init__(self, q: float = 0.25, **context: Any) -> None:
        super().__init__(**context)
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        self.q = float(q)
        self.params = {"q": self.q}
        self._samples: Deque[Tuple[float, int]] = deque()
        self._initial = self.initial

    def _quantile(self) -> float:
        if self._samples:
            values = sorted(s for _t, s in self._samples)
        else:
            values = [self._initial]
        # Deterministic lower-rank quantile (no interpolation).
        index = int(self.q * (len(values) - 1))
        return float(values[index])

    def decide(self, t: float, s: int, borrowing: bool) -> Optional[bool]:
        samples = self._samples
        samples.append((t, s))
        horizon = t - self.window
        while samples and samples[0][0] < horizon:
            samples.popleft()
        predicted = self._quantile()
        if not borrowing and predicted < self.theta_low:
            return True
        if borrowing and predicted >= self.theta_high:
            return False
        return None

    def predict_at(self, t: float) -> Optional[float]:
        return self._quantile()

    def reset(self, initial: int) -> None:
        self._samples.clear()
        self._initial = initial

    def state_dict(self) -> Dict[str, Any]:
        return {
            "samples": [list(sample) for sample in self._samples],
            "initial": self._initial,
        }

    def load_state(self, data: Dict[str, Any]) -> None:
        self._samples = deque(
            (float(t), int(s)) for t, s in data["samples"]
        )
        self._initial = int(data["initial"])
