"""Clairvoyant oracle policy: replays a recorded load trace.

The oracle answers Fig. 6's "what will the free-primary count be one
round-trip from now?" by *looking it up* in a per-cell trace recorded
from a prior run of the same scenario (see
:func:`repro.policies.record_trace`), instead of predicting it.  No
causal predictor can beat a correct lookahead, so the oracle
upper-bounds every predictor on the traced workload — that is what
makes **regret-vs-oracle** (``Report.regret_vs_oracle``) a meaningful
yardstick: the oracle's own regret is 0 by definition, and any other
policy's regret is the drop-rate it leaves on the table.

The trace is a JSON-safe step function per cell:
``{cell: [[t, s], ...]}`` with strictly increasing ``t`` — exactly
what the ``policy.decide`` probe stream compacts to.  Times at or
before the first sample read the scenario's initial free count; times
past the end hold the last value.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, List, Optional

from .base import ModePolicy, register_policy

__all__ = ["OraclePolicy"]


@register_policy
class OraclePolicy(ModePolicy):
    """Threshold test on the *recorded* free count one horizon ahead."""

    name = "oracle"
    fastlane_safe = False

    def __init__(
        self, trace: Optional[Dict[Any, Any]] = None, **context: Any
    ) -> None:
        super().__init__(**context)
        trace = trace or {}
        # JSON object keys arrive as strings; accept both.
        series = trace.get(self.cell, trace.get(str(self.cell), []))
        self._times: List[float] = [float(t) for t, _s in series]
        self._values: List[int] = [int(s) for _t, s in series]
        self.params = {"trace": trace}

    def _lookup(self, t: float) -> float:
        index = bisect_right(self._times, t) - 1
        if index < 0:
            return float(self.initial)
        return float(self._values[index])

    def decide(self, t: float, s: int, borrowing: bool) -> Optional[bool]:
        predicted = self._lookup(t + self.horizon)
        if not borrowing and predicted < self.theta_low:
            return True
        if borrowing and predicted >= self.theta_high:
            return False
        return None

    def predict_at(self, t: float) -> Optional[float]:
        return self._lookup(t + self.horizon)

    def reset(self, initial: int) -> None:
        # The trace is immutable configuration, not history; a crash
        # with state loss leaves a clairvoyant exactly as clairvoyant.
        self.initial = initial

    def state_dict(self) -> Dict[str, Any]:
        return {"initial": self.initial}

    def load_state(self, data: Dict[str, Any]) -> None:
        self.initial = int(data["initial"])
