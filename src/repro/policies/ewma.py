"""EWMA predictor policy: exponentially weighted level + trend.

Instead of the paper's two-point linear fit over a sliding window,
``ewma`` tracks an exponentially weighted moving average of the
free-primary count (the *level*) and of its rate of change (the
*trend*), and extrapolates ``level + horizon * trend``.  Smoother than
the linear predictor under bursty traffic — a single deep sample no
longer slingshots the extrapolation — at the cost of reacting one time
constant late to genuine load shifts.  ``beta`` is the smoothing
weight of a new sample (1.0 = no smoothing).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .base import ModePolicy, register_policy

__all__ = ["EwmaPolicy"]


@register_policy
class EwmaPolicy(ModePolicy):
    """Threshold test on a double-EWMA (level + trend) extrapolation."""

    name = "ewma"
    fastlane_safe = True

    def __init__(self, beta: float = 0.3, **context: Any) -> None:
        super().__init__(**context)
        if not 0.0 < beta <= 1.0:
            raise ValueError("beta must be in (0, 1]")
        self.beta = float(beta)
        self.params = {"beta": self.beta}
        self.level = float(self.initial)
        self.trend = 0.0
        self.last_t: Optional[float] = None

    def _observe(self, t: float, s: int) -> None:
        beta = self.beta
        if self.last_t is None or t <= self.last_t:
            # First sample, or a same-instant re-sample: update the
            # level only (no elapsed time to attribute a rate to).
            self.level = beta * s + (1.0 - beta) * self.level
        else:
            dt = t - self.last_t
            new_level = beta * s + (1.0 - beta) * self.level
            inst_rate = (new_level - self.level) / dt
            self.trend = beta * inst_rate + (1.0 - beta) * self.trend
            self.level = new_level
        self.last_t = t

    def decide(self, t: float, s: int, borrowing: bool) -> Optional[bool]:
        self._observe(t, s)
        predicted = self.level + self.horizon * self.trend
        if not borrowing and predicted < self.theta_low:
            return True
        if borrowing and predicted >= self.theta_high:
            return False
        return None

    def predict_at(self, t: float) -> Optional[float]:
        return self.level + self.horizon * self.trend

    def reset(self, initial: int) -> None:
        self.level = float(initial)
        self.trend = 0.0
        self.last_t = None

    def state_dict(self) -> Dict[str, Any]:
        return {"level": self.level, "trend": self.trend, "last_t": self.last_t}

    def load_state(self, data: Dict[str, Any]) -> None:
        self.level = float(data["level"])
        self.trend = float(data["trend"])
        self.last_t = None if data["last_t"] is None else float(data["last_t"])
