"""The :class:`ModePolicy` interface and the policy registry.

A mode policy is the pluggable decision rule behind the adaptive
scheme's ``check_mode`` (Fig. 6): given the stream of free-primary
samples it decides when a cell should enter or leave borrowing mode.
The paper's linear predictor is the default ``linear`` entry; every
other registered policy is a drop-in alternative selected per scenario
(``Scenario.policy`` / ``--policy``) with JSON-serializable parameters
(``Scenario.policy_params``), so a policy choice is part of the cache
key and of snapshot identity like any other scenario field.

Design constraints (why the interface looks the way it does):

* **Per-cell state only.**  A policy instance belongs to exactly one
  station and holds no shared state — that keeps sharded execution and
  checkpoint/restore sound (this package is in the shard-safety and
  snapshot-escape analyzer scopes, see ``tools/analyze``).
* **Deterministic.**  No randomness, no wall clock; every input
  arrives through ``decide``/the hook arguments.
* **Snapshot round-trippable.**  ``state_dict``/``load_state`` move
  the complete mutable state through plain JSON-safe data; the
  snapshot codec (``repro.snap.state``) calls them per station.
* **No protocol knowledge.**  Policies see sample streams and answer
  questions; the station owns modes, messages and safety.  The
  harvest hooks (``solicit_need`` …) are advisory — acquisitions
  always run the full permission protocol regardless of what a policy
  suggests.
"""

from __future__ import annotations

from typing import Any, ClassVar, Dict, Iterable, List, Optional, Set, Tuple, Type

__all__ = ["ModePolicy", "register_policy", "policy_spec", "make_policy", "policy_names"]

#: name -> policy class; populated by :func:`register_policy` at import
#: time and never mutated afterwards (read-only from simulation code).
_REGISTRY: Dict[str, Type["ModePolicy"]] = {}


def register_policy(cls: Type["ModePolicy"]) -> Type["ModePolicy"]:
    """Class decorator: add ``cls`` to the registry under ``cls.name``."""
    name = getattr(cls, "name", None)
    if not name or not isinstance(name, str):
        raise ValueError(f"{cls.__name__} must define a string `name`")
    if name in _REGISTRY:
        raise ValueError(f"duplicate policy name {name!r}")
    _REGISTRY[name] = cls
    return cls


def policy_names() -> List[str]:
    """Registered policy names, sorted."""
    return sorted(_REGISTRY)


def policy_spec(name: str) -> Type["ModePolicy"]:
    """The policy class registered under ``name`` (ValueError if none)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: {policy_names()}"
        ) from None


def make_policy(
    name: str,
    params: Optional[Dict[str, Any]] = None,
    *,
    cell: int,
    theta_low: float,
    theta_high: float,
    window: float,
    horizon: float,
    initial: int,
) -> "ModePolicy":
    """Instantiate the registered policy ``name`` for one station.

    ``params`` are the policy-specific keyword arguments from
    ``Scenario.policy_params`` (e.g. the oracle's ``trace`` or the
    EWMA's ``beta``); the remaining arguments are the station-derived
    context every policy receives.  Unknown parameters raise
    ``ValueError`` naming the policy.
    """
    cls = policy_spec(name)
    try:
        return cls(
            cell=cell,
            theta_low=theta_low,
            theta_high=theta_high,
            window=window,
            horizon=horizon,
            initial=initial,
            **(params or {}),
        )
    except TypeError as exc:
        raise ValueError(f"bad parameters for policy {name!r}: {exc}") from None


class ModePolicy:
    """Base class for mode-switching decision rules.

    Subclasses implement :meth:`decide` (and usually
    :meth:`predict_at`, :meth:`state_dict`, :meth:`load_state`); the
    harvest hooks have no-op defaults so only donation-aware policies
    pay for them.
    """

    #: Registry key; also the ``Scenario.policy`` value.
    name: ClassVar[str] = ""
    #: True when the policy's state can be honestly reconciled after an
    #: analytically advanced (fast-lane) interval.  The clairvoyant
    #: oracle and the harvest policy are not — their state references
    #: history/peers the fluid model never produced — so fast-lane runs
    #: reject them (see ``build_simulation``).
    fastlane_safe: ClassVar[bool] = False

    def __init__(
        self,
        *,
        cell: int,
        theta_low: float,
        theta_high: float,
        window: float,
        horizon: float,
        initial: int,
    ) -> None:
        self.cell = cell
        self.theta_low = theta_low
        self.theta_high = theta_high
        self.window = window
        self.horizon = horizon
        self.initial = initial
        #: Policy-specific parameters for :meth:`to_config` round-trips;
        #: subclasses that take extra kwargs record them here.
        self.params: Dict[str, Any] = {}

    # -- the decision rule ---------------------------------------------------
    def decide(self, t: float, s: int, borrowing: bool) -> Optional[bool]:
        """Record the sample (t, s) and answer the Fig. 6 question.

        Returns ``True`` to request borrowing mode, ``False`` to
        request local mode, ``None`` for no change.  The station only
        honors the answer in a durable mode (LOCAL / BORROW_IDLE);
        the policy is still called — and must keep recording — while a
        request round is in flight (modes 2/3).
        """
        raise NotImplementedError

    def predict_at(self, t: float) -> Optional[float]:
        """Read-only prediction at time ``t`` (the obs sampler's
        ``nfc_predicted`` column); must not mutate policy state.
        ``None`` when the policy has no meaningful prediction."""
        return None

    # -- lifecycle -----------------------------------------------------------
    def reset(self, initial: int) -> None:
        """Forget all history (crash with state loss): behave as if
        freshly constructed with ``initial`` free primaries."""
        raise NotImplementedError

    def reconcile(self, s: int) -> None:
        """Re-anchor after a fast-lane materialization: the pre-fluid
        history is fictional, the honest state is "flat at ``s``"."""
        self.reset(s)

    # -- snapshot round trip -------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Complete mutable state as JSON-safe plain data."""
        raise NotImplementedError

    def load_state(self, data: Dict[str, Any]) -> None:
        """Inverse of :meth:`state_dict` (accepts its JSON round trip)."""
        raise NotImplementedError

    def to_config(self) -> Dict[str, Any]:
        """The ``(name, params)`` pair that reconstructs this policy."""
        return {"name": self.name, "params": dict(self.params)}

    # -- harvest/trade hooks (no-ops outside the harvest policy) -------------
    def solicit_need(self, t: float, s: int, borrowing: bool) -> Optional[int]:
        """How many channels to solicit from neighbors right now
        (``None``/0 = don't).  Called after every decide."""
        return None

    def consider_solicit(
        self, t: float, need: int, surplus: int, borrowing: bool
    ) -> int:
        """How many of our ``surplus`` free primaries to offer a
        soliciting neighbor asking for ``need`` (0 = decline)."""
        return 0

    def record_donation(
        self, t: float, donor: int, channels: Tuple[int, ...]
    ) -> None:
        """A neighbor offered ``channels`` for borrowing."""

    def preferred_donor(
        self, t: float, eligible: Iterable[int], free: Set[int]
    ) -> Optional[int]:
        """A borrow target to prefer over the Fig. 10 heuristic, or
        ``None``.  Must return a member of ``eligible``; the suggestion
        is advisory — the full permission round still decides."""
        return None
