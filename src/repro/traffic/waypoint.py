"""Random-waypoint 2-D mobility: hosts that really cross cell borders.

The basic mobility model (``CallConfig.mean_dwell``) abstracts movement
as exponential dwell timers with random-neighbor hops.  This module
models it physically: a mobile host has a Cartesian position and speed,
walks toward uniformly random waypoints (the classic random-waypoint
model), and a handoff fires exactly when its trajectory crosses a hex
cell boundary — giving realistic dwell-time distributions (short
clipped corners, long diagonal crossings) instead of memoryless ones.

Used with a *planar* grid (torus wrap has no continuous embedding).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..cellular.geometry import grid_bounds, nearest_cell
from ..cellular.hexgrid import HexGrid
from ..sim import Environment
from .calls import CallConfig, CallLog

__all__ = ["WaypointHost", "waypoint_call_process"]


@dataclass
class WaypointHost:
    """A host performing a random-waypoint walk inside the grid box."""

    grid: HexGrid
    rng: np.random.Generator
    speed: float
    size: float = 1.0
    #: Trajectory sampling step as a fraction of the hex size (boundary
    #: crossings are detected at this resolution).
    resolution: float = 0.25

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError("speed must be positive")
        if self.grid.wrap:
            raise ValueError("waypoint mobility needs a planar grid")
        self.bounds = grid_bounds(self.grid, self.size)
        xmin, ymin, xmax, ymax = self.bounds
        self.x = float(self.rng.uniform(xmin, xmax))
        self.y = float(self.rng.uniform(ymin, ymax))
        self._pick_waypoint()

    def _pick_waypoint(self) -> None:
        xmin, ymin, xmax, ymax = self.bounds
        self.wx = float(self.rng.uniform(xmin, xmax))
        self.wy = float(self.rng.uniform(ymin, ymax))

    @property
    def cell(self) -> int:
        return nearest_cell(self.grid, self.x, self.y, self.size)

    def advance(self, dt: float) -> None:
        """Move ``dt`` time units along the current leg (new waypoints
        as needed)."""
        remaining = dt * self.speed
        while remaining > 1e-12:
            dx, dy = self.wx - self.x, self.wy - self.y
            leg = (dx * dx + dy * dy) ** 0.5
            if leg <= remaining:
                self.x, self.y = self.wx, self.wy
                remaining -= leg
                self._pick_waypoint()
            else:
                frac = remaining / leg
                self.x += dx * frac
                self.y += dy * frac
                remaining = 0.0

    def time_to_next_check(self) -> float:
        """Sampling interval for boundary-crossing detection."""
        return self.resolution * self.size / self.speed


def waypoint_call_process(
    env: Environment,
    stations,
    host: WaypointHost,
    config: CallConfig,
    rng: np.random.Generator,
    log: Optional[CallLog] = None,
):
    """A call carried by a physically moving host.

    Acquires in the host's current cell, re-acquires whenever the
    trajectory enters a different cell, releases at call end.  A failed
    handoff force-terminates the call.
    """
    if log is not None:
        log.started += 1
    mss = stations[host.cell]
    channel = yield from mss.request_channel("new", config.setup_deadline)
    if channel is None:
        if log is not None:
            log.blocked += 1
        return

    remaining = float(rng.exponential(config.mean_holding))
    step = host.time_to_next_check()
    while remaining > 0:
        dt = min(step, remaining)
        yield env.timeout(dt)
        host.advance(dt)
        remaining -= dt
        new_cell = host.cell
        if new_cell != mss.cell:
            mss.release_channel(channel)
            mss = stations[new_cell]
            if log is not None:
                log.handoffs_attempted += 1
            channel = yield from mss.request_channel(
                "handoff", config.setup_deadline
            )
            if channel is None:
                if log is not None:
                    log.handoffs_failed += 1
                return
    mss.release_channel(channel)
    if log is not None:
        log.completed += 1
