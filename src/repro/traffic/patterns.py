"""Spatio-temporal offered-load patterns.

A :class:`LoadPattern` maps (cell, time) to a Poisson call-arrival rate
λ (calls per time unit).  The patterns mirror the paper's motivating
scenarios (§1):

* :class:`UniformLoad` — the same rate everywhere (the regime where
  fixed allocation is optimal);
* :class:`HotspotLoad` — a persistent spatial hot spot: a few cells at
  a high rate surrounded by lightly loaded cells (the regime where
  static allocation drops calls despite idle neighbors);
* :class:`TemporalHotspot` — a transient hot spot that switches on for
  an interval (the paper's "even temporary hot spots" case);
* :class:`RampLoad` — a linear load ramp for mode-transition studies.

Rates are usually expressed through *Erlangs per cell* in the harness:
offered load A = λ · mean_holding_time, so λ = A / holding.
"""

from __future__ import annotations

from typing import Dict, Iterable

__all__ = [
    "LoadPattern",
    "UniformLoad",
    "HotspotLoad",
    "TemporalHotspot",
    "RampLoad",
    "PiecewiseLoad",
]


class LoadPattern:
    """Base class: per-cell, time-varying Poisson arrival rate."""

    def rate(self, cell: int, t: float) -> float:  # pragma: no cover
        raise NotImplementedError

    def max_rate(self, cell: int) -> float:
        """Upper bound of ``rate(cell, ·)`` (for Poisson thinning)."""
        raise NotImplementedError


class UniformLoad(LoadPattern):
    """Constant rate λ in every cell."""

    def __init__(self, rate: float) -> None:
        if rate < 0:
            raise ValueError("rate must be >= 0")
        self._rate = float(rate)

    def rate(self, cell: int, t: float) -> float:
        return self._rate

    def max_rate(self, cell: int) -> float:
        return self._rate


class HotspotLoad(LoadPattern):
    """Persistent spatial hot spot: ``hot_rate`` in ``hot_cells``,
    ``base_rate`` elsewhere."""

    def __init__(
        self, base_rate: float, hot_cells: Iterable[int], hot_rate: float
    ) -> None:
        if base_rate < 0 or hot_rate < 0:
            raise ValueError("rates must be >= 0")
        self.base_rate = float(base_rate)
        self.hot_rate = float(hot_rate)
        self.hot_cells = frozenset(hot_cells)

    def rate(self, cell: int, t: float) -> float:
        return self.hot_rate if cell in self.hot_cells else self.base_rate

    def max_rate(self, cell: int) -> float:
        return self.hot_rate if cell in self.hot_cells else self.base_rate


class TemporalHotspot(LoadPattern):
    """Hot cells burn at ``hot_rate`` only during [start, end)."""

    def __init__(
        self,
        base_rate: float,
        hot_cells: Iterable[int],
        hot_rate: float,
        start: float,
        end: float,
    ) -> None:
        if not (0 <= start < end):
            raise ValueError("need 0 <= start < end")
        if base_rate < 0 or hot_rate < 0:
            raise ValueError("rates must be >= 0")
        self.base_rate = float(base_rate)
        self.hot_rate = float(hot_rate)
        self.hot_cells = frozenset(hot_cells)
        self.start = float(start)
        self.end = float(end)

    def rate(self, cell: int, t: float) -> float:
        if cell in self.hot_cells and self.start <= t < self.end:
            return self.hot_rate
        return self.base_rate

    def max_rate(self, cell: int) -> float:
        return (
            max(self.hot_rate, self.base_rate)
            if cell in self.hot_cells
            else self.base_rate
        )


class RampLoad(LoadPattern):
    """Rate grows linearly from ``start_rate`` to ``end_rate`` over
    [0, duration], constant afterwards.  Same in every cell."""

    def __init__(self, start_rate: float, end_rate: float, duration: float) -> None:
        if duration <= 0:
            raise ValueError("duration must be positive")
        if start_rate < 0 or end_rate < 0:
            raise ValueError("rates must be >= 0")
        self.start_rate = float(start_rate)
        self.end_rate = float(end_rate)
        self.duration = float(duration)

    def rate(self, cell: int, t: float) -> float:
        if t >= self.duration:
            return self.end_rate
        frac = max(t, 0.0) / self.duration
        return self.start_rate + frac * (self.end_rate - self.start_rate)

    def max_rate(self, cell: int) -> float:
        return max(self.start_rate, self.end_rate)


class PiecewiseLoad(LoadPattern):
    """Explicit per-cell constant rates (e.g. measured city profiles)."""

    def __init__(self, rates: Dict[int, float], default: float = 0.0) -> None:
        if default < 0 or any(v < 0 for v in rates.values()):
            raise ValueError("rates must be >= 0")
        self.rates = dict(rates)
        self.default = float(default)

    def rate(self, cell: int, t: float) -> float:
        return self.rates.get(cell, self.default)

    def max_rate(self, cell: int) -> float:
        return self.rates.get(cell, self.default)
