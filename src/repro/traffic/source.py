"""Arrival processes: per-cell (non-homogeneous) Poisson call streams.

Each cell runs one generator process producing call arrivals by Poisson
thinning: candidate arrivals are drawn at the pattern's maximum rate
and accepted with probability ``rate(t) / max_rate``, which realizes an
exact non-homogeneous Poisson process for time-varying patterns (ramps,
temporal hot spots) at no extra machinery for constant ones.

Every cell draws from its own named random substream, so traffic in
cell 17 is identical across runs regardless of what the protocol or
other cells do — variance reduction for scheme comparisons.
"""

from __future__ import annotations

from typing import Dict, Optional

from typing import Union

from ..sim import Environment, StreamRegistry
from .calls import CallConfig, CallLog, call_process
from .mix import TrafficMix
from .patterns import LoadPattern

__all__ = ["TrafficSource"]


class TrafficSource:
    """Drives call arrivals for every cell of a simulation."""

    def __init__(
        self,
        env: Environment,
        stations: Dict[int, "MSS"],
        pattern: LoadPattern,
        config: Union[CallConfig, TrafficMix],
        streams: StreamRegistry,
        horizon: Optional[float] = None,
    ) -> None:
        self.env = env
        self.stations = stations
        self.pattern = pattern
        #: Either a single CallConfig or a multi-class TrafficMix.
        self.config = config
        self.mix = config if isinstance(config, TrafficMix) else None
        self.streams = streams
        #: Arrivals stop at this time (active calls drain naturally).
        self.horizon = horizon
        #: Aggregate accounting (all classes combined).
        self.log = CallLog()
        self._started = False
        #: Fast-lane controller (``repro.harness.fastlane``); when set,
        #: cells the lane claims at t=0 get no arrival process until
        #: the lane promotes them via :meth:`launch`.
        self.lane = None
        #: Live arrival process per cell (lane demotion cancels the
        #: process's pending gap timeout through this).
        self._procs: Dict[int, "Process"] = {}

    def start(self) -> None:
        """Launch one arrival process per cell."""
        if self._started:
            raise RuntimeError("traffic source already started")
        self._started = True
        for cell in sorted(self.stations):
            if self.pattern.max_rate(cell) > 0:
                if self.lane is not None and self.lane.claims(cell):
                    continue  # fluid from t=0; lane settles analytically
                self.launch(cell)

    def launch(self, cell: int) -> None:
        """(Re)start the arrival process for one cell.

        Used at :meth:`start` and by the fast lane at promotion.  The
        per-cell RNG substreams are memoized in the registry, so a
        relaunched process resumes the *same* stream where the previous
        incarnation (or the lane's settlement replay) left it.
        """
        self._procs[cell] = self.env.process(
            self._arrivals(cell), name=f"arrivals[{cell}]"
        )

    def halt(self, cell: int) -> None:
        """Take a cell's arrival process off the event heap (fast lane).

        The process is parked on its next-gap :class:`Timeout`;
        cancelling that timeout abandons the generator without running
        any of its code.  Exactness note: the un-elapsed exponential
        gap can be discarded because the exponential is memoryless —
        redrawing from the (memoized, position-preserved) stream at
        promotion is distributionally identical.
        """
        proc = self._procs.pop(cell, None)
        if proc is None or not proc.is_alive:
            return
        target = proc.target
        if target is not None:
            self.env.cancel(target)

    def _arrivals(self, cell: int):
        rng = self.streams.stream("traffic", "arrivals", cell)
        call_rng = self.streams.stream("traffic", "calls", cell)
        lam_max = self.pattern.max_rate(cell)
        while True:
            gap = float(rng.exponential(1.0 / lam_max))
            yield self.env.timeout(gap)
            now = self.env.now
            if self.horizon is not None and now >= self.horizon:
                return
            accept = self.pattern.rate(cell, now) / lam_max
            if accept >= 1.0 or rng.random() < accept:
                if self.mix is not None:
                    call_class = self.mix.sample(rng)
                    config = call_class.config
                    class_log = self.mix.log_for(call_class.name)
                else:
                    config = self.config
                    class_log = None
                self.env.process(
                    self._call_with_logs(cell, config, call_rng, class_log),
                    name=f"call[{cell}]",
                )

    def _call_with_logs(self, cell, config, call_rng, class_log):
        # Account each call into a private log, then fold it into the
        # aggregate (and per-class) logs at completion — concurrent
        # calls never share a mutable counter mid-flight.
        targets = [self.log] if class_log is None else [self.log, class_log]
        for log in targets:
            log.started += 1  # visible immediately at arrival
        local = CallLog()
        yield from call_process(
            self.env, self.stations, cell, config, call_rng, log=local
        )
        for log in targets:
            log.blocked += local.blocked
            log.completed += local.completed
            log.handoffs_attempted += local.handoffs_attempted
            log.handoffs_failed += local.handoffs_failed
