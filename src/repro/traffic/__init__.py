"""Traffic workloads: load patterns, call lifecycle, arrival processes."""

from .calls import CallConfig, CallLog, call_process
from .mix import TrafficClass, TrafficMix
from .waypoint import WaypointHost, waypoint_call_process
from .patterns import (
    HotspotLoad,
    LoadPattern,
    PiecewiseLoad,
    RampLoad,
    TemporalHotspot,
    UniformLoad,
)
from .source import TrafficSource

__all__ = [
    "LoadPattern",
    "UniformLoad",
    "HotspotLoad",
    "TemporalHotspot",
    "RampLoad",
    "PiecewiseLoad",
    "CallConfig",
    "CallLog",
    "call_process",
    "TrafficSource",
    "TrafficClass",
    "TrafficMix",
    "WaypointHost",
    "waypoint_call_process",
]
