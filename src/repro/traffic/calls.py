"""Call lifecycle: acquisition, holding, mobility/handoff, release.

A *call* is one simulation process: it asks the serving MSS for a
channel, holds it for an exponentially distributed duration, optionally
hops to adjacent cells (handoff: release in the old cell, re-acquire in
the new cell — paper §2.1), and releases on completion.  A denied
acquisition ends the call immediately: a denied "new" request is a
blocked call, a denied "handoff" request is a forced termination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..sim import Environment

__all__ = ["CallConfig", "call_process", "CallLog"]


@dataclass
class CallConfig:
    """Holding-time and mobility parameters of the call population."""

    mean_holding: float = 180.0
    #: Mean cell-dwell time of a moving host; ``None`` disables mobility.
    mean_dwell: Optional[float] = None
    #: Give up if the MSS cannot start serving the request within this
    #: long (blocked-calls-cleared at overload); ``None`` waits forever.
    setup_deadline: Optional[float] = 30.0

    def __post_init__(self) -> None:
        if self.mean_holding <= 0:
            raise ValueError("mean_holding must be positive")
        if self.mean_dwell is not None and self.mean_dwell <= 0:
            raise ValueError("mean_dwell must be positive")
        if self.setup_deadline is not None and self.setup_deadline <= 0:
            raise ValueError("setup_deadline must be positive")


@dataclass
class CallLog:
    """Aggregate call-completion accounting (beyond per-request metrics)."""

    started: int = 0
    blocked: int = 0
    completed: int = 0
    handoffs_attempted: int = 0
    handoffs_failed: int = 0

    @property
    def forced_termination_rate(self) -> float:
        if not self.handoffs_attempted:
            return 0.0
        return self.handoffs_failed / self.handoffs_attempted


def call_process(
    env: Environment,
    stations: Dict[int, "MSS"],
    cell: int,
    config: CallConfig,
    rng: np.random.Generator,
    log: Optional[CallLog] = None,
):
    """Simulation process for one call originating in ``cell``."""
    mss = stations[cell]
    if log is not None:
        log.started += 1

    channel = yield from mss.request_channel("new", config.setup_deadline)
    if channel is None:
        if log is not None:
            log.blocked += 1
        return

    duration = float(rng.exponential(config.mean_holding))
    remaining = duration
    while True:
        if config.mean_dwell is None:
            dwell = float("inf")
        else:
            dwell = float(rng.exponential(config.mean_dwell))
        step = min(remaining, dwell)
        yield env.timeout(step)
        remaining -= step
        if remaining <= 0:
            mss.release_channel(channel)
            if log is not None:
                log.completed += 1
            return

        # Handoff: move to a random adjacent cell, releasing the old
        # channel and acquiring a fresh one in the new cell.
        grid = mss.topo.grid
        new_cell = grid.random_walk_step(mss.cell, rng)
        mss.release_channel(channel)
        mss = stations[new_cell]
        if log is not None:
            log.handoffs_attempted += 1
        channel = yield from mss.request_channel("handoff", config.setup_deadline)
        if channel is None:
            if log is not None:
                log.handoffs_failed += 1
            return  # forced termination mid-call
