"""Multi-class traffic: voice and data calls share the spectrum.

Paper §2.1: "a channel can be used for either data or voice
communication."  A :class:`TrafficMix` assigns each arrival to a call
class (its own holding time, mobility and setup patience) with a given
probability, and keeps per-class accounting — e.g. short sticky data
bursts mixed with long voice calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from .calls import CallConfig, CallLog

__all__ = ["TrafficClass", "TrafficMix"]


@dataclass(frozen=True)
class TrafficClass:
    """One call class of a mix."""

    name: str
    weight: float
    config: CallConfig

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("class weight must be positive")
        if not self.name:
            raise ValueError("class needs a name")


class TrafficMix:
    """A weighted set of call classes with per-class logs.

    >>> mix = TrafficMix([
    ...     TrafficClass("voice", 0.7, CallConfig(mean_holding=180.0)),
    ...     TrafficClass("data", 0.3, CallConfig(mean_holding=30.0)),
    ... ])
    """

    def __init__(self, classes: Sequence[TrafficClass]) -> None:
        if not classes:
            raise ValueError("mix needs at least one class")
        names = [c.name for c in classes]
        if len(set(names)) != len(names):
            raise ValueError("class names must be unique")
        self.classes: List[TrafficClass] = list(classes)
        total = sum(c.weight for c in classes)
        self._probs = np.array([c.weight / total for c in classes])
        #: Per-class call accounting.
        self.logs: Dict[str, CallLog] = {c.name: CallLog() for c in classes}

    def sample(self, rng: np.random.Generator) -> TrafficClass:
        """Draw the class of the next arrival."""
        idx = int(rng.choice(len(self.classes), p=self._probs))
        return self.classes[idx]

    def log_for(self, name: str) -> CallLog:
        return self.logs[name]

    @property
    def mean_holding(self) -> float:
        """Weighted mean holding time (for Erlang bookkeeping)."""
        return float(
            sum(p * c.config.mean_holding for p, c in zip(self._probs, self.classes))
        )

    def combined_log(self) -> CallLog:
        """Aggregate accounting across all classes."""
        out = CallLog()
        for log in self.logs.values():
            out.started += log.started
            out.blocked += log.blocked
            out.completed += log.completed
            out.handoffs_attempted += log.handoffs_attempted
            out.handoffs_failed += log.handoffs_failed
        return out
