"""Runtime sanitizers — pluggable correctness oracles for the simulator.

The paper's correctness claims are theorems; this subpackage turns them
into executable checks that observe a live simulation through the
engine's probe bus (:meth:`repro.sim.Environment.subscribe`):

* :class:`DeadlockDetector` — Theorem 2's oracle: maintains the
  wait-for graph of the mode-2/mode-3 handshake incrementally and
  flags any cycle.
* :class:`CausalityChecker` — hardens the FIFO-link assumption: per
  (src, dst) link, messages must deliver in send order, and no node
  may send a RESPONSE for a round whose REQUEST/CHANGE_MODE it has not
  yet received.
* :class:`VectorClockChecker` — happens-before oracle: stamps every
  logical send with a vector clock, checks causal delivery per link,
  and flags causally unordered writes to the per-neighbor state
  mirrors (``mirror_race``) — the dynamic counterpart of the static
  shard-safety pass in ``tools/analyze``.
* :class:`QuiescenceChecker` — end-of-run hygiene: every acquired
  channel released, every channel request resolved.

All sanitizers share the :class:`InterferenceMonitor` policy API:
``policy="raise"`` fails loudly on the first violation (tests),
``policy="record"`` accumulates violations for inspection.

:class:`SanitizerSuite` bundles the four and attaches them to a
simulation in one call; the pytest ``conftest`` enables it globally
via :func:`set_default_policy`.
"""

from typing import Optional

from .base import Sanitizer, Violation
from .causality import CausalityChecker, CausalityViolation
from .deadlock import DeadlockDetector, DeadlockViolation
from .quiescence import QuiescenceChecker, QuiescenceViolation
from .suite import SanitizerSuite
from .vectorclock import VectorClockChecker, VectorClockViolation

__all__ = [
    "Sanitizer",
    "Violation",
    "DeadlockDetector",
    "DeadlockViolation",
    "CausalityChecker",
    "CausalityViolation",
    "QuiescenceChecker",
    "QuiescenceViolation",
    "VectorClockChecker",
    "VectorClockViolation",
    "SanitizerSuite",
    "set_default_policy",
    "get_default_policy",
]

#: Module-level default policy: when not ``None``, the harness attaches
#: a :class:`SanitizerSuite` with this policy to every simulation it
#: builds.  The test suite sets it to ``"raise"`` in ``conftest.py``.
_DEFAULT_POLICY: Optional[str] = None


def set_default_policy(policy: Optional[str]) -> Optional[str]:
    """Set the process-wide default sanitizer policy.

    ``None`` disables automatic attachment; ``"raise"`` / ``"record"``
    make :func:`repro.harness.build_simulation` attach a
    :class:`SanitizerSuite` with that policy to every new simulation.
    Returns the previous value (for save/restore in fixtures).
    """
    global _DEFAULT_POLICY
    if policy not in (None, "raise", "record"):
        raise ValueError(f"unknown policy {policy!r}")
    previous = _DEFAULT_POLICY
    _DEFAULT_POLICY = policy
    return previous


def get_default_policy() -> Optional[str]:
    """Return the current process-wide default sanitizer policy."""
    return _DEFAULT_POLICY
