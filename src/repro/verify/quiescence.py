"""End-of-run quiescence checker.

After traffic drains, a correct simulation leaves no residue: every
channel that was acquired has been released, and every channel request
that started has resolved (granted, rejected or abandoned — but not
stuck).  Violations here are slow leaks (stranded calls, unbalanced
acquire/release pairs) that per-event assertions cannot see.

The checker passively mirrors ``channel.acquired`` / ``channel.released``
and ``request.begin`` / ``request.end`` probe events; calling
:meth:`finalize` at the end of a *drained* run applies the policy to
whatever is left.  (Do not finalize a run halted mid-traffic — calls
legitimately in progress are not leaks.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set, Tuple

from ..sim import Environment
from .base import Sanitizer, Violation

__all__ = ["QuiescenceViolation", "QuiescenceChecker"]


@dataclass(frozen=True)
class QuiescenceViolation(Violation):
    """Residual protocol state at simulation end."""

    kind: str  # "held_channel" | "unresolved_request" | "unbalanced_release"
    cell: int
    detail: str

    def __str__(self) -> str:
        return f"t={self.time}: cell {self.cell}: {self.detail}"


class QuiescenceChecker(Sanitizer):
    """Verifies all acquisitions released and all requests resolved."""

    name = "quiescence"

    def __init__(self, env: Environment, policy: str = "raise") -> None:
        #: cell -> channels currently held (per probe stream).
        self.held: Dict[int, Set[int]] = {}
        #: cell -> number of requests begun but not yet resolved.
        self.open_requests: Dict[int, int] = {}
        self.total_acquisitions = 0
        self.total_releases = 0
        self.total_requests = 0
        super().__init__(env, policy)

    def _attach(self) -> None:
        self._listen("channel.acquired", self._on_acquired)
        self._listen("channel.released", self._on_released)
        self._listen("request.begin", self._on_begin)
        self._listen("request.end", self._on_end)

    # -- probe handlers ----------------------------------------------------
    def _on_acquired(self, now: float, payload: Tuple[int, int]) -> None:
        cell, channel = payload
        self.held.setdefault(cell, set()).add(channel)
        self.total_acquisitions += 1

    def _on_released(self, now: float, payload: Tuple[int, int]) -> None:
        cell, channel = payload
        held = self.held.get(cell)
        if held is None or channel not in held:
            self._report(
                QuiescenceViolation(
                    now,
                    "unbalanced_release",
                    cell,
                    f"released channel {channel} it never acquired",
                )
            )
            return
        held.discard(channel)
        if not held:
            del self.held[cell]
        self.total_releases += 1

    # ``request.begin``/``request.end`` payloads are tuples whose first
    # element is the cell (see docs/OBSERVABILITY.md); bare-int payloads
    # from hand-driven tests are accepted for convenience.
    def _on_begin(self, now: float, payload: Tuple[int, ...]) -> None:
        cell = payload[0] if isinstance(payload, tuple) else payload
        self.open_requests[cell] = self.open_requests.get(cell, 0) + 1
        self.total_requests += 1

    def _on_end(self, now: float, payload: Tuple[int, ...]) -> None:
        cell = payload[0] if isinstance(payload, tuple) else payload
        remaining = self.open_requests.get(cell, 0) - 1
        if remaining:
            self.open_requests[cell] = remaining
        else:
            self.open_requests.pop(cell, None)

    # -- verdict -----------------------------------------------------------
    @property
    def channels_held(self) -> int:
        return sum(len(chs) for chs in self.held.values())

    @property
    def requests_open(self) -> int:
        return sum(n for n in self.open_requests.values() if n > 0)

    def finalize(self) -> None:
        """Check the drained end state; applies the policy per leak."""
        now = self.env.now
        for cell in sorted(self.held):
            channels = sorted(self.held[cell])
            self._report(
                QuiescenceViolation(
                    now,
                    "held_channel",
                    cell,
                    f"still holds channels {channels} at simulation end",
                )
            )
        for cell in sorted(self.open_requests):
            count = self.open_requests[cell]
            if count > 0:
                self._report(
                    QuiescenceViolation(
                        now,
                        "unresolved_request",
                        cell,
                        f"{count} channel request(s) never resolved",
                    )
                )
