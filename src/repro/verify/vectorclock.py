"""Vector-clock happens-before checker (the dynamic race oracle).

Complements the static shard-safety pass (``tools/analyze/shard.py``):
the static pass proves no cross-cell state is touched *except* through
``Network.send`` and the probe bus; this sanitizer checks that what
does travel through the fabric respects causality, and that the
mirrored per-neighbor state (``U[j]`` / ``granted_out[j]`` in the
adaptive scheme) is only ever overwritten by causally *newer*
information.

Mechanics — classic sparse vector clocks over the probe bus:

* ``net.send`` — tick the sender's own component and stamp the
  envelope (keyed by its send sequence number; fault-tagged copies —
  retransmissions, duplicates, injected reorders — are link-layer
  artifacts and are not stamped).
* ``net.deliver`` — pop the stamp, check it *dominates* the last stamp
  delivered on the same ``(src, dst)`` link (causal delivery; implied
  by per-link FIFO, so this is only checked when the network is
  configured FIFO), then merge it into the receiver's clock and tick.
* ``mirror.update`` — emitted by protocol code next to each write of a
  neighbor-state mirror.  Because the kernel delivers synchronously,
  a mirror write performed inside a handler is attributed to the stamp
  of the envelope being handled.  If a write to ``U[j]`` carries a
  stamp that does not dominate the stamp of the previous write to the
  same entry, the two writes are causally unordered (or the newer one
  lost the race): last-writer-wins nondeterminism, flagged as
  ``mirror_race``.

Attribution is deliberately conservative: a mirror write is attributed
only when the most recent delivery went to the writing cell from the
mirrored owner; any other write (local wipes in the crash hook,
drain-time grants) resets the entry's tracking instead of guessing.
Stamps from one sender are monotone in its send order, so on a FIFO
fabric every attributed stamp sequence is totally ordered *and*
increasing — the checker is provably silent on any run the
:class:`CausalityChecker` accepts, and a reordered delivery that
rewinds a mirror is exactly what it flags.  Both checks are gated on
the network's ``fifo`` flag: a deliberately reordering network
overtakes by design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..sim import Envelope, Environment
from .base import Sanitizer, Violation

__all__ = ["VectorClockViolation", "VectorClockChecker"]

#: A sparse vector clock: node id -> logical time (missing = 0).
Clock = Dict[int, int]

#: A mirror entry: (observing cell, mirrored owner, mirror name).
MirrorKey = Tuple[int, int, str]


def _dominates(a: Clock, b: Clock) -> bool:
    """True when ``a`` happened-after-or-equals ``b`` (a >= b pointwise)."""
    return all(a.get(node, 0) >= ticks for node, ticks in b.items())


def _fmt(clock: Clock) -> str:
    inner = ", ".join(f"{n}:{t}" for n, t in sorted(clock.items()))
    return "{" + inner + "}"


@dataclass(frozen=True)
class VectorClockViolation(Violation):
    """One happens-before breach observed on the fabric or a mirror."""

    kind: str  # "causal_delivery" | "mirror_race"
    src: int
    dst: int
    detail: str

    def __str__(self) -> str:
        return (
            f"t={self.time}: {self.kind} violation on {self.src}->{self.dst}: "
            f"{self.detail}"
        )


class VectorClockChecker(Sanitizer):
    """Happens-before oracle for message delivery and mirror writes.

    Parameters
    ----------
    env:
        Environment to observe.
    policy:
        ``"raise"`` or ``"record"`` (see :class:`Sanitizer`).
    check_order:
        Enable the per-link causal-delivery and mirror-race checks.
        Pass the network's ``fifo`` flag — a deliberately reordering
        network overtakes and rewinds mirrors by design (that is the
        experiment, see ``tests/test_fifo_assumption.py``), and there
        the protocol's own runtime assertions are the oracle.
    """

    name = "vectorclock"

    def __init__(
        self, env: Environment, policy: str = "raise", check_order: bool = True
    ) -> None:
        self.check_order = check_order
        #: node -> its current vector clock.
        self._clocks: Dict[int, Clock] = {}
        #: envelope send-seq -> stamp taken at send time.
        self._stamps: Dict[int, Clock] = {}
        #: (src, dst) -> stamp of the last untagged delivery on the link.
        self._link_last: Dict[Tuple[int, int], Clock] = {}
        #: (cell, owner, mirror) -> stamp of the last attributed write
        #: (None: last write was unattributed — tracking resets).
        self._mirror_last: Dict[MirrorKey, Optional[Clock]] = {}
        #: (src, dst, stamp) of the delivery currently being handled.
        self._delivery_ctx: Optional[Tuple[int, int, Clock]] = None
        self.messages_stamped = 0
        super().__init__(env, policy)

    def _attach(self) -> None:
        self._listen("net.send", self._on_send)
        self._listen("net.deliver", self._on_deliver)
        self._listen("mirror.update", self._on_mirror_update)
        self._listen("shard.recv", self._on_shard_recv)

    def _clock(self, node: int) -> Clock:
        clock = self._clocks.get(node)
        if clock is None:
            clock = self._clocks[node] = {}
        return clock

    # -- probe handlers ----------------------------------------------------
    def _on_send(self, now: float, envelope: Envelope) -> None:
        if envelope.fault_tag is not None:
            # Retransmissions/duplicates/injected reorders are re-sends
            # of an already-stamped logical message, not new events.
            return
        clock = self._clock(envelope.src)
        clock[envelope.src] = clock.get(envelope.src, 0) + 1
        self._stamps[envelope.seq] = dict(clock)
        self.messages_stamped += 1

    def _on_shard_recv(self, now: float, payload: Any) -> None:
        """Adopt a cross-shard arrival's sender-side stamp.

        The inter-shard router ships the sending checker's stamp with
        every exported envelope; priming the local stamp table under
        the envelope's fresh local sequence number makes the upcoming
        ``net.deliver`` indistinguishable from a same-shard delivery —
        the per-link dominance check and mirror attribution keep
        working across the shard boundary.  Arrivals without a stamp
        (no checker on the sending shard, fault-tagged copies) are
        left alone; :meth:`_on_deliver` already treats an unknown
        stamp as nothing-to-verify.
        """
        if not isinstance(payload, tuple) or len(payload) != 2:
            return  # foreign/synthetic payload shape
        envelope, clock = payload
        if clock is not None and envelope.fault_tag is None:
            self._stamps[envelope.seq] = dict(clock)

    def _on_deliver(self, now: float, envelope: Envelope) -> None:
        if envelope.fault_tag is not None:
            return
        stamp = self._stamps.pop(envelope.seq, None)
        if stamp is None:
            # Sent before this checker attached, or a synthetic
            # white-box injection: nothing to verify, and any
            # following mirror write must not be misattributed.
            self._delivery_ctx = None
            return
        link = (envelope.src, envelope.dst)
        if self.check_order:
            last = self._link_last.get(link)
            if last is not None and not _dominates(stamp, last):
                self._report(
                    VectorClockViolation(
                        now,
                        "causal_delivery",
                        envelope.src,
                        envelope.dst,
                        f"{envelope.kind} #{envelope.seq} delivered with "
                        f"stamp {_fmt(stamp)}, which does not dominate the "
                        f"link's previous delivery {_fmt(last)}",
                    )
                )
            self._link_last[link] = stamp
        clock = self._clock(envelope.dst)
        for node, ticks in stamp.items():
            if ticks > clock.get(node, 0):
                clock[node] = ticks
        clock[envelope.dst] = clock.get(envelope.dst, 0) + 1
        # The kernel calls the handler synchronously after this probe:
        # mirror writes until the next delivery belong to this envelope.
        self._delivery_ctx = (envelope.src, envelope.dst, stamp)

    def _on_mirror_update(self, now: float, payload: Any) -> None:
        if not isinstance(payload, tuple) or len(payload) != 5:
            return  # foreign/synthetic payload shape
        if not self.check_order:
            return  # reordering fabric: stale mirror writes are expected
        cell, owner, mirror, _op, _channel = payload
        key: MirrorKey = (cell, owner, mirror)
        ctx = self._delivery_ctx
        if ctx is None or ctx[1] != cell or ctx[0] != owner:
            # Local write (crash wipe, deferred grant) or a write from
            # some other delivery: attribution unknown — reset rather
            # than guess, so the race check never false-fires.
            self._mirror_last[key] = None
            return
        stamp = ctx[2]
        last = self._mirror_last.get(key)
        if last is not None and not _dominates(stamp, last):
            self._report(
                VectorClockViolation(
                    now,
                    "mirror_race",
                    owner,
                    cell,
                    f"write to {mirror}[{owner}] at cell {cell} carries "
                    f"stamp {_fmt(stamp)}, causally unordered with (or "
                    f"older than) the previous write's {_fmt(last)} — "
                    "last-writer-wins nondeterminism",
                )
            )
        self._mirror_last[key] = stamp
