"""Message-causality and FIFO-delivery checker.

The adaptive protocol's waiting/ACQUISITION handshake silently assumes
per-link FIFO delivery (``tests/test_fifo_assumption.py`` shows what
breaks without it), and every request/response round assumes a node
never answers a round it has not heard about.  This sanitizer asserts
both properties on the live message stream:

* **FIFO** — for each ``(src, dst)`` link, envelopes must be delivered
  in send order (send sequence numbers are globally increasing, so
  per-link delivery order must be too).  Checked only when the network
  is configured FIFO — a ``fifo=False`` network is *allowed* to
  reorder, that is the experiment.
* **No reply-before-request** — a reply for round ``R`` sent by node
  ``j`` to node ``i`` must be causally preceded by ``j`` *processing*
  ``i``'s REQUEST or CHANGE_MODE carrying round ``R`` (the protocols
  announce this on the ``proto.request`` probe from their handlers, so
  white-box tests that inject messages straight into handlers are
  covered too).  Each responder answers a round at most once; a second
  reply is flagged as well.
* **No time travel** — an envelope's delivery time is never before its
  send time.

State grows with the number of open rounds; rounds are forgotten as
soon as the (single) response of each responder is observed, keeping
the per-node footprint proportional to in-flight traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set, Tuple

from ..protocols.messages import Response
from ..protocols.prakash import PollResponse, TransferReply
from ..sim import Envelope, Environment
from .base import Sanitizer, Violation

__all__ = ["CausalityViolation", "CausalityChecker"]

#: Payload types that answer a previously processed round.  Requests
#: (Request, ChangeMode, Prakash's Transfer) also carry round ids, so
#: replies are matched by type, not by attribute sniffing.
REPLY_TYPES = (Response, PollResponse, TransferReply)


@dataclass(frozen=True)
class CausalityViolation(Violation):
    """One causality breach on the message fabric."""

    kind: str  # "fifo" | "reply_before_request" | "time_travel"
    src: int
    dst: int
    detail: str

    def __str__(self) -> str:
        return (
            f"t={self.time}: {self.kind} violation on link "
            f"{self.src}->{self.dst}: {self.detail}"
        )


class CausalityChecker(Sanitizer):
    """Asserts per-link FIFO delivery and request/response causality.

    Parameters
    ----------
    env:
        Environment to observe.
    policy:
        ``"raise"`` or ``"record"`` (see :class:`Sanitizer`).
    check_fifo:
        Enable the per-link ordering check.  Pass the network's
        ``fifo`` flag: over a deliberately reordering network the
        protocol's own runtime assertions are the oracle, not this.
    """

    name = "causality"

    def __init__(
        self, env: Environment, policy: str = "raise", check_fifo: bool = True
    ) -> None:
        self.check_fifo = check_fifo
        #: (src, dst) -> highest send-sequence number delivered so far.
        self._delivered_seq: Dict[Tuple[int, int], int] = {}
        #: responder -> set of (requester, round_id) whose request the
        #: responder has processed and not yet answered.
        self._open_rounds: Dict[int, Set[Tuple[int, int]]] = {}
        self.messages_checked = 0
        super().__init__(env, policy)

    def _attach(self) -> None:
        self._listen("net.send", self._on_send)
        self._listen("net.deliver", self._on_deliver)
        self._listen("proto.request", self._on_request_seen)

    # -- probe handlers ----------------------------------------------------
    def _on_send(self, now: float, envelope: Envelope) -> None:
        if envelope.deliver_at < envelope.sent_at:
            self._report(
                CausalityViolation(
                    now,
                    "time_travel",
                    envelope.src,
                    envelope.dst,
                    f"{envelope.kind} #{envelope.seq} delivers at "
                    f"{envelope.deliver_at} < sent at {envelope.sent_at}",
                )
            )
        payload = envelope.payload
        if envelope.fault_tag is not None:
            # ARQ retransmissions and injector copies re-send payloads
            # whose round bookkeeping already happened at the original
            # send (and an injected reorder may carry a reply out of
            # clamp); they are not protocol actions — skip the
            # reply-matching for them.
            return
        if isinstance(payload, REPLY_TYPES):
            key = (envelope.dst, payload.round_id)
            open_rounds = self._open_rounds.get(envelope.src)
            if open_rounds is None or key not in open_rounds:
                self._report(
                    CausalityViolation(
                        now,
                        "reply_before_request",
                        envelope.src,
                        envelope.dst,
                        f"{type(payload).__name__} for round "
                        f"{payload.round_id} without a processed request",
                    )
                )
            else:
                open_rounds.discard(key)

    def _on_deliver(self, now: float, envelope: Envelope) -> None:
        self.messages_checked += 1
        if self.check_fifo:
            if envelope.fault_tag is not None:
                # An injected reorder legitimately overtakes (and must
                # not drag the link's FIFO watermark forward); clamped
                # retransmissions/duplicates are in order but carry
                # later sequence numbers than the untagged stream, so
                # they neither need checking nor advance the watermark.
                return
            link = (envelope.src, envelope.dst)
            last = self._delivered_seq.get(link, 0)
            if envelope.seq < last:
                self._report(
                    CausalityViolation(
                        now,
                        "fifo",
                        envelope.src,
                        envelope.dst,
                        f"{envelope.kind} #{envelope.seq} delivered after "
                        f"#{last} (send order overtaken)",
                    )
                )
            else:
                self._delivered_seq[link] = envelope.seq

    def _on_request_seen(self, now: float, payload: Tuple[int, int, int]) -> None:
        responder, requester, round_id = payload
        self._open_rounds.setdefault(responder, set()).add(
            (requester, round_id)
        )
