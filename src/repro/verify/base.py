"""Common sanitizer machinery: violations, policies, probe plumbing.

Every sanitizer observes the simulation through the engine's probe bus
and never mutates simulation state; the only side effect it may have is
raising an :class:`AssertionError` under the ``"raise"`` policy — the
same contract as :class:`repro.protocols.InterferenceMonitor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..sim import Environment
from ..sim.engine import ProbeCallback

__all__ = ["Violation", "Sanitizer"]


@dataclass(frozen=True)
class Violation:
    """Base class for one observed invariant violation."""

    time: float

    def __str__(self) -> str:  # pragma: no cover - subclasses override
        return f"t={self.time}: {type(self).__name__}"


class Sanitizer:
    """Base class: policy handling and probe subscription bookkeeping.

    Parameters
    ----------
    env:
        The environment whose probe bus to observe.
    policy:
        ``"raise"`` — raise ``AssertionError`` on a violation (tests);
        ``"record"`` — append to :attr:`violations` and continue.
    """

    #: Short name used in reports (subclasses override).
    name = "sanitizer"

    def __init__(self, env: Environment, policy: str = "raise") -> None:
        if policy not in ("raise", "record"):
            raise ValueError(f"unknown policy {policy!r}")
        self.env = env
        self.policy = policy
        self.violations: List[Violation] = []
        self._subscriptions: List[Tuple[str, ProbeCallback]] = []
        self._attach()

    # -- wiring ------------------------------------------------------------
    def _attach(self) -> None:
        """Subscribe to probe kinds (subclasses use :meth:`_listen`)."""

    def _listen(self, kind: str, callback: ProbeCallback) -> None:
        """Subscribe and remember it so :meth:`detach` can undo it."""
        self.env.subscribe(kind, callback)
        self._subscriptions.append((kind, callback))

    def detach(self) -> None:
        """Unsubscribe from every probe kind (sanitizer goes inert)."""
        for kind, callback in self._subscriptions:
            self.env.unsubscribe(kind, callback)
        self._subscriptions.clear()

    # -- verdicts ----------------------------------------------------------
    def _report(self, violation: Violation) -> None:
        """Apply the policy to a freshly detected violation."""
        if self.policy == "raise":
            raise AssertionError(str(violation))
        self.violations.append(violation)

    def assert_clean(self) -> None:
        """Raise if any violation was recorded (for record-mode tests)."""
        if self.violations:
            raise AssertionError(
                f"{self.name}: {len(self.violations)} violations recorded; "
                f"first: {self.violations[0]}"
            )
