"""Wait-for-graph deadlock detector — a runtime oracle for Theorem 2.

The paper's Theorem 2 argues the mode-2 (borrow update) / mode-3
(borrow search) handshake is deadlock-free because every wait-for edge
points at a request with a strictly smaller timestamp, so no cycle can
close.  This sanitizer checks the conclusion directly: it maintains the
wait-for graph incrementally and flags any cycle the moment its closing
edge appears.

An edge ``waiter -> holder`` exists while ``holder`` is the reason
``waiter`` cannot make progress:

* **defer** — ``holder`` postponed its RESPONSE to ``waiter``'s REQUEST
  into its DeferQ (a node with an older in-flight claim defers younger
  requests until its own acquisition completes).  The edge is removed
  when the deferred answer is *sent* — a reply in flight is not a wait,
  its delivery is guaranteed within one link latency.
* **gate** — ``waiter``'s own request is parked on the waiting gate
  (Fig. 2's "wait UNTIL waiting = 0") until ``holder``'s search
  concludes.  The edge is anchored to the *open search* it waits for:
  it exists only between the search's REQUEST broadcast
  (``search.begin``) and its ACQUISITION broadcast (``search.end``).
  An owed acknowledgment whose ACQUISITION is already in flight blocks
  nobody — without this anchoring, saturation workloads show transient
  phantom cycles through searches that have in fact completed.

Edges come from the protocol's probe emissions (``wait.block`` /
``wait.unblock`` / ``search.begin`` / ``search.end``); tests may also
drive :meth:`block` / :meth:`unblock` directly to build synthetic
graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..sim import Environment
from .base import Sanitizer, Violation

__all__ = ["DeadlockViolation", "DeadlockDetector"]


@dataclass(frozen=True)
class DeadlockViolation(Violation):
    """A cycle in the wait-for graph (a deadlock, per Theorem 2)."""

    cycle: Tuple[int, ...]

    def __str__(self) -> str:
        chain = " -> ".join(str(cell) for cell in self.cycle)
        return (
            f"t={self.time}: wait-for cycle {chain} -> {self.cycle[0]} "
            f"(Theorem 2 violated)"
        )


class DeadlockDetector(Sanitizer):
    """Incrementally maintained wait-for graph with cycle detection.

    The graph is tiny (one node per MSS, edges only while requests are
    postponed), so a depth-first reachability check on each edge
    insertion is cheap and gives the earliest possible detection time.
    """

    name = "deadlock"

    def __init__(self, env: Environment, policy: str = "raise") -> None:
        #: waiter -> set of holders it is blocked on.
        self.waits_on: Dict[int, Set[int]] = {}
        #: (waiter, holder) -> reason string (debugging aid).
        self.reasons: Dict[Tuple[int, int], str] = {}
        #: searcher -> timestamp of its open (unconcluded) search.
        self.open_searches: Dict[int, Tuple[float, int]] = {}
        #: Running counters for reporting.
        self.edges_added = 0
        self.edges_removed = 0
        super().__init__(env, policy)

    def _attach(self) -> None:
        self._listen("wait.block", self._on_block)
        self._listen("wait.unblock", self._on_unblock)
        self._listen("search.begin", self._on_search_begin)
        self._listen("search.end", self._on_search_end)

    # -- probe handlers ----------------------------------------------------
    def _on_block(self, now: float, payload: Tuple[int, int, str, object]) -> None:
        waiter, holder, reason, ts = payload
        if reason == "gate" and self.open_searches.get(holder) != ts:
            # The search this acknowledgment belongs to has already
            # broadcast its ACQUISITION (it is in flight to the waiter):
            # nothing blocks, no edge.
            return
        self.block(waiter, holder, reason, time=now)

    def _on_unblock(self, now: float, payload: Tuple[int, int]) -> None:
        waiter, holder = payload
        self.unblock(waiter, holder)

    def _on_search_begin(self, now: float, payload: Tuple[int, object]) -> None:
        searcher, ts = payload
        self.open_searches[searcher] = ts

    def _on_search_end(self, now: float, searcher: int) -> None:
        self.open_searches.pop(searcher, None)
        # The searcher's ACQUISITION broadcast is in flight: every gate
        # wait on this search is resolved.
        for waiter in [
            w for w, holders in self.waits_on.items() if searcher in holders
        ]:
            if self.reasons.get((waiter, searcher)) == "gate":
                self.unblock(waiter, searcher)

    # -- graph maintenance -------------------------------------------------
    def block(
        self, waiter: int, holder: int, reason: str = "manual",
        time: Optional[float] = None,
    ) -> None:
        """Add edge ``waiter -> holder``; idempotent for existing edges."""
        holders = self.waits_on.setdefault(waiter, set())
        if holder in holders:
            return
        holders.add(holder)
        self.reasons[(waiter, holder)] = reason
        self.edges_added += 1
        cycle = self._find_cycle(waiter, holder)
        if cycle is not None:
            at = self.env.now if time is None else time
            self._report(DeadlockViolation(at, tuple(cycle)))

    def unblock(self, waiter: int, holder: int) -> None:
        """Remove edge ``waiter -> holder`` if present (tolerant)."""
        holders = self.waits_on.get(waiter)
        if holders is None or holder not in holders:
            return
        holders.discard(holder)
        if not holders:
            del self.waits_on[waiter]
        del self.reasons[(waiter, holder)]
        self.edges_removed += 1

    def blocked_on(self, waiter: int) -> Set[int]:
        """Current holders ``waiter`` is waiting for (empty if none)."""
        return set(self.waits_on.get(waiter, ()))

    @property
    def edge_count(self) -> int:
        return sum(len(holders) for holders in self.waits_on.values())

    def _find_cycle(self, waiter: int, holder: int) -> Optional[List[int]]:
        """DFS from ``holder``: a path back to ``waiter`` closes a cycle
        through the just-added edge.  Returns the cycle as a list
        ``[waiter, holder, ..., last]`` or ``None``."""
        stack = [(holder, [waiter, holder])]
        seen = {holder}
        while stack:
            node, path = stack.pop()
            for nxt in self.waits_on.get(node, ()):
                if nxt == waiter:
                    return path
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None
