"""Bundle of all runtime sanitizers, attached in one call.

``SanitizerSuite(env, network)`` wires a :class:`DeadlockDetector`, a
:class:`CausalityChecker`, a :class:`VectorClockChecker` and a
:class:`QuiescenceChecker` to the environment's probe bus.  The harness attaches one automatically when
:func:`repro.verify.set_default_policy` is active (the pytest suite
turns it on globally), so every scenario run is sanitized without any
per-test plumbing.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim import Environment, Network
from .base import Sanitizer, Violation
from .causality import CausalityChecker
from .deadlock import DeadlockDetector
from .quiescence import QuiescenceChecker
from .vectorclock import VectorClockChecker

__all__ = ["SanitizerSuite"]


class SanitizerSuite:
    """All four sanitizers behind one attach/detach/assert interface.

    Parameters
    ----------
    env:
        The simulation environment to observe.
    network:
        The message fabric (optional).  Only used to decide whether the
        FIFO-ordering check applies: a ``fifo=False`` network reorders
        by design, so only the causal (reply-before-request) checks
        remain active there.
    policy:
        ``"raise"`` or ``"record"``, applied to every sanitizer.
    """

    def __init__(
        self,
        env: Environment,
        network: Optional[Network] = None,
        policy: str = "raise",
    ) -> None:
        self.env = env
        self.policy = policy
        check_fifo = network.fifo if network is not None else True
        self.deadlock = DeadlockDetector(env, policy=policy)
        self.causality = CausalityChecker(env, policy=policy, check_fifo=check_fifo)
        self.vector_clock = VectorClockChecker(
            env, policy=policy, check_order=check_fifo
        )
        self.quiescence = QuiescenceChecker(env, policy=policy)

    @property
    def sanitizers(self) -> List[Sanitizer]:
        return [self.deadlock, self.causality, self.vector_clock, self.quiescence]

    @property
    def violations(self) -> List[Violation]:
        """All recorded violations, in sanitizer order."""
        found: List[Violation] = []
        for sanitizer in self.sanitizers:
            found.extend(sanitizer.violations)
        return found

    def finalize(self) -> None:
        """Run end-of-run checks.  Call only after traffic has drained."""
        self.quiescence.finalize()

    def assert_clean(self) -> None:
        """Raise if any sanitizer recorded a violation."""
        for sanitizer in self.sanitizers:
            sanitizer.assert_clean()

    def detach(self) -> None:
        """Unsubscribe every sanitizer (the suite goes inert)."""
        for sanitizer in self.sanitizers:
            sanitizer.detach()
