"""Protocol hardening primitives: acknowledgements, retransmission,
duplicate suppression.

The schemes in this repository were written against a reliable FIFO
network.  When a :class:`~repro.faults.plan.FaultPlan` is active, every
MSS routes its control messages through a :class:`ReliableLink` — a
stop-and-wait ARQ per logical message:

* every protocol message is acknowledged by the receiver with a tiny
  :class:`Ack` carrying the envelope's ``msg_id``;
* an unacknowledged message is retransmitted after an RTO sized from
  the latency model's worst-case round trip, with exponential backoff,
  up to ``max_retries`` times;
* retransmissions reuse the original ``msg_id``, so the receiver-side
  :class:`DedupFilter` delivers each logical message to the handler
  exactly once no matter how many copies (injected duplicates or
  retransmissions) arrive;
* the window is **one message per destination**: while a message to
  ``dst`` is unacknowledged, later sends to ``dst`` wait in a FIFO
  queue.  This restores the in-*order* half of the reliable-FIFO
  contract, not just the delivery half.  It is load-bearing for
  safety: a retransmission is a *late* copy, and if newer traffic
  could overtake it, a stale full-state STATUS response could arrive
  after a newer ACQUISITION and wipe the just-recorded channel from
  the receiver's ``U_j`` mirror — which is exactly a co-channel
  violation waiting to happen (the mirror is what local-mode
  acquisitions trust without any round).

Reliability is therefore end-to-end *per direction*: a request/response
round survives loss as long as no single message exhausts its retry
budget (probability ``p^(max_retries+1)`` under i.i.d. loss ``p``).
When the budget *is* exhausted — heavy loss, a partition outlasting the
backoff schedule, or a crashed peer — the protocols fall back to their
round deadlines and resolve the round conservatively (missing verdicts
count as rejections; searches abandon), which preserves mutual
exclusion at the price of liveness.  See docs/PROTOCOL.md §10.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Optional, Set, Tuple

__all__ = ["Ack", "Hardening", "ReliableLink", "DedupFilter"]


@dataclass(frozen=True)
class Ack:
    """Link-layer acknowledgement for envelope ``msg_id``.

    Acks are sent outside the ARQ (no ack-of-ack) and are themselves
    subject to fault injection; a lost ack simply costs the sender one
    retransmission, which the receiver's dedup filter absorbs.
    """

    msg_id: int


@dataclass(frozen=True)
class Hardening:
    """Resolved hardening parameters (all timeouts concrete).

    Built by :meth:`from_plan`, which sizes the timers from the
    latency model's ``max_delay`` plus the plan's worst injected
    delay:

    * ``rto`` — 2.5× the worst one-way delay: strictly above the
      worst-case round trip (request out + ack back), so a timer can
      never fire before an in-flight ack on a healthy link.
    * ``round_deadline`` — bounds a full request/response round: two
      ARQ budgets (request leg + response leg, each a geometric backoff
      series) plus slack.  A round that blows this deadline resolves
      conservatively.
    * ``ack_timeout`` — backstop for the adaptive scheme's owed-ack
      ``waiting`` counter: strictly above ``round_deadline`` plus one
      ARQ budget, so it can only fire after the search it tracks has
      certainly concluded (or died) — clearing early would undermine
      the Theorem 1 case 1(c) argument.
    """

    max_retries: int
    backoff: float
    rto: float
    round_deadline: float
    ack_timeout: float

    @classmethod
    def from_plan(cls, plan: Any, max_one_way: float) -> "Hardening":
        """Size every timeout from the worst one-way latency.

        ``max_one_way`` must already include the plan's injected extra
        delay (``latency.max_delay + plan.max_extra_delay()``).
        """
        rto = plan.rto if plan.rto is not None else 2.5 * max_one_way
        # Total time one message can spend in the ARQ before giving up:
        # rto * (1 + b + b^2 + ... + b^retries) plus the final flight.
        budget = 0.0
        for attempt in range(plan.max_retries + 1):
            budget += rto * plan.backoff**attempt
        budget += max_one_way
        round_deadline = (
            plan.round_deadline
            if plan.round_deadline is not None
            else 2.0 * budget + 4.0 * max_one_way
        )
        ack_timeout = (
            plan.ack_timeout
            if plan.ack_timeout is not None
            else round_deadline + budget + 4.0 * max_one_way
        )
        return cls(
            max_retries=plan.max_retries,
            backoff=plan.backoff,
            rto=rto,
            round_deadline=round_deadline,
            ack_timeout=ack_timeout,
        )


class _Pending:
    """One unacknowledged message in the ARQ window."""

    __slots__ = ("dst", "payload", "attempt")

    def __init__(self, dst: int, payload: Any) -> None:
        self.dst = dst
        self.payload = payload
        self.attempt = 0


class ReliableLink:
    """Sender-side per-destination stop-and-wait ARQ for one MSS.

    ``send`` transmits through the network and arms a retransmission
    timer; ``on_ack`` clears the pending entry.  The timer resends with
    the *same* ``msg_id`` (receiver dedup makes delivery exactly-once)
    and exponential backoff until ``max_retries`` is exhausted, then
    reports the message as undeliverable on the probe bus
    (``fault.retry_exhausted``) and gives up — the protocol's round
    deadline takes it from there.

    At most one message per destination is in flight; later sends to
    the same destination queue until the ack (or retry exhaustion)
    frees the link.  Delivered messages therefore arrive in send order
    per (src, dst) pair even across retransmissions — see the module
    docstring for why mutual exclusion depends on this.
    """

    def __init__(
        self,
        env: Any,
        network: Any,
        node_id: int,
        config: Hardening,
        metrics: Any = None,
    ) -> None:
        self.env = env
        self.network = network
        self.node_id = node_id
        self.config = config
        self.metrics = metrics
        #: True while the owning MSS is crashed; suppresses timers.
        self.down = False
        self._pending: Dict[int, _Pending] = {}
        #: msg_id of the single in-flight message per destination.
        self._inflight: Dict[int, int] = {}
        #: Sends awaiting their turn on a busy destination link.
        self._queue: Dict[int, Deque[Any]] = {}
        #: Diagnostics counters.
        self.retransmissions = 0
        self.recovered = 0
        self.exhausted = 0

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    def send(self, dst: int, payload: Any) -> None:
        """Transmit ``payload`` reliably, in order (bounded retries)."""
        if dst in self._inflight:
            self._queue.setdefault(dst, deque()).append(payload)
            return
        self._transmit(dst, payload)

    def on_ack(self, ack: Ack) -> None:
        record = self._pending.pop(ack.msg_id, None)
        if record is None:
            return
        if record.attempt > 0:
            # At least one retransmission was needed and it got through.
            self.recovered += 1
            if self.metrics is not None:
                self.metrics.record_fault_recovery("retransmit")
            self.env.emit(
                "fault.recovered", (self.node_id, record.dst, ack.msg_id)
            )
        self._link_free(record.dst, ack.msg_id)

    def flush(self) -> None:
        """Abandon all pending/queued messages (crash: state lost)."""
        self._pending.clear()
        self._inflight.clear()
        self._queue.clear()

    # -- per-destination ordering ------------------------------------------
    def _transmit(self, dst: int, payload: Any) -> None:
        envelope = self.network.send(self.node_id, dst, payload)
        self._pending[envelope.msg_id] = _Pending(dst, payload)
        self._inflight[dst] = envelope.msg_id
        self._arm(envelope.msg_id, self.config.rto)

    def _link_free(self, dst: int, msg_id: int) -> None:
        """The in-flight message settled; release the next queued send."""
        if self._inflight.get(dst) != msg_id:
            return  # flushed and re-used in the meantime
        del self._inflight[dst]
        queue = self._queue.get(dst)
        if queue:
            self._transmit(dst, queue.popleft())
        elif queue is not None:
            del self._queue[dst]

    # -- timers ------------------------------------------------------------
    def _arm(self, msg_id: int, delay: float) -> None:
        timer = self.env.timeout(delay, msg_id)
        timer.callbacks.append(self._on_timer)

    def _on_timer(self, event: Any) -> None:
        msg_id = event._value
        record = self._pending.get(msg_id)
        if record is None:
            return  # acknowledged in time
        if self.down:
            del self._pending[msg_id]
            self._inflight.pop(record.dst, None)
            return
        if record.attempt >= self.config.max_retries:
            del self._pending[msg_id]
            self.exhausted += 1
            if self.metrics is not None:
                self.metrics.record_retry_exhausted()
            self.env.emit(
                "fault.retry_exhausted", (self.node_id, record.dst, msg_id)
            )
            # Give up on this message but not on the link: later queued
            # sends still go out (in order — the lost message simply
            # has no delivery for them to overtake).
            self._link_free(record.dst, msg_id)
            return
        record.attempt += 1
        self.retransmissions += 1
        if self.metrics is not None:
            self.metrics.record_retry()
        self.env.emit(
            "fault.retransmit",
            (self.node_id, record.dst, msg_id, record.attempt),
        )
        self.network.send(
            self.node_id,
            record.dst,
            record.payload,
            msg_id=msg_id,
            fault_tag="retrans",
        )
        self._arm(msg_id, self.config.rto * self.config.backoff**record.attempt)


class DedupFilter:
    """Receiver-side duplicate suppression keyed on ``Envelope.msg_id``.

    Tracks recently seen ids per source in a bounded window (ids are
    monotonically increasing per network, and duplicates can only
    arrive within the ARQ's bounded retry horizon, so a small window is
    exact in practice).
    """

    def __init__(self, window: int = 512) -> None:
        self.window = window
        self._seen: Dict[int, Tuple[Set[int], Deque[int]]] = {}
        self.suppressed = 0

    def accept(self, src: int, msg_id: int) -> bool:
        """Record (src, msg_id); False if it was already seen."""
        entry = self._seen.get(src)
        if entry is None:
            entry = (set(), deque())
            self._seen[src] = entry
        seen, order = entry
        if msg_id in seen:
            self.suppressed += 1
            return False
        seen.add(msg_id)
        order.append(msg_id)
        if len(order) > self.window:
            seen.discard(order.popleft())
        return True

    def reset(self) -> None:
        """Forget everything (crash with state loss)."""
        self._seen.clear()
