"""Fault injection for the message fabric, plus protocol hardening.

The paper (and every scheme reproduced here) assumes a perfectly
reliable FIFO network: messages are delayed but never lost, duplicated
or reordered beyond the latency model, and an MSS never crashes.  This
subpackage removes that assumption *measurably*:

* :class:`FaultPlan` — a declarative, seeded description of the faults
  to inject: per-message drop / duplicate / extra-delay / reorder
  probabilities, scheduled link partitions between cell pairs, and MSS
  crash–restart windows with configurable state loss.  Plans serialize
  inside :class:`~repro.harness.config.Scenario`, so faulty runs are
  cacheable and reproducible like any other experiment cell.
* :class:`FaultInjector` — hooks a plan into the
  :class:`~repro.sim.network.Network` send/delivery path through a
  narrow interface (``network.injector``), draws every fault decision
  from a dedicated seeded stream, and reports each injected fault on
  the probe bus (``env.emit("fault.*", ...)``) and to the metrics
  collector.
* :class:`Hardening` / the ARQ layer (:mod:`repro.faults.arq`) — the
  protocol-side counterpart: per-message acknowledgement timeouts
  sized from the latency model's ``max_delay``, bounded retransmission
  with exponential backoff, duplicate suppression keyed on the
  network's monotonically increasing ``Envelope.msg_id``, and the
  round deadlines / crash-recovery re-sync used by the MSS classes.

With no plan configured (the default) none of this is wired in and the
simulator's behavior is bit-identical to the fault-free system.
"""

from .arq import Ack, Hardening, ReliableLink
from .injector import FaultInjector
from .plan import CrashWindow, FaultPlan, LinkPartition

__all__ = [
    "Ack",
    "CrashWindow",
    "FaultInjector",
    "FaultPlan",
    "Hardening",
    "LinkPartition",
    "ReliableLink",
]
