"""The fault injector: applies a :class:`~repro.faults.plan.FaultPlan`
to the live message stream.

The injector plugs into the network through a two-method interface
(``network.injector``):

* :meth:`filter_send` — consulted once per ``Network.send`` call,
  before FIFO bookkeeping; returns the list of delivery actions
  (possibly empty = dropped, possibly two = duplicated) for the
  message.
* :meth:`deliverable` — consulted at delivery time; vetoes delivery to
  a crashed destination.

Every per-message decision draws from a dedicated seeded *per-link*
stream (``("faults", "net", src, dst)``), so a given (seed, plan) pair
always yields the same fault schedule per link regardless of worker
count — and regardless of how the grid is sharded: a link's draw
sequence depends only on that link's own send history, never on the
global interleaving of sends across links, which differs between a
single kernel and a sharded run.  Every injected fault is announced on
the probe bus
(``fault.drop``, ``fault.duplicate``, ``fault.delay``,
``fault.reorder``, ``fault.partition``, ``fault.crash``,
``fault.crash_drop``, ``fault.restart``) and counted by the metrics
collector.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from .plan import FaultPlan

__all__ = ["FaultInjector", "FAULT_KINDS"]

#: Every fault kind :meth:`FaultInjector._record` can announce on the
#: probe bus (as ``fault.<kind>``).  The emit site is an f-string, so
#: this tuple is the machine-readable catalog entry for it — the
#: probe-bus contract test (tests/test_probe_catalog.py) expands it
#: against docs/OBSERVABILITY.md.
FAULT_KINDS = (
    "drop",
    "duplicate",
    "delay",
    "reorder",
    "partition",
    "crash",
    "crash_drop",
    "restart",
)

#: A delivery action: (one-way delay, fault tag, respect-FIFO-clamp).
Action = Tuple[float, Optional[str], bool]


class FaultInjector:
    """Applies a fault plan to every message crossing the network.

    Parameters
    ----------
    env:
        Simulation environment (probe bus + crash process host).
    plan:
        The :class:`FaultPlan` to execute.
    streams:
        The run's :class:`~repro.sim.rng.StreamRegistry`; the injector
        draws each link's decisions from its own named substream
        (``("faults", "net", src, dst)``) — never shared with traffic
        or latency streams, so enabling faults cannot perturb their
        draws, and never shared across links, so fault realizations
        are identical for any sharding of the grid.
    latency:
        The network's latency model; duplicate copies are delivered one
        fresh latency sample after the original.
    metrics:
        Optional :class:`repro.metrics.MetricsCollector` for the
        injected/recovered counters.
    """

    def __init__(
        self,
        env: Any,
        plan: FaultPlan,
        streams: Any,
        latency: Any,
        metrics: Any = None,
    ) -> None:
        self.env = env
        self.plan = plan
        self.streams = streams
        self.latency = latency
        self.metrics = metrics
        #: (src, dst) -> that link's decision stream (memoized locally;
        #: the registry would re-derive the same generator).
        self._link_rngs: Dict[Tuple[int, int], Any] = {}
        #: Cells currently crashed (no sends, no deliveries).
        self.down: Set[int] = set()
        #: Injected-fault counts by kind (injector-local diagnostics;
        #: the metrics collector keeps the authoritative per-run copy).
        self.injected: Dict[str, int] = {}

    def _link_rng(self, src: int, dst: int) -> Any:
        link = (src, dst)
        rng = self._link_rngs.get(link)
        if rng is None:
            rng = self._link_rngs[link] = self.streams.stream(
                "faults", "net", src, dst
            )
        return rng

    # -- bookkeeping -------------------------------------------------------
    def _record(self, kind: str, detail: Any) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        if self.metrics is not None:
            self.metrics.record_fault(kind)
        self.env.emit(f"fault.{kind}", detail)

    # -- network interface -------------------------------------------------
    def filter_send(
        self,
        src: int,
        dst: int,
        payload: Any,
        delay: float,
        tag: Optional[str],
    ) -> Tuple[Action, ...]:
        """Decide the delivery action(s) for one sent message.

        Returns a tuple of ``(delay, fault_tag, clamp)`` actions —
        empty when the message is lost.  ``clamp=False`` bypasses the
        per-link FIFO floor (injected reordering); everything else
        stays FIFO: an extra delay raises the floor (head-of-line
        blocking) and a duplicate is a later, ordered copy.
        """
        now = self.env._now
        if src in self.down or dst in self.down:
            self._record("crash_drop", (src, dst, type(payload).__name__))
            return ()
        for partition in self.plan.partitions:
            if partition.severs(src, dst, now):
                self._record("partition", (src, dst, type(payload).__name__))
                return ()
        plan = self.plan
        rng = self._link_rng(src, dst)
        if plan.drop_prob and rng.random() < plan.drop_prob:
            self._record("drop", (src, dst, type(payload).__name__))
            return ()
        clamp = True
        if plan.delay_prob and rng.random() < plan.delay_prob:
            extra = float(rng.uniform(0.0, plan.extra_delay))
            delay += extra
            self._record("delay", (src, dst, extra))
        if plan.reorder_prob and rng.random() < plan.reorder_prob:
            extra = float(rng.uniform(0.0, plan.reorder_delay))
            delay += extra
            clamp = False
            # Keep "retrans" provenance if the ARQ tagged this copy; the
            # sanitizers relax their checks for any non-None tag.
            tag = tag or "reorder"
            self._record("reorder", (src, dst, extra))
        actions: List[Action] = [(delay, tag, clamp)]
        if plan.dup_prob and rng.random() < plan.dup_prob:
            dup_delay = delay + float(self.latency.sample(src, dst))
            actions.append((dup_delay, "dup", True))
            self._record("duplicate", (src, dst, type(payload).__name__))
        return tuple(actions)

    def deliverable(self, envelope: Any) -> bool:
        """Veto delivery to a crashed destination (in-flight loss)."""
        if envelope.dst in self.down:
            self._record(
                "crash_drop", (envelope.src, envelope.dst, envelope.kind)
            )
            return False
        return True

    # -- crash schedule ----------------------------------------------------
    def install(
        self, stations: Dict[int, Any], shadow: Iterable[int] = ()
    ) -> None:
        """Spawn one crash–restart process per scheduled window.

        ``shadow`` lists cells this kernel does *not* own (sharded
        runs): a window targeting a shadow cell only toggles the
        ``down`` set — so the send-side ``crash_drop`` veto applies on
        every shard — while the station hooks, fault accounting and
        probe emissions run once, on the owning shard.
        """
        shadow_cells = frozenset(shadow)
        for window in self.plan.crashes:
            if window.cell in stations:
                self.env.process(
                    self._crash_process(stations[window.cell], window)
                )
            elif window.cell in shadow_cells:
                self.env.process(self._shadow_crash_process(window))
            else:
                raise ValueError(
                    f"crash window targets unknown cell {window.cell}"
                )

    def _crash_process(self, station: Any, window: Any):
        yield self.env.timeout(window.at)
        self.down.add(window.cell)
        self._record("crash", (window.cell, window.lose_state))
        station._crash(window.lose_state)
        yield self.env.timeout(window.downtime)
        self.down.discard(window.cell)
        self._record("restart", (window.cell,))
        station._restart()

    def _shadow_crash_process(self, window: Any):
        """Mirror a remote cell's crash window into the ``down`` set."""
        yield self.env.timeout(window.at)
        self.down.add(window.cell)
        yield self.env.timeout(window.downtime)
        self.down.discard(window.cell)
