"""Declarative fault plans.

A :class:`FaultPlan` describes *what* to inject; the
:class:`~repro.faults.injector.FaultInjector` decides *when*, drawing
from a dedicated seeded stream so that the same (seed, plan) pair
always produces the same fault schedule — byte-identical metrics
across runs and across worker counts.

Plans are plain frozen dataclasses with a JSON-safe ``to_dict`` /
``from_dict`` pair so they ride inside
:class:`~repro.harness.config.Scenario` (and therefore inside the
persistent result cache's content-hash keys).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Optional, Tuple

__all__ = ["LinkPartition", "CrashWindow", "FaultPlan"]


@dataclass(frozen=True)
class LinkPartition:
    """A scheduled partition between two cells.

    While ``start <= now < end`` every message between ``a`` and ``b``
    (both directions) is dropped at send time.  Messages already in
    flight when the partition begins are delivered — the partition
    models a severed link, not retroactive loss.
    """

    a: int
    b: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("partition needs start < end")

    def severs(self, src: int, dst: int, now: float) -> bool:
        if not (self.start <= now < self.end):
            return False
        return (src == self.a and dst == self.b) or (
            src == self.b and dst == self.a
        )


@dataclass(frozen=True)
class CrashWindow:
    """One MSS crash–restart cycle.

    The station at ``cell`` fails at time ``at`` (all its calls drop,
    messages to and from it are lost) and restarts ``downtime`` later.
    ``lose_state=True`` (the default) models a cold restart: every
    volatile protocol structure — mirrored neighbor state, deferred
    queues, owed acknowledgements — is wiped and rebuilt through the
    neighborhood re-sync round; ``False`` models a fail-stop blip that
    keeps memory contents.
    """

    cell: int
    at: float
    downtime: float
    lose_state: bool = True

    def __post_init__(self) -> None:
        if self.at < 0 or self.downtime <= 0:
            raise ValueError("crash needs at >= 0 and downtime > 0")


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of the faults to inject into one run.

    Message-level probabilities apply independently per sent message:

    drop_prob:
        The message is lost (never delivered).
    dup_prob:
        A second copy is delivered one fresh latency sample later.
    delay_prob / extra_delay:
        The message (and, on a FIFO network, everything queued behind
        it on the same link) is delayed by an extra Uniform(0,
        ``extra_delay``] — head-of-line blocking, order preserved.
    reorder_prob / reorder_delay:
        The message is held back by Uniform(0, ``reorder_delay``]
        *bypassing* the per-link FIFO floor, so later sends overtake
        it.  The delivered envelope is flagged so the causality
        sanitizer knows the overtake was injected, not a kernel bug.

    ``partitions`` and ``crashes`` schedule deterministic topology
    faults; see :class:`LinkPartition` and :class:`CrashWindow`.

    The hardening knobs (``max_retries``, ``backoff``, ``rto``,
    ``round_deadline``, ``ack_timeout``) parameterize the protocol-side
    recovery machinery; ``None`` means "derive from the latency model"
    (see :class:`repro.faults.arq.Hardening`).
    """

    drop_prob: float = 0.0
    dup_prob: float = 0.0
    delay_prob: float = 0.0
    extra_delay: float = 0.0
    reorder_prob: float = 0.0
    reorder_delay: float = 0.0
    partitions: Tuple[LinkPartition, ...] = ()
    crashes: Tuple[CrashWindow, ...] = ()
    # -- protocol-hardening knobs (active only while the plan is) --------
    max_retries: int = 3
    backoff: float = 2.0
    rto: Optional[float] = None
    round_deadline: Optional[float] = None
    ack_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("drop_prob", "dup_prob", "delay_prob", "reorder_prob"):
            p = getattr(self, name)
            if not (0.0 <= p <= 1.0):
                raise ValueError(f"{name} must be a probability, got {p}")
        if self.delay_prob > 0 and self.extra_delay <= 0:
            raise ValueError("delay_prob > 0 needs extra_delay > 0")
        if self.reorder_prob > 0 and self.reorder_delay <= 0:
            raise ValueError("reorder_prob > 0 needs reorder_delay > 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        # Normalize list inputs (e.g. from JSON) to tuples.
        if not isinstance(self.partitions, tuple):
            object.__setattr__(self, "partitions", tuple(self.partitions))
        if not isinstance(self.crashes, tuple):
            object.__setattr__(self, "crashes", tuple(self.crashes))

    # -- derived -----------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """True if this plan injects anything at all.  A plan with every
        probability zero and no scheduled faults is equivalent to no
        plan: neither the injector nor the hardening layer is wired in,
        preserving exact fault-free parity."""
        return bool(
            self.drop_prob
            or self.dup_prob
            or self.delay_prob
            or self.reorder_prob
            or self.partitions
            or self.crashes
        )

    def max_extra_delay(self) -> float:
        """Worst-case injected one-way delay (for timeout sizing)."""
        return max(self.extra_delay, self.reorder_delay, 0.0)

    @classmethod
    def uniform_loss(cls, p: float, **overrides: Any) -> "FaultPlan":
        """Convenience: uniform i.i.d. message loss with probability p."""
        return cls(drop_prob=p, **overrides)

    # -- (de)serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "partitions":
                value = [vars(p).copy() for p in value]
            elif f.name == "crashes":
                value = [vars(c).copy() for c in value]
            data[f.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        data = dict(data)
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {sorted(unknown)}")
        if data.get("partitions"):
            data["partitions"] = tuple(
                LinkPartition(**p) for p in data["partitions"]
            )
        if data.get("crashes"):
            data["crashes"] = tuple(CrashWindow(**c) for c in data["crashes"])
        return cls(**data)
