"""Command-line interface: run one scenario and print the report.

Examples
--------
Run the adaptive scheme at 7 Erlangs per cell::

    python -m repro --scheme adaptive --load 7

Compare every scheme on a hot-spot workload::

    python -m repro --all-schemes --hotspot 24 --hot-load 20 --load 2

Any scenario knob is exposed; ``--json`` emits machine-readable output.
"""

from __future__ import annotations

import argparse
import json
import sys

from .faults import FaultPlan
from .harness import SCHEMES, Scenario, render_table, run_cells
from .policies.base import policy_names
from .traffic import HotspotLoad


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro",
        description="Simulate distributed dynamic channel allocation "
        "(reproduction of Kahol et al., 1998).",
    )
    p.add_argument("--scheme", default="adaptive", choices=sorted(SCHEMES))
    p.add_argument(
        "--all-schemes", action="store_true",
        help="run every scheme on the same workload and print a comparison",
    )
    p.add_argument("--rows", type=int, default=7)
    p.add_argument("--cols", type=int, default=7)
    p.add_argument("--channels", type=int, default=70)
    p.add_argument("--cluster", type=int, default=7, help="reuse cluster size k")
    p.add_argument("--no-wrap", action="store_true", help="planar grid")
    p.add_argument("--load", type=float, default=5.0, help="Erlangs per cell")
    p.add_argument("--holding", type=float, default=180.0)
    p.add_argument("--dwell", type=float, default=None,
                   help="mean cell-dwell time (enables mobility)")
    p.add_argument("--hotspot", type=int, nargs="*", default=None,
                   metavar="CELL", help="hot cell ids")
    p.add_argument("--hot-load", type=float, default=20.0,
                   help="Erlangs per hot cell")
    p.add_argument("--duration", type=float, default=3000.0)
    p.add_argument("--warmup", type=float, default=400.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--latency", type=float, default=1.0, help="one-way T")
    p.add_argument("--alpha", type=int, default=2)
    p.add_argument("--theta-low", type=float, default=1.0)
    p.add_argument("--theta-high", type=float, default=3.0)
    p.add_argument("--window", type=float, default=30.0)
    p.add_argument(
        "--policy", default=None, choices=policy_names(),
        help="mode policy for the adaptive scheme (LOCAL <-> BORROWING "
        "decision rule); 'linear' is the paper's sliding-window "
        "predictor — see docs/POLICIES.md",
    )
    p.add_argument(
        "--policy-trace", type=str, default=None, metavar="FILE",
        help="per-cell load trace JSON for --policy oracle (record one "
        "with --record-policy-trace)",
    )
    p.add_argument(
        "--record-policy-trace", type=str, default=None, metavar="FILE",
        help="run the scenario under the 'linear' policy, record the "
        "per-cell load trace an oracle needs, write it to FILE and "
        "exit (adaptive scheme only)",
    )
    p.add_argument(
        "--faults", type=float, default=None, metavar="P",
        help="inject uniform message loss with probability P (enables "
        "the hardened protocol stack: ack/retry/dedup); fine-grained "
        "fault plans go in a --config file's \"faults\" section",
    )
    p.add_argument("--json", action="store_true", help="JSON output")
    p.add_argument(
        "--trace", type=str, default=None, metavar="DIR",
        help="enable the observability layer and write run artifacts "
        "(Chrome trace for Perfetto, time-series CSV/JSON, markdown "
        "report) into DIR; see docs/OBSERVABILITY.md",
    )
    p.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="run scenarios in parallel over N worker processes "
        "(0 = one per CPU); results are identical to serial",
    )
    p.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="partition the grid into N row bands and run one "
        "conservatively synchronized kernel per band, each in its own "
        "process (space-parallel DES; results are row-identical to "
        "--shards 1); requires the deterministic latency model and "
        "static calls — see docs/PROTOCOL.md",
    )
    p.add_argument(
        "--fastlane", action="store_true",
        help="advance quiescent local-mode cells analytically "
        "(Erlang-loss fluid model) instead of event-by-event, "
        "materializing them back on demand; a low-load accelerator — "
        "schemes fixed/adaptive only, no faults/mobility/shards/"
        "snapshots — see DESIGN.md",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="ignore the persistent result cache (.repro-cache/) and "
        "always simulate",
    )
    p.add_argument(
        "--checkpoint-at", type=float, default=None, metavar="T",
        help="run the scenario to sim-time T, capture a snapshot at "
        "the first safe point, write it to --checkpoint-out, and exit "
        "(T=0 captures a cold t0 snapshot; see docs/TUTORIAL.md)",
    )
    p.add_argument(
        "--checkpoint-out", type=str, default="checkpoint.snap",
        metavar="PATH", help="snapshot output path for --checkpoint-at",
    )
    p.add_argument(
        "--from-checkpoint", type=str, default=None, metavar="PATH",
        help="resume from a snapshot file instead of building the "
        "scenario from flags: restore, run to the horizon, report; "
        "combine with --fork-seed to fork a fresh replication",
    )
    p.add_argument(
        "--fork-seed", type=int, default=None, metavar="K",
        help="with --from-checkpoint: fork the snapshot under seed K "
        "(reseeds every post-fork random stream) instead of exactly "
        "continuing the recorded run",
    )
    p.add_argument(
        "--config", type=str, default=None, metavar="FILE",
        help="load the scenario from a JSON file (other scenario flags "
        "are ignored; --scheme/--all-schemes still apply)",
    )
    p.add_argument(
        "--preset", type=str, default=None,
        help="use a named preset workload (see --list-presets)",
    )
    p.add_argument(
        "--list-presets", action="store_true",
        help="list available preset workloads and exit",
    )
    p.add_argument(
        "--dump-config", action="store_true",
        help="print the scenario as JSON instead of running it",
    )
    return p


def scenario_from_args(args, scheme: str) -> Scenario:
    pattern = None
    if args.hotspot:
        pattern = HotspotLoad(
            base_rate=args.load / args.holding,
            hot_cells=args.hotspot,
            hot_rate=args.hot_load / args.holding,
        )
    faults = (
        FaultPlan.uniform_loss(args.faults) if args.faults is not None else None
    )
    policy_params = {}
    if args.policy_trace is not None:
        with open(args.policy_trace) as fh:
            policy_params["trace"] = json.load(fh)
    return Scenario(
        scheme=scheme,
        faults=faults,
        rows=args.rows,
        cols=args.cols,
        num_channels=args.channels,
        cluster_size=args.cluster,
        wrap=not args.no_wrap,
        offered_load=args.load,
        pattern=pattern,
        mean_holding=args.holding,
        mean_dwell=args.dwell,
        duration=args.duration,
        warmup=args.warmup,
        seed=args.seed,
        latency_T=args.latency,
        alpha=args.alpha,
        theta_low=args.theta_low,
        theta_high=args.theta_high,
        window=args.window,
        policy=args.policy or "linear",
        policy_params=policy_params,
        fastlane=args.fastlane,
    )


def report_dict(report) -> dict:
    return {
        "scheme": report.scenario.scheme,
        "offered": report.offered,
        "drop_rate": report.drop_rate,
        "new_call_block_rate": report.new_call_block_rate,
        "handoff_failure_rate": report.handoff_failure_rate,
        "mean_acquisition_time": report.mean_acquisition_time,
        "p95_acquisition_time": report.p95_acquisition_time,
        "messages_total": report.messages_total,
        "messages_per_acquisition": report.messages_per_acquisition,
        "xi": report.xi,
        "fairness_index": report.fairness_index,
        "violations": report.violations,
        "faults_injected": sum(report.faults_injected.values()),
        "faults_recovered": sum(report.faults_recovered.values()),
        "retries": report.retries,
        "retry_exhausted": report.retry_exhausted,
        **({"fastlane": report.fastlane} if report.fastlane else {}),
        **(
            {"regret_vs_oracle": report.regret_vs_oracle}
            if report.regret_vs_oracle is not None
            else {}
        ),
    }


def snapshot_main(argv) -> int:
    """``python -m repro snapshot inspect FILE [...]`` subcommand."""
    p = argparse.ArgumentParser(
        prog="python -m repro snapshot",
        description="Inspect snapshot files (see repro.snap).",
    )
    sub = p.add_subparsers(dest="cmd", required=True)
    inspect = sub.add_parser(
        "inspect", help="print a snapshot's identity and contents summary"
    )
    inspect.add_argument("files", nargs="+", metavar="FILE")
    inspect.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    args = p.parse_args(argv)

    from .harness import Scenario
    from .snap import load_snapshot

    out = []
    for path in args.files:
        snap = load_snapshot(path)
        scenario = Scenario.from_json(snap.scenario_json)
        queue = snap.state.get("queue")
        kinds: dict = {}
        for entry in queue or ():
            kinds[entry["kind"]] = kinds.get(entry["kind"], 0) + 1
        out.append({
            "file": path,
            "version": snap.version,
            "content_hash": snap.content_hash(),
            "time": snap.time,
            "started": snap.started,
            "scheme": scenario.scheme,
            "seed": scenario.seed,
            "grid": f"{scenario.rows}x{scenario.cols}",
            "duration": scenario.duration,
            "warmup": scenario.warmup,
            "rng_streams": len(snap.state.get("streams", {})),
            "queue_entries": None if queue is None else len(queue),
            "queue_kinds": kinds,
        })
    if args.json:
        print(json.dumps(out, indent=2))
    else:
        for info in out:
            print(f"{info['file']}:")
            print(f"  format v{info['version']}  hash {info['content_hash'][:16]}…")
            print(
                f"  scheme={info['scheme']}  seed={info['seed']}  "
                f"grid={info['grid']}  duration={info['duration']:g} "
                f"(warmup {info['warmup']:g})"
            )
            state = "cold (t0, not started)" if not info["started"] else "warm"
            print(f"  captured at t={info['time']:g}  [{state}]")
            print(f"  rng streams: {info['rng_streams']}")
            if info["queue_entries"] is not None:
                by_kind = ", ".join(
                    f"{k}={v}" for k, v in sorted(info["queue_kinds"].items())
                )
                print(f"  event queue: {info['queue_entries']} entries ({by_kind})")
    return 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "snapshot":
        return snapshot_main(argv[1:])
    args = build_parser().parse_args(argv)
    schemes = sorted(SCHEMES) if args.all_schemes else [args.scheme]

    if args.list_presets:
        from .harness import preset_names

        for name in preset_names():
            print(name)
        return 0

    if args.from_checkpoint is not None:
        from .snap import load_snapshot, run_from_snapshot

        snap = load_snapshot(args.from_checkpoint)
        report = run_from_snapshot(
            snap, seed=args.fork_seed, shards=args.shards
        )
        if args.json:
            print(json.dumps([report_dict(report)], indent=2))
        else:
            print(report.summary())
        return 0

    if args.config:
        with open(args.config) as fh:
            base = Scenario.from_json(fh.read())
        scenarios = [base.with_(scheme=s) for s in schemes]
    elif args.preset:
        from .harness import preset

        base = preset(args.preset)
        scenarios = [base.with_(scheme=s, seed=args.seed) for s in schemes]
    else:
        scenarios = [scenario_from_args(args, s) for s in schemes]

    if args.faults is not None and (args.config or args.preset):
        plan = FaultPlan.uniform_loss(args.faults)
        scenarios = [s.with_(faults=plan) for s in scenarios]

    if (args.config or args.preset) and (
        args.policy is not None or args.policy_trace is not None
    ):
        overrides: dict = {}
        if args.policy is not None:
            overrides["policy"] = args.policy
        if args.policy_trace is not None:
            with open(args.policy_trace) as fh:
                overrides["policy_params"] = {"trace": json.load(fh)}
        scenarios = [s.with_(**overrides) for s in scenarios]

    if args.record_policy_trace is not None:
        from .policies import record_trace

        base = scenarios[0]
        if base.scheme != "adaptive":
            print(
                "--record-policy-trace requires the adaptive scheme",
                file=sys.stderr,
            )
            return 2
        trace = record_trace(base.with_(policy="linear", policy_params={}))
        with open(args.record_policy_trace, "w") as fh:
            json.dump(trace, fh)
        print(
            f"recorded per-cell load trace ({len(trace)} cells) -> "
            f"{args.record_policy_trace}"
        )
        print(
            f"replay with: python -m repro --scheme adaptive --policy "
            f"oracle --policy-trace {args.record_policy_trace}"
        )
        return 0

    if args.trace is not None:
        from .obs import ObsConfig

        # Scenarios that already carry an obs config (e.g. from a
        # --config file) keep it; the flag only switches tracing on.
        scenarios = [
            s if s.obs is not None else s.with_(obs=ObsConfig())
            for s in scenarios
        ]

    if args.dump_config:
        print(scenarios[0].to_json())
        return 0

    if args.checkpoint_at is not None:
        from .snap import run_to_checkpoint, save_snapshot

        snap = run_to_checkpoint(scenarios[0], args.checkpoint_at)
        save_snapshot(snap, args.checkpoint_out)
        kind = "warm" if snap.started else "cold (t0)"
        print(
            f"{kind} snapshot of scheme={scenarios[0].scheme} at "
            f"t={snap.time:g} -> {args.checkpoint_out}"
        )
        print(f"content hash: {snap.content_hash()}")
        return 0

    reports = run_cells(
        scenarios,
        workers=args.workers if args.workers > 0 else None,
        cache=False if args.no_cache else None,
        trace_dir=args.trace,
        shards=args.shards,
    )
    if args.trace is not None:
        print(f"run artifacts written to {args.trace}/", file=sys.stderr)

    if args.json:
        print(json.dumps([report_dict(r) for r in reports], indent=2))
        return 0

    if len(reports) == 1:
        print(reports[0].summary())
    else:
        rows = [
            [
                r.scenario.scheme,
                round(r.drop_rate, 4),
                round(r.mean_acquisition_time, 3),
                round(r.messages_per_acquisition, 1),
                round(r.fairness_index, 4),
                r.violations,
            ]
            for r in reports
        ]
        print(
            render_table(
                ["scheme", "drop", "acq time (T)", "msgs/req", "fairness", "violations"],
                rows,
                title=f"load={args.load} Erlang/cell, seed={args.seed}",
            )
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
