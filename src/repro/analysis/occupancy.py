"""A-priori occupancy model for the adaptive scheme's ξ fractions.

The paper measures ξ₁/ξ₂/ξ₃ (fractions of acquisitions served locally /
by borrowing-update / by borrowing-search) from simulation.  This
module predicts them from first principles so the simulation has an
independent cross-check:

* A cell's *primary* occupancy behaves like an M/M/c queue observed at
  arrival instants.  With borrowing as overflow (blocked-by-primary
  calls are mostly carried, not lost), the primary pool is approximately
  an M/M/c queue with blocked customers overflowing — we use the
  Erlang-loss (truncated Poisson) distribution as the standard
  first-order approximation.
* ξ₁ ≈ P(an arrival finds a free primary) = 1 − B(A, c)  (PASTA).
* An overflow arrival borrows.  The update round succeeds unless the
  whole interference region is near exhaustion; the region carries
  roughly (N+1)·A Erlangs on (N+1)·c/“reuse overlap” channels — we
  approximate the search fraction by the loss probability of the
  *pooled* region: ξ₃ ≈ B((N+1)·A / K, n·(N+1)/K / … ) collapses to the
  pooled Erlang loss with the k-fold reuse factored out:
  ξ₃ ≈ B(A_region, C_region) with A_region = (N+1)A/k · k = (N+1)A and
  C_region = n·(N+1)/k.
* ξ₂ = 1 − ξ₁ − ξ₃.

These are deliberately coarse (independence assumptions, no retry
dynamics): measured against simulation, ξ₁ matches within ~0.01 up to
~70% of primary capacity, while at saturation the model *under*-predicts
ξ₃ — real searches are mostly triggered by α-exhaustion under borrow
contention, not by true region exhaustion.  The test suite pins the
model to its validated regime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict

from .erlang import erlang_b

__all__ = [
    "truncated_poisson_pmf",
    "truncated_poisson_sample",
    "predict_xi",
    "XiPrediction",
]


def truncated_poisson_pmf(offered_load: float, servers: int) -> Dict[int, float]:
    """Stationary distribution of busy servers in an M/M/c/c queue.

    ``p_k = (A^k / k!) / Σ_j A^j / j!`` for k in 0..c.
    """
    if servers < 0:
        raise ValueError("servers must be >= 0")
    if offered_load < 0:
        raise ValueError("offered_load must be >= 0")
    if offered_load == 0:
        return {0: 1.0} | {k: 0.0 for k in range(1, servers + 1)}
    # Compute in log space to stay stable for large c.
    log_terms = []
    log_a = math.log(offered_load)
    acc = 0.0
    for k in range(servers + 1):
        if k > 0:
            acc += log_a - math.log(k)
        log_terms.append(acc)
    peak = max(log_terms)
    weights = [math.exp(t - peak) for t in log_terms]
    total = sum(weights)
    return {k: w / total for k, w in enumerate(weights)}


def truncated_poisson_sample(
    offered_load: float, servers: int, rng: Any
) -> int:
    """One draw of the busy-server count of an M/M/c/c queue.

    Inverse-CDF sampling over :func:`truncated_poisson_pmf` consuming
    exactly one uniform from ``rng`` per draw — the fast lane's
    occupancy model at observation instants, where a fixed per-draw
    stream cost is what keeps de/materialization seed-deterministic.
    """
    pmf = truncated_poisson_pmf(offered_load, servers)
    u = float(rng.random())
    acc = 0.0
    for k in range(servers + 1):
        acc += pmf[k]
        if u < acc:
            return k
    return servers  # float round-off: the CDF summed to just under 1


@dataclass(frozen=True)
class XiPrediction:
    """Predicted acquisition-path fractions."""

    xi_local: float
    xi_update: float
    xi_search: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "local": self.xi_local,
            "update": self.xi_update,
            "search": self.xi_search,
        }


def predict_xi(
    offered_load: float,
    primaries: int = 10,
    region_size: int = 18,
    cluster_size: int = 7,
    num_channels: int = 70,
) -> XiPrediction:
    """First-order prediction of (ξ₁, ξ₂, ξ₃) at a uniform load.

    Parameters mirror the default topology: 10 primaries/cell, N = 18,
    k = 7, n = 70 channels.
    """
    if offered_load < 0:
        raise ValueError("offered_load must be >= 0")
    # Local path: free primary at arrival (PASTA + Erlang loss).
    blocked_primary = erlang_b(offered_load, primaries)
    xi_local = 1.0 - blocked_primary

    # Search path: the whole (N+1)-cell pool is effectively exhausted.
    # The pooled system carries (N+1)·A Erlangs; thanks to k-fold reuse
    # its capacity is n·(N+1)/k channels.
    cells = region_size + 1
    pooled_load = cells * offered_load
    pooled_capacity = int(round(num_channels * cells / cluster_size))
    xi_search_given_blocked = erlang_b(pooled_load, pooled_capacity)
    xi_search = blocked_primary * xi_search_given_blocked

    xi_update = max(0.0, blocked_primary - xi_search)
    return XiPrediction(xi_local, xi_update, xi_search)
