"""Analytical models: §5 complexity formulas and Erlang-B theory."""

from .complexity import (
    MODELS,
    ModelParams,
    SchemeModel,
    adaptive,
    advanced_update,
    basic_search,
    basic_update,
    bounds_table,
    fixed,
    low_load_table,
)
from .erlang import carried_load, erlang_b, offered_load_for_blocking
from .occupancy import (
    XiPrediction,
    predict_xi,
    truncated_poisson_pmf,
    truncated_poisson_sample,
)
from .planning import expected_blocked_traffic, marginal_allocation, plan_partition

__all__ = [
    "ModelParams",
    "SchemeModel",
    "MODELS",
    "basic_search",
    "basic_update",
    "advanced_update",
    "adaptive",
    "fixed",
    "low_load_table",
    "bounds_table",
    "erlang_b",
    "carried_load",
    "offered_load_for_blocking",
    "truncated_poisson_pmf",
    "truncated_poisson_sample",
    "predict_xi",
    "XiPrediction",
    "marginal_allocation",
    "plan_partition",
    "expected_blocked_traffic",
]
