"""Analytical models: §5 complexity formulas and Erlang-B theory."""

from .complexity import (
    MODELS,
    ModelParams,
    SchemeModel,
    adaptive,
    advanced_update,
    basic_search,
    basic_update,
    bounds_table,
    fixed,
    low_load_table,
)
from .erlang import erlang_b, offered_load_for_blocking
from .occupancy import XiPrediction, predict_xi, truncated_poisson_pmf
from .planning import expected_blocked_traffic, marginal_allocation, plan_partition

__all__ = [
    "ModelParams",
    "SchemeModel",
    "MODELS",
    "basic_search",
    "basic_update",
    "advanced_update",
    "adaptive",
    "fixed",
    "low_load_table",
    "bounds_table",
    "erlang_b",
    "offered_load_for_blocking",
    "truncated_poisson_pmf",
    "predict_xi",
    "XiPrediction",
    "marginal_allocation",
    "plan_partition",
    "expected_blocked_traffic",
]
