"""Capacity planning: demand-weighted static channel partitions.

The paper's FCA baseline splits the spectrum evenly across the k reuse
colors.  When the expected demand is *known* to be uneven, a planner
can size each color's primary pool to it — the strongest static
baseline to compare dynamic schemes against (and what an operator
would actually deploy).

``marginal_allocation`` solves the classical problem: distribute ``n``
channels over colors with offered loads ``A_c`` to minimize the total
expected blocked traffic ``Σ_c A_c · B(A_c, n_c)``.  Because Erlang-B
blocking is convex and decreasing in the server count, the greedy
algorithm — always give the next channel to the color with the largest
marginal gain — is exactly optimal (Fox, 1966).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Sequence, Tuple

from .erlang import erlang_b

__all__ = ["marginal_allocation", "expected_blocked_traffic", "plan_partition"]


def expected_blocked_traffic(loads: Sequence[float], counts: Sequence[int]) -> float:
    """Total expected blocked Erlangs for a per-color allocation."""
    if len(loads) != len(counts):
        raise ValueError("loads and counts must have equal length")
    return sum(a * erlang_b(a, n) for a, n in zip(loads, counts))


def marginal_allocation(
    loads: Sequence[float], total_channels: int, min_per_color: int = 1
) -> List[int]:
    """Optimal integer split of ``total_channels`` across colors.

    Parameters
    ----------
    loads:
        Offered load ``A_c`` (Erlangs) per reuse color.
    total_channels:
        Channels to distribute (the spectrum size ``n``).
    min_per_color:
        Floor per color (a color with zero channels would make its
        cells permanently dead under FCA); default 1.

    Returns the per-color channel counts, summing to ``total_channels``.
    """
    k = len(loads)
    if k == 0:
        raise ValueError("need at least one color")
    if any(a < 0 for a in loads):
        raise ValueError("loads must be >= 0")
    if total_channels < k * min_per_color:
        raise ValueError(
            f"{total_channels} channels cannot give {min_per_color} to "
            f"each of {k} colors"
        )

    counts = [min_per_color] * k

    def gain(color: int) -> float:
        a, n = loads[color], counts[color]
        # Marginal reduction of blocked traffic from one more channel.
        return a * (erlang_b(a, n) - erlang_b(a, n + 1))

    # Max-heap of (−gain, color); gains shrink monotonically (convexity)
    # so a lazy heap with recomputation on pop is exact.
    heap: List[Tuple[float, int]] = [(-gain(c), c) for c in range(k)]
    heapq.heapify(heap)
    remaining = total_channels - k * min_per_color
    while remaining > 0:
        neg, color = heapq.heappop(heap)
        current = -gain(color)
        if current > neg + 1e-15:  # stale entry: gain changed, re-push
            heapq.heappush(heap, (current, color))
            continue
        counts[color] += 1
        remaining -= 1
        heapq.heappush(heap, (-gain(color), color))
    return counts


def plan_partition(
    color_loads: Dict[int, float], total_channels: int, min_per_color: int = 1
) -> Dict[int, int]:
    """Dict-flavoured wrapper: color -> channel count."""
    colors = sorted(color_loads)
    counts = marginal_allocation(
        [color_loads[c] for c in colors], total_channels, min_per_color
    )
    return dict(zip(colors, counts))
