"""Erlang-B blocking theory — analytical cross-check for FCA.

Under fixed channel allocation each cell is an independent M/M/c/c
queue (c = primaries per cell), so its call-blocking probability is the
Erlang-B formula.  The simulation's FCA drop rate must match this
closely — a strong end-to-end validation of the traffic generator, the
call lifecycle and the metrics pipeline (used by the test suite and as
the analytical reference line in the load-sweep benchmark).
"""

from __future__ import annotations


__all__ = [
    "erlang_b",
    "erlang_b_inverse_load",
    "carried_load",
    "offered_load_for_blocking",
]


def erlang_b(offered_load: float, servers: int) -> float:
    """Blocking probability of an M/M/c/c queue.

    Parameters
    ----------
    offered_load:
        Offered traffic A in Erlangs (λ/μ).
    servers:
        Number of channels c.

    Uses the standard numerically stable recurrence
    ``B(0) = 1;  B(k) = A·B(k-1) / (k + A·B(k-1))``.
    """
    if servers < 0:
        raise ValueError("servers must be >= 0")
    if offered_load < 0:
        raise ValueError("offered_load must be >= 0")
    if offered_load == 0:
        return 0.0
    b = 1.0
    for k in range(1, servers + 1):
        b = offered_load * b / (k + offered_load * b)
    return b


def carried_load(offered_load: float, servers: int) -> float:
    """Mean number of busy servers of an M/M/c/c queue: ``A·(1 − B)``.

    The stationary expected occupancy — the analytic reference the fast
    lane's model-vs-sim divergence section compares sampled occupancy
    against.
    """
    return offered_load * (1.0 - erlang_b(offered_load, servers))


def offered_load_for_blocking(
    target_blocking: float, servers: int, tol: float = 1e-9
) -> float:
    """Inverse Erlang-B: the offered load that yields a target blocking.

    Solved by bisection (Erlang-B is strictly increasing in A).
    """
    if not (0 < target_blocking < 1):
        raise ValueError("target_blocking must be in (0, 1)")
    lo, hi = 0.0, float(max(servers, 1))
    while erlang_b(hi, servers) < target_blocking:
        hi *= 2
        if hi > 1e9:  # pragma: no cover - defensive
            raise RuntimeError("bisection bracket failed")
    while hi - lo > tol * max(1.0, hi):
        mid = 0.5 * (lo + hi)
        if erlang_b(mid, servers) < target_blocking:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


# Backwards-compatible alias used in some notebooks/scripts.
erlang_b_inverse_load = offered_load_for_blocking
