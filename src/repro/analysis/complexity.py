"""Closed-form performance models from the paper's §5 (Tables 1–3).

All expressions are parameterized exactly as in the paper:

=============  ==========================================================
``N``          number of nodes in the interference region of any cell
``N_search``   average number of cells in the neighborhood initiating a
               simultaneous search/update
``N_borrow``   average number of neighbors in borrowing mode
``alpha``      maximum borrow attempts before switching to search
``m``          average number of update attempts (``m <= alpha``)
``xi1/2/3``    fraction of acquisitions in local / borrowing-update /
               borrowing-search paths (``xi1 + xi2 + xi3 = 1``)
``n_p``        primary cells of a channel inside an interference region
``T``          maximum one-way message latency
=============  ==========================================================

Each scheme exposes ``message_complexity`` and ``acquisition_time``
(per channel acquisition), plus the low-load specialisations of Table 2
and the min/max bounds of Table 3.

Note: the paper's Table 1 prints the adaptive row as
``2ξ1·N_borrow + 3ξ3·mN + 2ξ3(α+2)N``; the derivation in the body of §5
gives ``2ξ1·N_borrow + 3ξ2·mN + ξ3(3α+4)N``.  We implement the body's
derivation and flag the typo in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = [
    "ModelParams",
    "basic_search",
    "basic_update",
    "advanced_update",
    "adaptive",
    "fixed",
    "SchemeModel",
    "MODELS",
    "low_load_table",
    "bounds_table",
]


@dataclass(frozen=True)
class ModelParams:
    """Inputs of the §5 analytical model."""

    N: float = 18.0
    N_search: float = 1.0
    N_borrow: float = 0.0
    alpha: float = 2.0
    m: float = 0.0
    xi1: float = 1.0
    xi2: float = 0.0
    xi3: float = 0.0
    n_p: float = 3.0
    T: float = 1.0

    def __post_init__(self) -> None:
        total = self.xi1 + self.xi2 + self.xi3
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"xi fractions must sum to 1 (got {total})")
        if self.m > self.alpha:
            raise ValueError("m cannot exceed alpha")

    @classmethod
    def low_load(cls, N: float = 18.0, n_p: float = 3.0, T: float = 1.0) -> "ModelParams":
        """The paper's low-load regime: ξ1=1, m=0, N_search=1, N_borrow=0."""
        return cls(N=N, N_search=1.0, N_borrow=0.0, m=0.0,
                   xi1=1.0, xi2=0.0, xi3=0.0, n_p=n_p, T=T)


@dataclass(frozen=True)
class SchemeModel:
    """A scheme's closed-form costs (Table 1) and bounds (Table 3)."""

    name: str
    message_complexity: "callable"
    acquisition_time: "callable"
    msg_min: "callable"
    msg_max: "callable"
    time_min: "callable"
    time_max: "callable"


# -- Table 1 rows -----------------------------------------------------------
def _search_msgs(p: ModelParams) -> float:
    return 2 * p.N


def _search_time(p: ModelParams) -> float:
    return (p.N_search + 1) * p.T


def _update_msgs(p: ModelParams) -> float:
    return 2 * p.N * p.m + 2 * p.N


def _update_time(p: ModelParams) -> float:
    return 2 * p.T * p.m


def _advanced_msgs(p: ModelParams) -> float:
    return (1 - p.xi1) * (2 * p.n_p * p.m + p.n_p * (p.m - 1)) + 2 * p.N


def _advanced_time(p: ModelParams) -> float:
    return (1 - p.xi1) * 2 * p.T * p.m


def _adaptive_msgs(p: ModelParams) -> float:
    # §5 derivation (see module docstring about the Table 1 typo).
    return 2 * p.xi1 * p.N_borrow + 3 * p.xi2 * p.m * p.N + p.xi3 * (
        3 * p.alpha + 4
    ) * p.N


def _adaptive_time(p: ModelParams) -> float:
    return (2 * p.m * p.xi2 + (2 * p.alpha + p.N_search + 1) * p.xi3) * p.T


def _fixed_msgs(p: ModelParams) -> float:
    return 0.0


def _fixed_time(p: ModelParams) -> float:
    return 0.0


# -- Table 3 bounds ---------------------------------------------------------
INF = float("inf")

basic_search = SchemeModel(
    name="Basic Search",
    message_complexity=_search_msgs,
    acquisition_time=_search_time,
    msg_min=lambda p: 2 * p.N,
    msg_max=lambda p: 2 * p.N,
    time_min=lambda p: 2 * p.T,
    time_max=lambda p: (p.N + 1) * p.T,
)

basic_update = SchemeModel(
    name="Basic Update",
    message_complexity=_update_msgs,
    acquisition_time=_update_time,
    msg_min=lambda p: 2 * p.N,
    msg_max=lambda p: INF,
    time_min=lambda p: 2 * p.T,
    time_max=lambda p: INF,
)

advanced_update = SchemeModel(
    name="Advanced Update",
    message_complexity=_advanced_msgs,
    acquisition_time=_advanced_time,
    msg_min=lambda p: p.N,
    msg_max=lambda p: INF,
    time_min=lambda p: 0.0,
    time_max=lambda p: INF,
)

adaptive = SchemeModel(
    name="Adaptive (Proposed)",
    message_complexity=_adaptive_msgs,
    acquisition_time=_adaptive_time,
    msg_min=lambda p: 0.0,
    msg_max=lambda p: 2 * p.alpha * p.N + 4 * p.N,
    time_min=lambda p: 0.0,
    time_max=lambda p: (2 * p.alpha * p.N + 1) * p.T,
)

fixed = SchemeModel(
    name="Fixed (FCA)",
    message_complexity=_fixed_msgs,
    acquisition_time=_fixed_time,
    msg_min=lambda p: 0.0,
    msg_max=lambda p: 0.0,
    time_min=lambda p: 0.0,
    time_max=lambda p: 0.0,
)

#: Scheme models keyed by the harness scheme name.
MODELS: Dict[str, SchemeModel] = {
    "basic_search": basic_search,
    "basic_update": basic_update,
    "advanced_update": advanced_update,
    "adaptive": adaptive,
    "fixed": fixed,
}


def low_load_table(N: float = 18.0, n_p: float = 3.0, T: float = 1.0) -> Dict[str, Dict[str, float]]:
    """Table 2: message complexity and acquisition time at ξ1 = 1.

    The paper tabulates Basic Search 2N/2T, Basic Update 4N/2T,
    Advanced Update 2N/0, Adaptive 0/0.  Our formulas reproduce these
    with the convention that even at "low load" the two basic schemes
    run one request round per acquisition (m = 1 for update).
    """
    p_local = ModelParams.low_load(N=N, n_p=n_p, T=T)
    # At low load the basic schemes still pay a full round per call.
    p_update = ModelParams(N=N, N_search=1.0, N_borrow=0.0, m=1.0,
                           xi1=0.0, xi2=1.0, xi3=0.0, n_p=n_p, T=T)
    return {
        "basic_search": {
            "messages": basic_search.message_complexity(p_local),
            "time": basic_search.acquisition_time(p_local),
        },
        "basic_update": {
            "messages": basic_update.message_complexity(p_update),
            "time": basic_update.acquisition_time(p_update),
        },
        "advanced_update": {
            "messages": 2 * N,  # ACQUISITION + RELEASE broadcasts
            "time": 0.0,
        },
        "adaptive": {"messages": 0.0, "time": 0.0},
        "fixed": {"messages": 0.0, "time": 0.0},
    }


def bounds_table(N: float = 18.0, alpha: float = 2.0, T: float = 1.0) -> Dict[str, Dict[str, float]]:
    """Table 3: min/max message complexity and acquisition time."""
    p = ModelParams(N=N, alpha=alpha, m=0.0, xi1=1.0, xi2=0.0, xi3=0.0, T=T)
    out: Dict[str, Dict[str, float]] = {}
    for key, model in MODELS.items():
        out[key] = {
            "msg_min": model.msg_min(p),
            "msg_max": model.msg_max(p),
            "time_min": model.time_min(p),
            "time_max": model.time_max(p),
        }
    return out
