"""Metrics collection for channel-allocation simulations.

Records, per acquisition attempt: outcome (granted/denied), the queue
wait behind other requests at the same MSS, the protocol's own channel
acquisition time (the paper's headline latency metric, measured in the
same units as the network latency T), the number of protocol attempts
(the paper's ``m``), and the acquisition path ("local" / "update" /
"search" — the paper's ξ1/ξ2/ξ3 fractions).

A ``warmup`` horizon discards transient samples; message counts are
read from the network with a warmup-offset snapshot taken at the same
instant so rates are consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

__all__ = ["AcquisitionRecord", "MetricsCollector"]


@dataclass(frozen=True)
class AcquisitionRecord:
    """One completed channel-acquisition attempt."""

    cell: int
    kind: str  # "new" or "handoff"
    granted: bool
    queue_wait: float
    acquisition_time: float
    attempts: int
    mode: Optional[str]  # "local" / "update" / "search" / None
    time: float


class MetricsCollector:
    """Accumulates call-level and message-level statistics."""

    def __init__(self, warmup: float = 0.0) -> None:
        self.warmup = warmup
        self.records: List[AcquisitionRecord] = []
        self.releases = 0
        self._message_baseline: Dict[str, int] = {}
        self._message_baseline_total = 0
        self._baseline_taken = False
        #: Injected faults by kind ("drop", "duplicate", "delay",
        #: "reorder", "partition", "crash", "crash_drop", "restart") —
        #: fed by the fault injector; empty without an active plan.
        self.faults_injected: Dict[str, int] = {}
        #: Faults the hardening layer recovered from, by kind (currently
        #: "retransmit": a retransmitted message that was acknowledged).
        self.faults_recovered: Dict[str, int] = {}
        #: ARQ retransmissions sent.
        self.retries = 0
        #: Messages abandoned after exhausting the retry budget.
        self.retry_exhausted = 0

    # -- recording (called by the protocol/traffic layers) -----------------
    def record_acquisition(self, **kwargs) -> None:
        record = AcquisitionRecord(**kwargs)
        if record.time >= self.warmup:
            self.records.append(record)

    def record_release(self, cell: int, channel: int, time: float) -> None:
        if time >= self.warmup:
            self.releases += 1

    def record_fault(self, kind: str) -> None:
        """One injected fault (called by the fault injector)."""
        self.faults_injected[kind] = self.faults_injected.get(kind, 0) + 1

    def record_fault_recovery(self, kind: str) -> None:
        """One fault the hardening layer recovered from."""
        self.faults_recovered[kind] = self.faults_recovered.get(kind, 0) + 1

    def record_retry(self) -> None:
        """One ARQ retransmission."""
        self.retries += 1

    def record_retry_exhausted(self) -> None:
        """One message given up on after the full retry budget."""
        self.retry_exhausted += 1

    @property
    def total_faults_injected(self) -> int:
        return sum(self.faults_injected.values())

    @property
    def total_faults_recovered(self) -> int:
        return sum(self.faults_recovered.values())

    def snapshot_message_baseline(self, network) -> None:
        """Capture message counters at the warmup boundary."""
        self._message_baseline = dict(network.sent_by_kind)
        self._message_baseline_total = network.total_sent
        self._baseline_taken = True

    # -- derived statistics ---------------------------------------------------
    @property
    def offered(self) -> int:
        """Requests observed (after warmup)."""
        return len(self.records)

    @property
    def granted(self) -> int:
        return sum(1 for r in self.records if r.granted)

    @property
    def dropped(self) -> int:
        return self.offered - self.granted

    @property
    def drop_rate(self) -> float:
        return self.dropped / self.offered if self.offered else 0.0

    def drop_rate_of(self, kind: str) -> float:
        subset = [r for r in self.records if r.kind == kind]
        if not subset:
            return 0.0
        return sum(1 for r in subset if not r.granted) / len(subset)

    def acquisition_times(self, granted_only: bool = True) -> np.ndarray:
        return np.array(
            [
                r.acquisition_time
                for r in self.records
                if r.granted or not granted_only
            ]
        )

    def mean_acquisition_time(self) -> float:
        times = self.acquisition_times()
        return float(times.mean()) if times.size else 0.0

    def acquisition_time_percentile(self, q: float) -> float:
        times = self.acquisition_times()
        return float(np.percentile(times, q)) if times.size else 0.0

    def queue_waits(self) -> np.ndarray:
        return np.array([r.queue_wait for r in self.records])

    def mean_attempts(self) -> float:
        """Average protocol attempts per *granted* request (paper's m)."""
        values = [r.attempts for r in self.records if r.granted]
        return float(np.mean(values)) if values else 0.0

    def max_attempts(self) -> int:
        values = [r.attempts for r in self.records]
        return max(values) if values else 0

    def mode_fractions(self) -> Dict[str, float]:
        """ξ1/ξ2/ξ3: fraction of granted acquisitions per path."""
        granted = [r for r in self.records if r.granted and r.mode]
        if not granted:
            return {}
        out: Dict[str, float] = {}
        for r in granted:
            out[r.mode] = out.get(r.mode, 0) + 1
        return {k: v / len(granted) for k, v in sorted(out.items())}

    def per_cell_drop_rates(self) -> Dict[int, float]:
        by_cell: Dict[int, List[bool]] = {}
        for r in self.records:
            by_cell.setdefault(r.cell, []).append(r.granted)
        return {
            cell: 1.0 - sum(grants) / len(grants)
            for cell, grants in sorted(by_cell.items())
        }

    def fairness_index(self) -> float:
        """Jain's fairness index over per-cell grant rates (1 = fair)."""
        rates = [1.0 - d for d in self.per_cell_drop_rates().values()]
        if not rates:
            return 1.0
        arr = np.array(rates)
        denom = len(arr) * float((arr**2).sum())
        if denom == 0:
            return 1.0
        return float(arr.sum()) ** 2 / denom

    # -- message statistics -----------------------------------------------------
    def messages_since_warmup(self, network) -> int:
        base = self._message_baseline_total if self._baseline_taken else 0
        return network.total_sent - base

    def messages_by_kind(self, network) -> Dict[str, int]:
        out = {}
        for kind, count in network.sent_by_kind.items():
            base = self._message_baseline.get(kind, 0) if self._baseline_taken else 0
            delta = count - base
            if delta:
                out[kind] = delta
        return dict(sorted(out.items()))

    def messages_per_acquisition(self, network) -> float:
        """Control messages per channel request (the paper's message
        complexity, measured end to end including releases)."""
        if not self.offered:
            return 0.0
        return self.messages_since_warmup(network) / self.offered
