"""Metrics: acquisition records, drop rates, latency, message counts."""

from .collector import AcquisitionRecord, MetricsCollector

__all__ = ["AcquisitionRecord", "MetricsCollector"]
