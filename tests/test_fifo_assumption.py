"""The adaptive protocol's FIFO-link assumption, made explicit.

The paper never states it, but the waiting/ACQUISITION handshake
requires per-link FIFO delivery: a searcher's ACQUISITION broadcast
must reach a responder before the searcher's *next* search request
does, or the responder would owe two unacknowledged responses to the
same node.  Our implementation asserts this invariant at runtime, so
running over a reordering network fails fast and loudly instead of
corrupting counters silently.
"""

import pytest

from repro import Scenario, run_scenario


def test_fifo_links_required_and_violation_detected():
    scenario = Scenario(
        scheme="adaptive",
        offered_load=9.0,
        duration=800.0,
        warmup=100.0,
        latency_model="uniform",
        latency_spread=2.0,
        fifo=False,  # adversarial: allow message overtaking
        seed=4,
    )
    with pytest.raises(AssertionError, match="second search response"):
        run_scenario(scenario)


def test_same_load_with_fifo_is_clean():
    scenario = Scenario(
        scheme="adaptive",
        offered_load=9.0,
        duration=800.0,
        warmup=100.0,
        latency_model="uniform",
        latency_spread=2.0,
        fifo=True,
        seed=4,
    )
    rep = run_scenario(scenario)
    assert rep.violations == 0
    assert rep.offered > 500
