"""Unit tests for named random substreams (StreamRegistry)."""

import numpy as np

from repro.sim import StreamRegistry


def test_same_name_same_stream_object():
    reg = StreamRegistry(seed=1)
    assert reg.stream("traffic", 3) is reg.stream("traffic", 3)


def test_same_seed_reproduces_draws():
    a = StreamRegistry(seed=5).stream("x").random(10)
    b = StreamRegistry(seed=5).stream("x").random(10)
    assert np.array_equal(a, b)


def test_different_names_are_independent():
    reg = StreamRegistry(seed=5)
    a = reg.stream("a").random(10)
    b = reg.stream("b").random(10)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = StreamRegistry(seed=1).stream("x").random(10)
    b = StreamRegistry(seed=2).stream("x").random(10)
    assert not np.array_equal(a, b)


def test_adding_consumer_does_not_perturb_existing():
    # Draw from "x" with and without another stream existing.
    reg1 = StreamRegistry(seed=9)
    only_x = reg1.stream("x").random(5)

    reg2 = StreamRegistry(seed=9)
    reg2.stream("y").random(100)  # unrelated consumer created first
    with_y = reg2.stream("x").random(5)
    assert np.array_equal(only_x, with_y)


def test_spawn_derives_child_registry():
    parent = StreamRegistry(seed=3)
    child1 = parent.spawn("rep", 0)
    child2 = parent.spawn("rep", 1)
    a = child1.stream("x").random(5)
    b = child2.stream("x").random(5)
    assert not np.array_equal(a, b)
    # Deterministic derivation.
    again = StreamRegistry(seed=3).spawn("rep", 0).stream("x").random(5)
    assert np.array_equal(a, again)


def test_multi_part_names():
    reg = StreamRegistry(seed=4)
    assert reg.stream("a", "b", 1) is reg.stream("a", "b", 1)
    assert reg.stream("a", "b", 1) is not reg.stream("a", "b", 2)
