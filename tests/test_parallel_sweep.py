"""Parallel experiment engine: determinism parity and failure capture.

The core guarantee under test: ``workers=N`` is purely a wall-clock
optimization — the rows that come back are bit-identical to the serial
run, for every scheme, and a crashing cell reports its traceback
without losing the rest of the grid.
"""

import pytest

from repro.faults import FaultPlan
from repro.harness import (
    ExperimentError,
    Scenario,
    default_workers,
    run_cells,
    run_replications,
    sweep,
)
from repro.harness.sweeps import to_csv


def quick(**kw):
    base = dict(
        duration=400.0, warmup=100.0, offered_load=4.0,
        mean_holding=60.0, seed=3,
    )
    base.update(kw)
    return Scenario(**base)


def test_parallel_sweep_rows_identical_to_serial():
    """sweep(workers=4) is row-for-row identical to serial, 3 schemes."""
    base = quick()
    kwargs = dict(
        parameter="scheme",
        values=["fixed", "basic_update", "adaptive"],
        seeds=[1, 2],
        cache=False,
    )
    serial = sweep(base, workers=1, **kwargs)
    parallel = sweep(base, workers=4, **kwargs)
    assert len(serial.rows) == 6
    assert parallel.rows == serial.rows
    # Full reports match on every headline quantity, not just the rows.
    for a, b in zip(serial.reports, parallel.reports):
        assert a.offered == b.offered
        assert a.drop_rate == b.drop_rate
        assert a.messages_total == b.messages_total
        assert a.mean_acquisition_time == b.mean_acquisition_time
        assert a.mode_fractions == b.mode_fractions


def test_run_replications_parallel_matches_serial():
    base = quick(scheme="basic_search")
    serial = run_replications(base, 3, workers=1, cache=False)
    parallel = run_replications(base, 3, workers=2, cache=False)
    assert [r.scenario.seed for r in serial] == [3, 4, 5]
    for a, b in zip(serial, parallel):
        assert a.scenario.seed == b.scenario.seed
        assert a.offered == b.offered
        assert a.drop_rate == b.drop_rate
        assert a.messages_total == b.messages_total


def test_faulty_sweep_parallel_identical_to_serial():
    """Fault injection stays deterministic across worker processes.

    The injector draws from a named seed stream that travels with the
    (serialized) scenario, so the same seed + FaultPlan must give
    byte-identical results no matter how the work is partitioned.
    """
    base = quick(scheme="adaptive", faults=FaultPlan.uniform_loss(0.05))
    kwargs = dict(
        parameter="scheme",
        values=["basic_update", "adaptive"],
        seeds=[3, 4],
        cache=False,
    )
    serial = sweep(base, workers=1, **kwargs)
    parallel = sweep(base, workers=4, **kwargs)
    assert parallel.rows == serial.rows
    assert to_csv(parallel) == to_csv(serial)
    for a, b in zip(serial.reports, parallel.reports):
        assert a.drop_rate == b.drop_rate
        assert a.messages_total == b.messages_total
        assert a.faults_injected == b.faults_injected
        assert a.faults_recovered == b.faults_recovered
        assert a.retries == b.retries
        assert a.retry_exhausted == b.retry_exhausted
    # Faults actually fired in this configuration (the parity above is
    # not vacuous).
    assert all(sum(r.faults_injected.values()) > 0 for r in serial.reports)


def test_failure_capture_completes_grid():
    """A crashing cell reports its traceback; the rest still run."""
    good = quick(scheme="fixed")
    bad = quick(scheme="nonesuch")
    cells = [good, bad, quick(scheme="fixed", seed=9)]
    with pytest.raises(ExperimentError) as excinfo:
        run_cells(cells, workers=2, cache=False)
    error = excinfo.value
    assert len(error.failures) == 1
    failure = error.failures[0]
    assert failure.index == 1
    assert failure.scenario.scheme == "nonesuch"
    assert "unknown scheme" in failure.traceback
    assert "nonesuch" in failure.summary()
    # The surviving cells completed and their reports are available.
    assert error.reports[1] is None
    assert error.reports[0] is not None and error.reports[2] is not None
    assert error.reports[0].offered > 0
    assert "1 of 3" in str(error)


def test_failure_capture_serial_path():
    with pytest.raises(ExperimentError) as excinfo:
        run_cells([quick(scheme="nonesuch")], workers=1, cache=False)
    assert len(excinfo.value.failures) == 1


def test_run_cells_rejects_non_scenarios():
    with pytest.raises(TypeError, match="not a Scenario"):
        run_cells(["adaptive"], cache=False)


def test_default_workers_positive():
    assert default_workers() >= 1


def test_workers_none_uses_cpu_count():
    """workers=None resolves to a pool; results still match serial."""
    base = quick(scheme="fixed")
    serial = run_replications(base, 2, workers=1, cache=False)
    auto = run_replications(base, 2, workers=None, cache=False)
    for a, b in zip(serial, auto):
        assert a.drop_rate == b.drop_rate
        assert a.offered == b.offered
