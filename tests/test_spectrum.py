"""Unit tests for reuse patterns and spectrum partitioning."""

import pytest

from repro.cellular import (
    CellularTopology,
    HexGrid,
    ReusePattern,
    Spectrum,
    cluster_shift,
    valid_cluster_sizes,
)


def test_valid_cluster_sizes_prefix():
    assert valid_cluster_sizes(13) == [1, 3, 4, 7, 9, 12, 13]


def test_cluster_shift_known_values():
    for k in (1, 3, 4, 7, 9, 12, 13, 19, 21):
        i, j = cluster_shift(k)
        assert i * i + i * j + j * j == k


def test_cluster_shift_invalid_k():
    for k in (2, 5, 6, 8, 10, 11):
        with pytest.raises(ValueError):
            cluster_shift(k)


def test_reuse_pattern_k7_has_seven_colors():
    g = HexGrid(7, 7, wrap=True)
    p = ReusePattern(g, 7)
    assert len(set(p.colors.values())) == 7
    # Balanced: each color appears 49/7 = 7 times
    for color in range(7):
        assert len(p.cells_of_color(color)) == 7


def test_reuse_pattern_neighbors_differ_in_color():
    g = HexGrid(7, 7, wrap=True)
    p = ReusePattern(g, 7)
    for cell in g:
        for n in g.neighbors(cell):
            assert p.color(cell) != p.color(n)


def test_same_color_cells_beyond_interference_radius():
    g = HexGrid(7, 7, wrap=True)
    p = ReusePattern(g, 7)
    for a in g:
        for b in g:
            if a < b and p.color(a) == p.color(b):
                assert g.distance(a, b) >= 3


def test_min_cochannel_distance_values():
    g = HexGrid(12, 12, wrap=False)
    assert ReusePattern(g, 7).min_cochannel_distance() == 3
    assert ReusePattern(g, 3).min_cochannel_distance() == 2
    assert ReusePattern(g, 4).min_cochannel_distance() == 2
    assert ReusePattern(g, 9).min_cochannel_distance() == 3
    assert ReusePattern(g, 12).min_cochannel_distance() == 4


def test_validate_against_radius():
    g = HexGrid(12, 12, wrap=False)
    p = ReusePattern(g, 7)
    p.validate_against_radius(2)  # fine: co-channel distance is 3
    with pytest.raises(ValueError):
        p.validate_against_radius(3)


def test_incompatible_torus_rejected():
    # 8x8 torus is not a multiple of the k=7 reuse lattice.
    g = HexGrid(8, 8, wrap=True)
    with pytest.raises(ValueError, match="incompatible"):
        ReusePattern(g, 7)


def test_compatible_tori():
    ReusePattern(HexGrid(7, 7, wrap=True), 7)
    ReusePattern(HexGrid(14, 14, wrap=True), 7)
    ReusePattern(HexGrid(6, 6, wrap=True), 3)
    ReusePattern(HexGrid(6, 6, wrap=True), 4)  # (2,0): even dims work


def test_k9_coloring_with_gcd_shift():
    # k=9 has shift (3, 0) with gcd 3 — exercises the lattice-reduction
    # path where simple modular formulas fail.
    g = HexGrid(9, 9, wrap=True)
    p = ReusePattern(g, 9)
    assert len(set(p.colors.values())) == 9
    for a in g:
        for b in g:
            if a < b and p.color(a) == p.color(b):
                assert g.distance(a, b) >= 3


def test_bad_explicit_shift_rejected():
    g = HexGrid(7, 7, wrap=False)
    with pytest.raises(ValueError):
        ReusePattern(g, 7, shift=(1, 1))


def test_spectrum_balanced_partition():
    s = Spectrum(70)
    sets = [s.channels_of_color(c, 7) for c in range(7)]
    assert all(len(x) == 10 for x in sets)
    union = frozenset().union(*sets)
    assert union == s.all_channels
    for i in range(7):
        for j in range(i + 1, 7):
            assert not (sets[i] & sets[j])


def test_spectrum_uneven_partition():
    s = Spectrum(71)
    sizes = sorted(len(s.channels_of_color(c, 7)) for c in range(7))
    assert sizes == [10] * 6 + [11]
    assert sum(sizes) == 71


def test_spectrum_invalid():
    with pytest.raises(ValueError):
        Spectrum(0)
    with pytest.raises(ValueError):
        Spectrum(10).channels_of_color(7, 7)


def test_primary_sets_cover_spectrum_within_cluster():
    g = HexGrid(7, 7, wrap=True)
    p = ReusePattern(g, 7)
    s = Spectrum(70)
    pr = s.primary_sets(p)
    # A cell plus its interference region covers... each color appears at
    # least once in {cell} ∪ IN for radius 2 and k=7, so the union of
    # primaries over any 1-cluster neighborhood is the whole spectrum.
    im = g.interference_map(2)
    for cell in g:
        covered = set(pr[cell])
        for other in im[cell]:
            covered |= pr[other]
        assert covered == set(s.all_channels)


def test_topology_defaults():
    topo = CellularTopology(7, 7, num_channels=70, cluster_size=7, wrap=True)
    assert topo.num_cells == 49
    assert topo.num_channels == 70
    assert topo.interference_radius == 2
    for cell in topo.grid:
        assert len(topo.IN(cell)) == 18
        assert topo.primary_capacity(cell) == 10
        assert cell not in topo.IN(cell)


def test_topology_primary_disjoint_within_interference():
    topo = CellularTopology(7, 7, num_channels=70, wrap=True)
    for cell in topo.grid:
        for other in topo.IN(cell):
            assert not (topo.PR(cell) & topo.PR(other))


def test_topology_describe_mentions_shape():
    topo = CellularTopology(7, 7, num_channels=70, wrap=True)
    text = topo.describe()
    assert "7x7" in text and "70 channels" in text and "k=7" in text


def test_topology_explicit_radius_validated():
    with pytest.raises(ValueError):
        CellularTopology(7, 7, num_channels=70, cluster_size=3,
                         interference_radius=2, wrap=False)
