"""Unit tests for hexagonal grid geometry."""

import numpy as np
import pytest

from repro.cellular import Hex, HexGrid, hex_distance


def test_hex_cube_invariant():
    h = Hex(3, -5)
    assert h.q + h.r + h.s == 0


def test_hex_distance_axioms():
    a, b, c = Hex(0, 0), Hex(2, -1), Hex(-3, 4)
    assert hex_distance(a, a) == 0
    assert hex_distance(a, b) == hex_distance(b, a)
    assert hex_distance(a, c) <= hex_distance(a, b) + hex_distance(b, c)


def test_hex_distance_known_values():
    origin = Hex(0, 0)
    assert hex_distance(origin, Hex(1, 0)) == 1
    assert hex_distance(origin, Hex(0, 1)) == 1
    assert hex_distance(origin, Hex(1, -1)) == 1
    assert hex_distance(origin, Hex(1, 1)) == 2
    assert hex_distance(origin, Hex(2, -1)) == 2
    assert hex_distance(origin, Hex(2, 1)) == 3  # k=7 co-channel shift


def test_hex_neighbors_are_all_at_distance_one():
    h = Hex(4, -2)
    nbrs = h.neighbors()
    assert len(nbrs) == 6
    assert len(set(nbrs)) == 6
    assert all(hex_distance(h, n) == 1 for n in nbrs)


def test_hex_add_sub():
    assert Hex(1, 2) + Hex(3, -1) == Hex(4, 1)
    assert Hex(1, 2) - Hex(3, -1) == Hex(-2, 3)


def test_grid_dimensions_and_ids():
    g = HexGrid(3, 4)
    assert g.num_cells == 12
    assert len(g) == 12
    assert list(g) == list(range(12))
    # Round trip id <-> coord
    for cell in g:
        assert g.cell_at(g.coord(cell)) == cell


def test_grid_invalid_dimensions():
    with pytest.raises(ValueError):
        HexGrid(0, 5)
    with pytest.raises(ValueError):
        HexGrid(5, -1)


def test_unwrapped_interior_cell_has_six_neighbors():
    g = HexGrid(5, 5, wrap=False)
    center = g.cell_at(Hex(2, 2))
    assert len(g.neighbors(center)) == 6


def test_unwrapped_corner_cell_has_fewer_neighbors():
    g = HexGrid(5, 5, wrap=False)
    corner = g.cell_at(Hex(0, 0))
    assert len(g.neighbors(corner)) < 6


def test_wrapped_grid_every_cell_has_six_neighbors():
    g = HexGrid(7, 7, wrap=True)
    for cell in g:
        nbrs = g.neighbors(cell)
        assert len(nbrs) == 6
        assert len(set(nbrs)) == 6


def test_wrapped_neighbor_symmetry():
    g = HexGrid(7, 7, wrap=True)
    for cell in g:
        for n in g.neighbors(cell):
            assert cell in g.neighbors(n)


def test_wrapped_distance_symmetry():
    g = HexGrid(6, 6, wrap=True)
    rng = np.random.default_rng(0)
    for _ in range(50):
        a, b = rng.integers(0, g.num_cells, size=2)
        assert g.distance(int(a), int(b)) == g.distance(int(b), int(a))


def test_wrapped_distance_never_exceeds_planar():
    planar = HexGrid(9, 9, wrap=False)
    torus = HexGrid(9, 9, wrap=True)
    rng = np.random.default_rng(1)
    for _ in range(100):
        a, b = (int(x) for x in rng.integers(0, 81, size=2))
        assert torus.distance(a, b) <= planar.distance(a, b)


def test_cell_at_outside_unwrapped_grid_raises():
    g = HexGrid(3, 3, wrap=False)
    with pytest.raises(KeyError):
        g.cell_at(Hex(10, 10))


def test_cell_at_wraps_on_torus():
    g = HexGrid(3, 3, wrap=True)
    assert g.cell_at(Hex(3, 0)) == g.cell_at(Hex(0, 0))
    assert g.cell_at(Hex(-1, -1)) == g.cell_at(Hex(2, 2))


def test_ring_and_disk_consistency():
    g = HexGrid(9, 9, wrap=True)
    center = 40
    disk2 = set(g.disk(center, 2))
    assert disk2 == set(g.ring(center, 1)) | set(g.ring(center, 2))
    assert center not in disk2


def test_ring_sizes_on_torus():
    g = HexGrid(9, 9, wrap=True)
    assert len(g.ring(0, 1)) == 6
    assert len(g.ring(0, 2)) == 12


def test_interference_region_two_rings():
    g = HexGrid(7, 7, wrap=True)
    region = g.interference_region(0, 2)
    assert len(region) == 18  # 6 + 12
    assert all(1 <= g.distance(0, c) <= 2 for c in region)


def test_interference_region_symmetric():
    g = HexGrid(7, 7, wrap=True)
    im = g.interference_map(2)
    for i in g:
        for j in im[i]:
            assert i in im[j]


def test_interference_region_torus_too_small():
    g = HexGrid(4, 4, wrap=True)
    with pytest.raises(ValueError):
        g.interference_region(0, 2)


def test_interference_region_cached():
    g = HexGrid(7, 7, wrap=True)
    assert g.interference_region(3, 2) is g.interference_region(3, 2)


def test_random_walk_step_is_adjacent():
    g = HexGrid(7, 7, wrap=True)
    rng = np.random.default_rng(2)
    cell = 24
    for _ in range(20):
        nxt = g.random_walk_step(cell, rng)
        assert nxt in g.neighbors(cell)
        cell = nxt


def test_random_walk_on_single_cell_grid():
    g = HexGrid(1, 1, wrap=False)
    rng = np.random.default_rng(0)
    assert g.random_walk_step(0, rng) == 0
