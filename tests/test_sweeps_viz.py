"""Unit tests for the sweep utility and terminal visualizations."""


from repro.harness import (
    Scenario,
    SweepResult,
    bar_chart,
    hex_heatmap,
    sparkline,
    sweep,
    to_csv,
)


def quick_base():
    return Scenario(
        scheme="fixed", duration=400.0, warmup=100.0, mean_holding=60.0
    )


def test_sweep_over_scenario_field():
    res = sweep(quick_base(), "offered_load", [2.0, 8.0], seeds=[1, 2])
    assert len(res.rows) == 4
    assert res.values() == [2.0, 8.0]
    means = res.mean_over_seeds("drop_rate")
    assert means[2.0] < means[8.0]  # more load, more blocking


def test_sweep_rows_carry_seed_and_columns():
    res = sweep(quick_base(), "offered_load", [3.0], seeds=[5])
    row = res.rows[0]
    assert row["seed"] == 5
    assert "drop_rate" in row and "violations" in row
    assert row["violations"] == 0


def test_sweep_over_extra_param():
    base = quick_base().with_(scheme="adaptive", offered_load=8.0)
    res = sweep(base, "best_policy", ["best", "first"], seeds=[1])
    assert len(res.rows) == 2
    assert {r["best_policy"] for r in res.rows} == {"best", "first"}


def test_sweep_extra_callback():
    res = sweep(
        quick_base(),
        "offered_load",
        [2.0],
        extra=lambda rep: {"offered": rep.offered},
    )
    assert res.rows[0]["offered"] > 0


def test_table_rows_aggregates_means():
    res = sweep(quick_base(), "offered_load", [2.0, 8.0], seeds=[1, 2])
    rows = res.table_rows(["drop_rate"])
    assert len(rows) == 2
    assert rows[0][0] == 2.0 and rows[1][0] == 8.0


def test_to_csv_round_trip():
    res = sweep(quick_base(), "offered_load", [2.0], seeds=[1])
    text = to_csv(res)
    lines = text.strip().splitlines()
    assert lines[0].startswith("offered_load,seed,")
    assert len(lines) == 2


def test_to_csv_empty():
    assert to_csv(SweepResult(parameter="x", columns=[])) == ""


# ------------------------------------------------------------------ viz ----
def test_sparkline_shape():
    s = sparkline([0, 1, 2, 3, 2, 1, 0])
    assert len(s) == 7
    assert s[0] == "▁" and s[3] == "█"


def test_sparkline_flat_and_empty():
    assert sparkline([]) == ""
    assert sparkline([5, 5, 5]) == "▁▁▁"


def test_bar_chart_alignment():
    out = bar_chart({"alpha": 1.0, "much-longer": 0.5})
    lines = out.splitlines()
    assert len(lines) == 2
    assert lines[0].index("█") == lines[1].index(" ", 1) or True
    assert "1.000" in lines[0]


def test_bar_chart_empty():
    assert bar_chart({}) == ""


def test_hex_heatmap_renders_grid():
    values = {i: float(i) for i in range(9)}
    out = hex_heatmap(values, rows=3, cols=3)
    lines = out.splitlines()
    assert len(lines) == 3
    assert lines[1].startswith(" ")  # hex offset
    assert lines[2].startswith("  ")
    # Highest value gets the densest glyph.
    assert "@" in lines[2]
