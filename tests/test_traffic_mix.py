"""Tests for multi-class (voice/data) traffic mixes."""

import numpy as np
import pytest

from repro.protocols import FixedMSS
from repro.sim import StreamRegistry
from repro.traffic import CallConfig, TrafficClass, TrafficMix, TrafficSource, UniformLoad

from conftest import make_stack


def voice_data_mix(voice_weight=0.7):
    return TrafficMix(
        [
            TrafficClass("voice", voice_weight, CallConfig(mean_holding=180.0)),
            TrafficClass("data", 1 - voice_weight, CallConfig(mean_holding=20.0)),
        ]
    )


def test_mix_validation():
    with pytest.raises(ValueError):
        TrafficMix([])
    with pytest.raises(ValueError):
        TrafficClass("", 1.0, CallConfig())
    with pytest.raises(ValueError):
        TrafficClass("x", 0.0, CallConfig())
    with pytest.raises(ValueError):
        TrafficMix(
            [
                TrafficClass("a", 1.0, CallConfig()),
                TrafficClass("a", 1.0, CallConfig()),
            ]
        )


def test_sampling_follows_weights():
    mix = voice_data_mix(0.8)
    rng = np.random.default_rng(0)
    draws = [mix.sample(rng).name for _ in range(4000)]
    voice_frac = draws.count("voice") / len(draws)
    assert voice_frac == pytest.approx(0.8, abs=0.03)


def test_mean_holding_weighted():
    mix = voice_data_mix(0.5)
    assert mix.mean_holding == pytest.approx((180 + 20) / 2)


def test_source_accounts_per_class():
    env, net, topo, stations, monitor, metrics = make_stack(FixedMSS)
    mix = voice_data_mix(0.6)
    src = TrafficSource(
        env,
        stations,
        UniformLoad(0.02),
        mix,
        StreamRegistry(seed=4),
        horizon=1500.0,
    )
    src.start()
    env.run()  # drain
    voice, data = mix.logs["voice"], mix.logs["data"]
    assert voice.started > 0 and data.started > 0
    assert voice.started + data.started == src.log.started
    combined = mix.combined_log()
    assert combined.started == src.log.started
    assert combined.completed == src.log.completed
    # All calls resolved one way or the other.
    assert src.log.completed + src.log.blocked == src.log.started
    # Every channel returned.
    assert all(not s.use for s in stations.values())


def test_single_config_path_unchanged():
    env, net, topo, stations, monitor, metrics = make_stack(FixedMSS)
    src = TrafficSource(
        env,
        stations,
        UniformLoad(0.02),
        CallConfig(mean_holding=30.0),
        StreamRegistry(seed=4),
        horizon=500.0,
    )
    src.start()
    env.run()
    assert src.mix is None
    assert src.log.started > 0
    assert src.log.completed + src.log.blocked == src.log.started
