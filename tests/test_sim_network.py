"""Unit tests for the message-passing network substrate."""

import numpy as np
import pytest

from repro.sim import (
    DeterministicLatency,
    Environment,
    ExponentialLatency,
    Network,
    UniformLatency,
)


class Sink:
    """Test node recording (time, src, payload) of every delivery."""

    def __init__(self, node_id, env):
        self.node_id = node_id
        self.env = env
        self.received = []

    def on_message(self, envelope):
        self.received.append((self.env.now, envelope.src, envelope.payload))


def make_net(env, **kw):
    net = Network(env, **kw)
    nodes = [Sink(i, env) for i in range(4)]
    for n in nodes:
        net.attach(n)
    return net, nodes


def test_deterministic_latency_delivery_time():
    env = Environment()
    net, nodes = make_net(env, latency=DeterministicLatency(2.5))
    net.send(0, 1, "hi")
    env.run()
    assert nodes[1].received == [(2.5, 0, "hi")]


def test_duplicate_node_id_rejected():
    env = Environment()
    net = Network(env)
    net.attach(Sink(1, env))
    with pytest.raises(ValueError):
        net.attach(Sink(1, env))


def test_unknown_destination_rejected():
    env = Environment()
    net, _ = make_net(env)
    with pytest.raises(KeyError):
        net.send(0, 99, "lost")


def test_message_counting_by_kind():
    class Ping:
        pass

    class Pong:
        pass

    env = Environment()
    net, _ = make_net(env)
    net.send(0, 1, Ping())
    net.send(1, 0, Pong())
    net.send(0, 2, Ping())
    env.run()
    assert net.total_sent == 3
    assert net.sent_by_kind == {"Ping": 2, "Pong": 1}


def test_multicast_counts_messages():
    env = Environment()
    net, nodes = make_net(env)
    n = net.multicast(0, [1, 2, 3], "all")
    env.run()
    assert n == 3
    assert all(len(nodes[i].received) == 1 for i in (1, 2, 3))


def test_fifo_preserves_order_under_random_latency():
    env = Environment()
    rng = np.random.default_rng(0)
    net, nodes = make_net(env, latency=UniformLatency(1, 10, rng), fifo=True)
    for i in range(50):
        net.send(0, 1, i)
    env.run()
    payloads = [p for _, _, p in nodes[1].received]
    assert payloads == list(range(50))


def test_non_fifo_allows_overtaking():
    env = Environment()
    rng = np.random.default_rng(7)
    net, nodes = make_net(env, latency=UniformLatency(1, 10, rng), fifo=False)
    for i in range(50):
        net.send(0, 1, i)
    env.run()
    payloads = [p for _, _, p in nodes[1].received]
    assert sorted(payloads) == list(range(50))
    assert payloads != list(range(50))  # with this seed, overtaking occurs


def test_delay_override_forces_latency():
    env = Environment()
    net, nodes = make_net(env, latency=DeterministicLatency(1.0), fifo=False)
    net.send(0, 1, "slow", delay_override=9.0)
    net.send(0, 1, "fast")
    env.run()
    assert [p for _, _, p in nodes[1].received] == ["fast", "slow"]


def test_send_and_deliver_hooks():
    env = Environment()
    net, _ = make_net(env)
    sends, delivers = [], []
    net.on_send.append(lambda e: sends.append(e.payload))
    net.on_deliver.append(lambda e: delivers.append(e.payload))
    net.send(0, 1, "x")
    assert sends == ["x"] and delivers == []
    env.run()
    assert delivers == ["x"]


def test_envelope_metadata():
    env = Environment()
    net, nodes = make_net(env, latency=DeterministicLatency(3.0))

    def later():
        yield env.timeout(10)
        e = net.send(2, 3, "meta")
        assert e.sent_at == 10
        assert e.deliver_at == 13
        assert e.src == 2 and e.dst == 3

    env.process(later())
    env.run()
    assert nodes[3].received == [(13.0, 2, "meta")]


def test_latency_model_validation():
    with pytest.raises(ValueError):
        DeterministicLatency(0)
    with pytest.raises(ValueError):
        UniformLatency(0, 1, np.random.default_rng(0))
    with pytest.raises(ValueError):
        UniformLatency(5, 2, np.random.default_rng(0))
    with pytest.raises(ValueError):
        ExponentialLatency(0, 1, np.random.default_rng(0))


def test_exponential_latency_bounded_by_cap():
    rng = np.random.default_rng(1)
    lat = ExponentialLatency(1.0, 2.0, rng, cap=4.0)
    samples = [lat.sample(0, 1) for _ in range(200)]
    assert all(1.0 <= s <= 4.0 for s in samples)
    assert lat.max_delay == 4.0


def test_deterministic_max_delay():
    assert DeterministicLatency(2.0).max_delay == 2.0
    assert UniformLatency(1, 3, np.random.default_rng(0)).max_delay == 3
