"""Unit tests for the SIM static checks (``tools.check``).

Each rule gets a firing fixture and a silent fixture, plus noqa
suppression; finally the real tree must be clean.
"""

import pathlib
import sys
import textwrap

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT))

from tools.check import RULES, check_file, check_paths  # noqa: E402


def write(tmp_path, relpath, source):
    """Write ``source`` under a scope-matching relative path."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return str(path)


def codes(findings):
    return [f.code for f in findings]


# ------------------------------------------------------------------ SIM001 ----
def test_sim001_fires_on_wall_clock(tmp_path):
    path = write(
        tmp_path,
        "src/repro/sim/x.py",
        """
        import time
        from datetime import datetime

        def f():
            return time.time(), datetime.now()
        """,
    )
    assert codes(check_file(path)) == ["SIM001", "SIM001"]


def test_sim001_resolves_aliases(tmp_path):
    path = write(
        tmp_path,
        "src/repro/core/x.py",
        """
        import time as clock
        from time import monotonic as mono

        def f():
            return clock.perf_counter() + mono()
        """,
    )
    assert codes(check_file(path)) == ["SIM001", "SIM001"]


def test_sim001_silent_outside_scope_and_on_env_now(tmp_path):
    in_scope = write(
        tmp_path,
        "src/repro/protocols/x.py",
        """
        def f(env):
            return env.now  # simulated time: fine
        """,
    )
    out_of_scope = write(
        tmp_path,
        "src/repro/harness/x.py",
        """
        import time

        def wall():
            return time.time()  # harness timing a real run: allowed
        """,
    )
    assert check_file(in_scope) == []
    assert codes(check_file(out_of_scope)) == []


# ------------------------------------------------------------------ SIM002 ----
def test_sim002_fires_on_global_rng(tmp_path):
    path = write(
        tmp_path,
        "src/repro/traffic/x.py",
        """
        import random
        import numpy as np

        def f():
            return random.random() + np.random.rand()
        """,
    )
    assert codes(check_file(path)) == ["SIM002", "SIM002"]


def test_sim002_allows_seeded_generator_construction(tmp_path):
    path = write(
        tmp_path,
        "src/repro/traffic/x.py",
        """
        import numpy as np

        def f(seed):
            rng = np.random.default_rng(seed)
            return rng.random()
        """,
    )
    assert check_file(path) == []


def test_sim002_exempts_rng_module(tmp_path):
    path = write(
        tmp_path,
        "src/repro/sim/rng.py",
        """
        import numpy as np

        def f(seed):
            return np.random.SeedSequence(seed)
        """,
    )
    assert check_file(path) == []


# ------------------------------------------------------------------ SIM003 ----
def test_sim003_fires_on_direct_use_mutation(tmp_path):
    path = write(
        tmp_path,
        "src/repro/core/x.py",
        """
        class P:
            def grab(self, ch):
                self.use.add(ch)

            def reset(self):
                self.use = set()
        """,
    )
    assert codes(check_file(path)) == ["SIM003", "SIM003"]


def test_sim003_silent_in_base_and_for_other_attrs(tmp_path):
    base = write(
        tmp_path,
        "src/repro/protocols/base.py",
        """
        class MSS:
            def _grab(self, ch):
                self.use.add(ch)  # the owner: allowed
        """,
    )
    other = write(
        tmp_path,
        "src/repro/protocols/x.py",
        """
        class P:
            def note(self, ch):
                self.pending.add(ch)  # not channel-use state
                other.use.add(ch)  # not *self* use
        """,
    )
    assert check_file(base) == []
    assert check_file(other) == []


# ------------------------------------------------------------------ SIM004 ----
def test_sim004_fires_on_direct_handler_call(tmp_path):
    path = write(
        tmp_path,
        "src/repro/protocols/x.py",
        """
        class P:
            def shortcut(self, msg, peer):
                self._on_Request(msg)
                peer.on_message(msg)
        """,
    )
    assert codes(check_file(path)) == ["SIM004", "SIM004"]


def test_sim004_silent_on_definitions_and_sends(tmp_path):
    path = write(
        tmp_path,
        "src/repro/protocols/x.py",
        """
        class P:
            def _on_Request(self, msg):
                self.network.send(self.cell, msg.sender, msg)
        """,
    )
    assert check_file(path) == []


# ------------------------------------------------------------------ SIM005 ----
def test_sim005_fires_on_bare_except_in_handler(tmp_path):
    path = write(
        tmp_path,
        "src/repro/protocols/x.py",
        """
        class P:
            def _on_Request(self, msg):
                try:
                    self.grant(msg)
                except:
                    pass

            def on_message(self, env):
                try:
                    self.dispatch(env)
                except Exception:
                    pass
        """,
    )
    assert codes(check_file(path)) == ["SIM005", "SIM005"]


def test_sim005_silent_on_specific_and_handled_exceptions(tmp_path):
    path = write(
        tmp_path,
        "src/repro/core/x.py",
        """
        class P:
            def _on_Request(self, msg):
                try:
                    self.grant(msg)
                except ValueError:
                    self.reject(msg)

            def on_message(self, env):
                try:
                    self.dispatch(env)
                except Exception:
                    self.log(env)  # not swallowed: acted upon
                    raise
        """,
    )
    assert check_file(path) == []


def test_sim005_silent_outside_handlers(tmp_path):
    path = write(
        tmp_path,
        "src/repro/protocols/x.py",
        """
        def helper():
            try:
                risky()
            except:
                pass
        """,
    )
    assert check_file(path) == []


# ------------------------------------------------------------- suppression ----
def test_noqa_suppresses_named_rule(tmp_path):
    path = write(
        tmp_path,
        "src/repro/sim/x.py",
        """
        import time

        def f():
            return time.time()  # repro: noqa(SIM001)
        """,
    )
    assert check_file(path) == []


def test_noqa_only_suppresses_named_rules(tmp_path):
    path = write(
        tmp_path,
        "src/repro/core/x.py",
        """
        import time

        def f(self):
            self.use.add(time.time())  # repro: noqa(SIM003)
        """,
    )
    assert codes(check_file(path)) == ["SIM001"]


def test_bare_noqa_suppresses_everything(tmp_path):
    path = write(
        tmp_path,
        "src/repro/core/x.py",
        """
        import time

        def f(self):
            self.use.add(time.time())  # repro: noqa
        """,
    )
    assert check_file(path) == []


def test_stale_bare_noqa_flagged(tmp_path):
    path = write(
        tmp_path,
        "src/repro/sim/x.py",
        """
        def f(x):
            return x + 1  # repro: noqa
        """,
    )
    findings = check_file(path)
    assert codes(findings) == ["SIM100"]
    assert "bare" in findings[0].message


def test_stale_named_noqa_flagged(tmp_path):
    path = write(
        tmp_path,
        "src/repro/sim/x.py",
        """
        def f(x):
            return x + 1  # repro: noqa(SIM001)
        """,
    )
    findings = check_file(path)
    assert codes(findings) == ["SIM100"]
    assert "SIM001" in findings[0].message


def test_used_noqa_is_not_stale(tmp_path):
    path = write(
        tmp_path,
        "src/repro/sim/x.py",
        """
        import time

        def f():
            return time.time()  # repro: noqa(SIM001)

        def g():
            return time.time()  # repro: noqa
        """,
    )
    assert check_file(path) == []


def test_foreign_runner_codes_not_judged_stale(tmp_path):
    # SIM006 belongs to the tools.analyze rule set; a pragma for it must
    # not be declared stale by a tools.check run that never evaluates it.
    path = write(
        tmp_path,
        "src/repro/sim/x.py",
        """
        def f(self, d):
            for j in d.keys():
                self._send(j, 1)  # repro: noqa(SIM006)
        """,
    )
    assert check_file(path) == []


def test_stale_noqa_cannot_suppress_itself(tmp_path):
    path = write(
        tmp_path,
        "src/repro/sim/x.py",
        """
        def f(x):
            return x + 1  # repro: noqa(SIM100)
        """,
    )
    assert codes(check_file(path)) == ["SIM100"]


# ----------------------------------------------------------- shared schema ----
def test_finding_to_dict_schema(tmp_path):
    path = write(
        tmp_path,
        "src/repro/sim/x.py",
        """
        import time
        t = time.time()
        """,
    )
    payload = check_file(path)[0].to_dict()
    assert payload["code"] == "SIM001"
    assert payload["path"] == path
    assert payload["line"] == 3
    assert payload["col"] == 4
    assert payload["url"] == "docs/CHECKS.md#sim001"
    assert "time.time()" in payload["message"]


def test_cli_json_format(tmp_path, capsys):
    import json

    from tools.check.__main__ import main as check_main

    path = write(
        tmp_path,
        "src/repro/sim/x.py",
        """
        import time
        t = time.time()
        """,
    )
    assert check_main([path, "--format", "json"]) == 1
    out = json.loads(capsys.readouterr().out)
    assert [f["code"] for f in out] == ["SIM001"]
    assert set(out[0]) == {"code", "path", "line", "col", "message", "url"}


# ------------------------------------------------------------------ engine ----
def test_syntax_error_reported_not_raised(tmp_path):
    path = write(tmp_path, "src/repro/sim/x.py", "def broken(:\n")
    assert codes(check_file(path)) == ["SIM000"]


def test_finding_format_and_location(tmp_path):
    path = write(
        tmp_path,
        "src/repro/sim/x.py",
        """
        import time
        t = time.time()
        """,
    )
    finding = check_file(path)[0]
    assert str(finding) == (
        f"{path}:3:4: SIM001 wall-clock call time.time() in simulation "
        "code; simulated time must come from env.now"
    )


def test_registry_codes_unique_and_documented():
    seen = [rule.code for rule in RULES]
    assert seen == sorted(set(seen))
    for rule in RULES:
        assert rule.description
        assert rule.paths


def test_repository_tree_is_clean():
    findings = check_paths([str(ROOT / "src"), str(ROOT / "tools")])
    assert findings == [], "\n".join(str(f) for f in findings)
