"""Tests for replication statistics (CIs and paired comparisons)."""

import math

import pytest

from repro.harness import CI, Scenario, compare, run_replications, summarize
from repro.harness.stats import _interval, _t95


def test_interval_known_values():
    ci = _interval([1.0, 2.0, 3.0])
    assert ci.mean == pytest.approx(2.0)
    # s = 1, t(2, .95) = 4.303 → half = 4.303/sqrt(3)
    assert ci.half_width == pytest.approx(4.303 / math.sqrt(3), rel=1e-3)
    assert ci.n == 3
    assert ci.low < 2.0 < ci.high


def test_interval_single_sample_infinite():
    ci = _interval([5.0])
    assert ci.mean == 5.0
    assert math.isinf(ci.half_width)


def test_interval_empty_rejected():
    with pytest.raises(ValueError):
        _interval([])


def test_t95_table_and_normal_tail():
    assert _t95(1) == pytest.approx(12.706)
    assert _t95(30) == pytest.approx(2.042)
    assert _t95(100) == pytest.approx(1.96)
    with pytest.raises(ValueError):
        _t95(0)


def test_ci_excludes_zero():
    assert CI(1.0, 0.5, 5).excludes_zero()
    assert CI(-1.0, 0.5, 5).excludes_zero()
    assert not CI(0.1, 0.5, 5).excludes_zero()


def test_ci_str():
    text = str(CI(0.5, 0.1, 4))
    assert "0.5" in text and "n=4" in text


def quick(scheme):
    return Scenario(
        scheme=scheme, offered_load=8.0, duration=600.0, warmup=100.0,
        mean_holding=60.0, seed=5,
    )


def test_summarize_over_replications():
    reps = run_replications(quick("fixed"), 3)
    stats = summarize(reps, ["drop_rate", "offered"])
    assert set(stats) == {"drop_rate", "offered"}
    assert stats["drop_rate"].n == 3
    assert 0 <= stats["drop_rate"].mean <= 1


def test_compare_paired_by_seed():
    fixed = run_replications(quick("fixed"), 3)
    adaptive = run_replications(quick("adaptive"), 3)
    diff = compare(fixed, adaptive, "drop_rate")
    assert diff.n == 3
    # Adaptive should not be worse at this load; the sign of the mean
    # difference (fixed - adaptive) is non-negative.
    assert diff.mean >= -0.01


def test_compare_unpaired_rejected():
    fixed = run_replications(quick("fixed"), 2)
    adaptive = run_replications(quick("adaptive").with_(seed=99), 2)
    with pytest.raises(ValueError, match="paired"):
        compare(fixed, adaptive, "drop_rate")
    with pytest.raises(ValueError, match="length"):
        compare(fixed[:1], adaptive, "drop_rate")
