"""Unit tests for the NFC sliding-window predictor (Fig. 6 machinery)."""

import pytest

from repro.core import NFCWindow


def test_initial_value_returned_before_history():
    w = NFCWindow(window=10, initial=7)
    assert w.get(0) == 7
    assert w.get(-100) == 7
    assert w.current == 7


def test_step_function_semantics():
    w = NFCWindow(window=100)
    w.add(10, 5)
    w.add(20, 3)
    w.add(30, 8)
    assert w.get(5) == 0  # initial
    assert w.get(10) == 5
    assert w.get(15) == 5
    assert w.get(20) == 3
    assert w.get(29.999) == 3
    assert w.get(30) == 8
    assert w.get(1000) == 8


def test_same_instant_update_supersedes():
    w = NFCWindow(window=10)
    w.add(5, 1)
    w.add(5, 4)
    assert w.get(5) == 4


def test_out_of_order_add_rejected():
    w = NFCWindow(window=10)
    w.add(5, 1)
    with pytest.raises(ValueError):
        w.add(4, 2)


def test_negative_count_rejected():
    w = NFCWindow(window=10)
    with pytest.raises(ValueError):
        w.add(1, -1)


def test_invalid_window_rejected():
    with pytest.raises(ValueError):
        NFCWindow(window=0)
    with pytest.raises(ValueError):
        NFCWindow(window=-5)


def test_pruning_keeps_boundary_value():
    w = NFCWindow(window=10)
    w.add(0, 9)
    w.add(100, 2)  # horizon = 90: the t=0 sample is clamped to t=90
    assert w.get(90) == 9  # boundary still answerable
    assert w.get(95) == 9
    assert w.get(100) == 2
    assert len(w) == 2


def test_pruning_drops_interior_samples():
    w = NFCWindow(window=5)
    for t in range(20):
        w.add(t, t % 3)
    # Only samples within [14, 19] plus one boundary survive.
    assert len(w) <= 8


def test_predict_steady_state_is_flat():
    w = NFCWindow(window=10)
    w.add(0, 4)
    w.add(50, 4)
    assert w.predict(50, horizon=2) == pytest.approx(4.0)


def test_predict_declining_trend_extrapolates_down():
    w = NFCWindow(window=10)
    w.add(0, 10)
    w.add(10, 6)  # lost 4 channels over the window
    # next = 6 + 2*(6-10)/10 = 5.2 for horizon 2
    assert w.predict(10, horizon=2) == pytest.approx(5.2)


def test_predict_rising_trend_extrapolates_up():
    w = NFCWindow(window=10)
    w.add(0, 2)
    w.add(10, 6)
    assert w.predict(10, horizon=5) == pytest.approx(6 + 5 * 0.4)


def test_predict_uses_window_boundary_value():
    w = NFCWindow(window=10, initial=0)
    w.add(0, 10)
    w.add(15, 4)
    # At t=15: s=4, last=get(5)=10 → next = 4 + h*(4-10)/10
    assert w.predict(15, horizon=10) == pytest.approx(4 - 6.0)
