"""Scenario result cache: round trip, invalidation, kill switch."""

import os

from repro.harness import ResultCache, Scenario, cache_key, code_stamp, run_cells
from repro.harness.cache import default_enabled, resolve_cache
from repro.traffic import UniformLoad


class CustomLoad(UniformLoad):
    """Not in the serialization registry, so scenarios using it are
    uncacheable (and simply always run)."""


def quick(**kw):
    base = dict(
        scheme="fixed", duration=400.0, warmup=100.0, offered_load=4.0,
        mean_holding=60.0, seed=3,
    )
    base.update(kw)
    return Scenario(**base)


def test_cold_run_stores_then_warm_run_hits(tmp_path):
    cache = ResultCache(tmp_path)
    scenario = quick()
    (cold,) = run_cells([scenario], cache=cache)
    assert cache.misses == 1 and cache.stores == 1 and cache.hits == 0
    (warm,) = run_cells([scenario], cache=cache)
    assert cache.hits == 1
    # The warm report is the cold one, field for field.
    assert warm.offered == cold.offered
    assert warm.drop_rate == cold.drop_rate
    assert warm.messages_total == cold.messages_total
    assert warm.mean_acquisition_time == cold.mean_acquisition_time
    assert warm.scenario == cold.scenario


def test_different_scenarios_do_not_collide(tmp_path):
    cache = ResultCache(tmp_path)
    run_cells([quick(seed=1)], cache=cache)
    assert cache.get(quick(seed=2)) is None
    assert cache.get(quick(seed=1)) is not None


def test_version_salt_invalidates(tmp_path):
    """A changed code stamp orphans all previous entries."""
    scenario = quick()
    old = ResultCache(tmp_path, salt="stamp-a")
    run_cells([scenario], cache=old)
    assert old.stores == 1
    new = ResultCache(tmp_path, salt="stamp-b")
    assert new.get(scenario) is None  # stale entry not visible
    assert new.misses == 1
    # Same salt still hits.
    again = ResultCache(tmp_path, salt="stamp-a")
    assert again.get(scenario) is not None


def test_cache_key_is_canonical_and_salted():
    a = quick()
    assert cache_key(a) == cache_key(quick())
    assert cache_key(a) != cache_key(quick(seed=99))
    assert cache_key(a, salt="x") != cache_key(a, salt="y")
    assert cache_key(a) == cache_key(a, salt=code_stamp())


def test_fastlane_rows_never_alias():
    """fastlane=True rows carry an approximation; they must never be
    served for an exact (lane-off) run of the same scenario."""
    off = quick(scheme="adaptive")
    on = quick(scheme="adaptive", fastlane=True)
    assert cache_key(off) is not None and cache_key(on) is not None
    assert cache_key(off) != cache_key(on)


def test_unserializable_scenario_is_uncacheable(tmp_path):
    scenario = quick(pattern=CustomLoad(0.05))
    assert cache_key(scenario) is None
    cache = ResultCache(tmp_path)
    (report,) = run_cells([scenario], cache=cache)
    assert report.offered > 0
    assert cache.stores == 0  # ran, but nothing persisted


def test_repro_cache_off_disables_ambient_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "off")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert not default_enabled()
    assert resolve_cache(None) is None
    run_cells([quick()], cache=None)
    assert list(tmp_path.iterdir()) == []  # nothing written


def test_repro_cache_on_routes_to_env_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "on")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert default_enabled()
    cache = resolve_cache(None)
    assert cache is not None and cache.root == tmp_path
    run_cells([quick()], cache=None)
    assert any(tmp_path.rglob("*.pkl"))


def test_explicit_cache_overrides_kill_switch(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "off")
    cache = ResultCache(tmp_path)
    assert resolve_cache(cache) is cache
    run_cells([quick()], cache=cache)
    assert cache.stores == 1


def test_resolve_cache_knobs(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert resolve_cache(False) is None
    explicit = resolve_cache(str(tmp_path / "c"))
    assert explicit is not None and explicit.root == tmp_path / "c"
    forced = resolve_cache(True)
    assert forced is not None


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    scenario = quick()
    run_cells([scenario], cache=cache)
    (entry,) = list(tmp_path.rglob("*.pkl"))
    entry.write_bytes(b"not a pickle")
    fresh = ResultCache(tmp_path)
    assert fresh.get(scenario) is None
    assert fresh.misses == 1


def test_code_stamp_is_stable_within_process():
    assert code_stamp() == code_stamp()
    assert len(code_stamp()) == 16
    int(code_stamp(), 16)  # hex


def test_suite_runs_with_ambient_cache_disabled():
    """conftest sets REPRO_CACHE=off so the suite is hermetic."""
    assert os.environ.get("REPRO_CACHE") == "off"
