"""Unit tests for Gate, Store, Resource and Collector primitives."""

import pytest

from repro.sim import Collector, Environment, Gate, Resource, Store


# ---------------------------------------------------------------- Gate ----
def test_gate_pulse_wakes_all_waiters():
    env = Environment()
    gate = Gate(env)
    woken = []

    def waiter(i):
        yield gate.wait()
        woken.append((i, env.now))

    for i in range(3):
        env.process(waiter(i))

    def pulser():
        yield env.timeout(2)
        assert gate.pulse("go") == 3

    env.process(pulser())
    env.run()
    assert woken == [(0, 2), (1, 2), (2, 2)]


def test_gate_pulse_does_not_wake_future_waiters():
    env = Environment()
    gate = Gate(env)
    log = []

    def early():
        yield gate.wait()
        log.append("early")

    def late():
        yield env.timeout(5)
        yield gate.wait()
        log.append("late")

    env.process(early())
    env.process(late())

    def pulser():
        yield env.timeout(1)
        gate.pulse()
        yield env.timeout(10)
        gate.pulse()

    env.process(pulser())
    env.run()
    assert log == ["early", "late"]


def test_gate_open_latches():
    env = Environment()
    gate = Gate(env)
    gate.open("latched")
    got = []

    def waiter():
        got.append((yield gate.wait()))

    env.process(waiter())
    env.run()
    assert got == ["latched"]
    assert gate.is_open
    gate.close()
    assert not gate.is_open


# --------------------------------------------------------------- Store ----
def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    store.put("x")
    got = []

    def getter():
        got.append((yield store.get()))

    env.process(getter())
    env.run()
    assert got == ["x"]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def getter():
        got.append(((yield store.get()), env.now))

    env.process(getter())

    def putter():
        yield env.timeout(4)
        store.put("y")

    env.process(putter())
    env.run()
    assert got == [("y", 4)]


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    for i in range(5):
        store.put(i)
    got = []

    def getter():
        for _ in range(5):
            got.append((yield store.get()))

    env.process(getter())
    env.run()
    assert got == [0, 1, 2, 3, 4]


def test_store_multiple_getters_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def getter(i):
        got.append((i, (yield store.get())))

    for i in range(3):
        env.process(getter(i))

    def putter():
        yield env.timeout(1)
        for v in "abc":
            store.put(v)

    env.process(putter())
    env.run()
    assert got == [(0, "a"), (1, "b"), (2, "c")]


def test_store_len():
    env = Environment()
    store = Store(env)
    assert len(store) == 0
    store.put(1)
    store.put(2)
    assert len(store) == 2


# ------------------------------------------------------------- Resource ----
def test_resource_serializes_holders():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def user(i, hold):
        yield res.request()
        log.append(("start", i, env.now))
        yield env.timeout(hold)
        log.append(("end", i, env.now))
        res.release()

    env.process(user(0, 5))
    env.process(user(1, 3))
    env.run()
    assert log == [
        ("start", 0, 0),
        ("end", 0, 5),
        ("start", 1, 5),
        ("end", 1, 8),
    ]


def test_resource_capacity_two():
    env = Environment()
    res = Resource(env, capacity=2)
    starts = []

    def user(i):
        yield res.request()
        starts.append((i, env.now))
        yield env.timeout(10)
        res.release()

    for i in range(3):
        env.process(user(i))
    env.run()
    assert starts == [(0, 0), (1, 0), (2, 10)]


def test_resource_release_without_request_raises():
    env = Environment()
    res = Resource(env)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_counters():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        yield res.request()
        assert res.in_use == 1
        yield env.timeout(2)
        res.release()

    def waiter():
        ev = res.request()
        assert res.queued == 1
        yield ev
        res.release()

    env.process(holder())

    def late():
        yield env.timeout(1)
        env.process(waiter())

    env.process(late())
    env.run()


# ------------------------------------------------------------ Collector ----
def test_collector_fires_when_all_delivered():
    env = Environment()
    col = Collector(env, expected=[1, 2, 3])
    got = []

    def waiter():
        got.append((yield col.done))

    env.process(waiter())

    def deliverer():
        yield env.timeout(1)
        assert not col.deliver(2, "b")
        assert not col.deliver(1, "a")
        assert col.deliver(3, "c")

    env.process(deliverer())
    env.run()
    assert got == [{1: "a", 2: "b", 3: "c"}]


def test_collector_empty_expected_fires_immediately():
    env = Environment()
    col = Collector(env, expected=[])
    assert col.done.triggered


def test_collector_duplicate_rejected():
    env = Environment()
    col = Collector(env, expected=[1, 2])
    col.deliver(1, "a")
    with pytest.raises(KeyError):
        col.deliver(1, "again")


def test_collector_unexpected_tag_rejected():
    env = Environment()
    col = Collector(env, expected=[1])
    with pytest.raises(KeyError):
        col.deliver(99, "?")


def test_collector_cancel_suppresses_completion():
    env = Environment()
    col = Collector(env, expected=[1])
    col.cancel()
    assert not col.deliver(1, "a")
    assert not col.done.triggered


def test_collector_outstanding_tracking():
    env = Environment()
    col = Collector(env, expected=[1, 2, 3])
    col.deliver(2, None)
    assert col.outstanding == {1, 3}
    assert col.responses == {2: None}
