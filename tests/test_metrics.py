"""Unit tests for the metrics collector."""

import pytest

from repro.metrics import MetricsCollector
from repro.sim import Environment, Network


def rec(m, *, cell=0, kind="new", granted=True, queue_wait=0.0,
        acquisition_time=0.0, attempts=1, mode="local", time=100.0):
    m.record_acquisition(
        cell=cell, kind=kind, granted=granted, queue_wait=queue_wait,
        acquisition_time=acquisition_time, attempts=attempts,
        mode=mode, time=time,
    )


def test_warmup_discards_early_records():
    m = MetricsCollector(warmup=50)
    rec(m, time=10)
    rec(m, time=60)
    assert m.offered == 1


def test_drop_rate_accounting():
    m = MetricsCollector()
    rec(m, granted=True)
    rec(m, granted=False)
    rec(m, granted=False)
    assert m.offered == 3
    assert m.granted == 1
    assert m.dropped == 2
    assert m.drop_rate == pytest.approx(2 / 3)


def test_drop_rate_empty_is_zero():
    m = MetricsCollector()
    assert m.drop_rate == 0.0
    assert m.mean_acquisition_time() == 0.0
    assert m.mean_attempts() == 0.0
    assert m.fairness_index() == 1.0


def test_drop_rate_by_kind():
    m = MetricsCollector()
    rec(m, kind="new", granted=True)
    rec(m, kind="new", granted=False)
    rec(m, kind="handoff", granted=False)
    assert m.drop_rate_of("new") == pytest.approx(0.5)
    assert m.drop_rate_of("handoff") == 1.0
    assert m.drop_rate_of("nonexistent") == 0.0


def test_acquisition_time_stats_use_granted_only_by_default():
    m = MetricsCollector()
    rec(m, granted=True, acquisition_time=2.0)
    rec(m, granted=True, acquisition_time=4.0)
    rec(m, granted=False, acquisition_time=100.0)
    assert m.mean_acquisition_time() == pytest.approx(3.0)
    assert m.acquisition_times(granted_only=False).size == 3


def test_percentile():
    m = MetricsCollector()
    for t in range(1, 101):
        rec(m, acquisition_time=float(t))
    assert m.acquisition_time_percentile(95) == pytest.approx(95.05)


def test_mean_attempts_granted_only():
    m = MetricsCollector()
    rec(m, granted=True, attempts=1)
    rec(m, granted=True, attempts=3)
    rec(m, granted=False, attempts=25)
    assert m.mean_attempts() == pytest.approx(2.0)
    assert m.max_attempts() == 25


def test_mode_fractions_sum_to_one():
    m = MetricsCollector()
    rec(m, mode="local")
    rec(m, mode="local")
    rec(m, mode="update")
    rec(m, mode="search")
    fr = m.mode_fractions()
    assert fr == {"local": 0.5, "search": 0.25, "update": 0.25}
    assert sum(fr.values()) == pytest.approx(1.0)


def test_mode_fractions_ignores_drops_and_none():
    m = MetricsCollector()
    rec(m, mode="local", granted=True)
    rec(m, mode=None, granted=True)
    rec(m, mode="search", granted=False)
    assert m.mode_fractions() == {"local": 1.0}


def test_per_cell_drop_rates():
    m = MetricsCollector()
    rec(m, cell=0, granted=True)
    rec(m, cell=0, granted=False)
    rec(m, cell=1, granted=True)
    assert m.per_cell_drop_rates() == {0: 0.5, 1: 0.0}


def test_fairness_index_perfect_and_skewed():
    m = MetricsCollector()
    for cell in range(4):
        rec(m, cell=cell, granted=True)
    assert m.fairness_index() == pytest.approx(1.0)

    m2 = MetricsCollector()
    rec(m2, cell=0, granted=True)
    rec(m2, cell=1, granted=False)
    # grant rates (1, 0): Jain = (1)^2 / (2·1) = 0.5
    assert m2.fairness_index() == pytest.approx(0.5)


def test_message_baseline_subtraction():
    env = Environment()
    net = Network(env)

    class Node:
        def __init__(self, node_id):
            self.node_id = node_id

        def on_message(self, e):
            pass

    for i in range(2):
        net.attach(Node(i))

    m = MetricsCollector()
    net.send(0, 1, "early")
    env.run()
    m.snapshot_message_baseline(net)
    net.send(0, 1, "late")
    net.send(1, 0, "late2")
    env.run()
    assert m.messages_since_warmup(net) == 2
    assert m.messages_by_kind(net) == {"str": 2}


def test_messages_per_acquisition():
    env = Environment()
    net = Network(env)

    class Node:
        def __init__(self, node_id):
            self.node_id = node_id

        def on_message(self, e):
            pass

    for i in range(2):
        net.attach(Node(i))
    m = MetricsCollector()
    rec(m)
    rec(m)
    net.send(0, 1, "x")
    net.send(0, 1, "y")
    net.send(0, 1, "z")
    env.run()
    assert m.messages_per_acquisition(net) == pytest.approx(1.5)


def test_release_counting_respects_warmup():
    m = MetricsCollector(warmup=10)
    m.record_release(0, 5, time=5)
    m.record_release(0, 5, time=15)
    assert m.releases == 1
