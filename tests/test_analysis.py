"""Unit tests for the §5 analytical models and Erlang-B theory."""

import math

import pytest

from repro.analysis import (
    MODELS,
    ModelParams,
    adaptive,
    advanced_update,
    basic_search,
    basic_update,
    bounds_table,
    erlang_b,
    low_load_table,
    offered_load_for_blocking,
)


# ------------------------------------------------------------- Table 1 ----
def test_basic_search_costs_are_load_independent():
    p = ModelParams(N=18, N_search=3, m=2, alpha=4, xi1=0.2, xi2=0.5, xi3=0.3)
    assert basic_search.message_complexity(p) == 36
    assert basic_search.acquisition_time(p) == 4  # (3+1)·T


def test_basic_update_costs_grow_with_attempts():
    p1 = ModelParams(N=18, m=1, alpha=4, xi1=0, xi2=1, xi3=0)
    p3 = ModelParams(N=18, m=3, alpha=4, xi1=0, xi2=1, xi3=0)
    assert basic_update.message_complexity(p1) == 2 * 18 + 2 * 18
    assert basic_update.message_complexity(p3) == 6 * 18 + 2 * 18
    assert basic_update.acquisition_time(p3) == 6


def test_advanced_update_all_local_collapses_to_broadcasts():
    p = ModelParams(N=18, n_p=3, m=1, alpha=2, xi1=1.0, xi2=0.0, xi3=0.0)
    assert advanced_update.message_complexity(p) == 2 * 18
    assert advanced_update.acquisition_time(p) == 0


def test_adaptive_all_local_zero_messages_without_borrowers():
    p = ModelParams(N=18, N_borrow=0, m=0, alpha=2, xi1=1, xi2=0, xi3=0)
    assert adaptive.message_complexity(p) == 0
    assert adaptive.acquisition_time(p) == 0


def test_adaptive_local_with_borrowing_neighbors():
    p = ModelParams(N=18, N_borrow=4, m=0, alpha=2, xi1=1, xi2=0, xi3=0)
    assert adaptive.message_complexity(p) == 8  # 2·ξ1·N_borrow


def test_adaptive_mixed_regime_formula():
    p = ModelParams(
        N=18, N_borrow=2, N_search=2, m=1.5, alpha=2,
        xi1=0.5, xi2=0.3, xi3=0.2,
    )
    expected = 2 * 0.5 * 2 + 3 * 0.3 * 1.5 * 18 + 0.2 * (3 * 2 + 4) * 18
    assert adaptive.message_complexity(p) == pytest.approx(expected)
    expected_t = (2 * 1.5 * 0.3 + (2 * 2 + 2 + 1) * 0.2) * 1.0
    assert adaptive.acquisition_time(p) == pytest.approx(expected_t)


def test_params_validation():
    with pytest.raises(ValueError):
        ModelParams(xi1=0.5, xi2=0.2, xi3=0.2)  # doesn't sum to 1
    with pytest.raises(ValueError):
        ModelParams(m=5, alpha=2)


# ------------------------------------------------------------- Table 2 ----
def test_low_load_table_matches_paper():
    t2 = low_load_table(N=18, n_p=3, T=1.0)
    assert t2["basic_search"] == {"messages": 36, "time": 2}
    assert t2["basic_update"] == {"messages": 72, "time": 2}  # 4N / 2T
    assert t2["advanced_update"] == {"messages": 36, "time": 0}  # 2N / 0
    assert t2["adaptive"] == {"messages": 0, "time": 0}


# ------------------------------------------------------------- Table 3 ----
def test_bounds_table_matches_paper():
    t3 = bounds_table(N=18, alpha=2, T=1.0)
    inf = float("inf")
    assert t3["basic_search"] == {
        "msg_min": 36, "msg_max": 36, "time_min": 2, "time_max": 19,
    }
    assert t3["basic_update"]["msg_min"] == 36
    assert t3["basic_update"]["msg_max"] == inf
    assert t3["basic_update"]["time_max"] == inf
    assert t3["advanced_update"]["msg_min"] == 18  # N
    assert t3["advanced_update"]["time_min"] == 0
    assert t3["adaptive"] == {
        "msg_min": 0,
        "msg_max": 2 * 2 * 18 + 4 * 18,  # 2αN + 4N
        "time_min": 0,
        "time_max": (2 * 2 * 18 + 1) * 1.0,  # (2αN + 1)T
    }


def test_models_registry_covers_all_schemes():
    assert set(MODELS) == {
        "fixed", "basic_search", "basic_update", "advanced_update", "adaptive",
    }


# ------------------------------------------------------------ Erlang-B ----
def test_erlang_b_known_values():
    # Classic reference points.
    assert erlang_b(1.0, 1) == pytest.approx(0.5)
    assert erlang_b(2.0, 2) == pytest.approx(0.4)
    # A=10, c=10 → ≈ 0.2146
    assert erlang_b(10.0, 10) == pytest.approx(0.21459, abs=1e-4)
    # Light load, many servers → tiny blocking.
    assert erlang_b(1.0, 10) < 1e-6


def test_erlang_b_monotone_in_load_and_servers():
    loads = [1, 2, 5, 10, 20]
    blocks = [erlang_b(a, 10) for a in loads]
    assert blocks == sorted(blocks)
    servers = [1, 2, 5, 10, 20]
    blocks_s = [erlang_b(5.0, c) for c in servers]
    assert blocks_s == sorted(blocks_s, reverse=True)


def test_erlang_b_edge_cases():
    assert erlang_b(0.0, 5) == 0.0
    assert erlang_b(5.0, 0) == 1.0
    with pytest.raises(ValueError):
        erlang_b(-1, 5)
    with pytest.raises(ValueError):
        erlang_b(1, -5)


def test_erlang_b_matches_direct_formula():
    # Direct formula: B = (A^c/c!) / sum_k A^k/k!
    A, c = 7.3, 9
    direct = (A**c / math.factorial(c)) / sum(
        A**k / math.factorial(k) for k in range(c + 1)
    )
    assert erlang_b(A, c) == pytest.approx(direct)


def test_inverse_erlang_b_round_trip():
    for target in (0.01, 0.1, 0.3):
        a = offered_load_for_blocking(target, 10)
        assert erlang_b(a, 10) == pytest.approx(target, rel=1e-6)


def test_inverse_erlang_b_validation():
    with pytest.raises(ValueError):
        offered_load_for_blocking(0.0, 10)
    with pytest.raises(ValueError):
        offered_load_for_blocking(1.0, 10)
