"""Tests for the guard-channel (handoff priority) extension."""

import pytest

from repro.core import AdaptiveMSS
from repro.harness import Scenario, run_scenario
from repro.protocols import FixedMSS

from conftest import drive, make_stack


def test_guard_validation():
    with pytest.raises(ValueError):
        make_stack(FixedMSS, guard_channels=-1)
    with pytest.raises(ValueError):
        make_stack(FixedMSS, guard_channels=10)  # == primaries per cell
    with pytest.raises(ValueError):
        make_stack(AdaptiveMSS, guard_channels=10)


def test_fixed_reserves_last_channels_for_handoffs():
    env, net, topo, stations, monitor, metrics = make_stack(
        FixedMSS, guard_channels=2
    )
    s = stations[0]
    # New calls may take 8 of the 10 primaries...
    for _ in range(8):
        assert drive(env, s.request_channel("new")) is not None
    # ...then new calls are refused while handoffs still succeed.
    assert drive(env, s.request_channel("new")) is None
    assert drive(env, s.request_channel("handoff")) is not None
    assert drive(env, s.request_channel("handoff")) is not None
    # Now truly full: even handoffs fail.
    assert drive(env, s.request_channel("handoff")) is None


def test_fixed_zero_guard_unchanged():
    env, net, topo, stations, monitor, metrics = make_stack(
        FixedMSS, guard_channels=0
    )
    s = stations[0]
    for _ in range(10):
        assert drive(env, s.request_channel("new")) is not None
    assert drive(env, s.request_channel("new")) is None


def test_adaptive_guard_blocks_new_calls_admits_handoffs():
    env, net, topo, stations, monitor, metrics = make_stack(
        AdaptiveMSS, guard_channels=2
    )
    s = stations[0]
    for _ in range(8):
        ch = drive(env, s.request_channel("new"))
        assert ch in topo.PR(0)
    # The 9th NEW call hits the guard and is blocked outright (classic
    # admission control — redirecting it to borrowing was measurably
    # worse, see the module docstring).
    assert drive(env, s.request_channel("new")) is None
    assert metrics.records[-1].mode == "guard_blocked"
    # A handoff takes a guarded primary directly, with zero latency.
    t0 = env.now
    ch2 = drive(env, s.request_channel("handoff"))
    assert ch2 in topo.PR(0)
    assert env.now == t0
    # Handoffs may even borrow once primaries are gone.
    drive(env, s.request_channel("handoff"))
    ch3 = drive(env, s.request_channel("handoff"))
    assert ch3 is not None and ch3 not in topo.PR(0)


def test_guard_trades_new_blocking_for_handoff_success():
    base = Scenario(
        scheme="fixed",
        offered_load=9.0,
        mean_dwell=150.0,
        duration=2000.0,
        warmup=300.0,
        seed=29,
    )
    plain = run_scenario(base)
    guarded = run_scenario(base.with_(extra_params={"guard_channels": 2}))
    # The classic trade: fewer forced terminations, more blocked new
    # calls.
    assert guarded.handoff_failure_rate < plain.handoff_failure_rate
    assert guarded.new_call_block_rate > plain.new_call_block_rate
    assert guarded.violations == 0
