"""Edge-case tests for the DES kernel: failure propagation, condition
events under failure, interrupt corner cases, run() termination modes."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    EmptySchedule,
    Environment,
    Interrupt,
)


def test_condition_event_propagates_child_failure():
    env = Environment()
    good = env.timeout(1)
    bad = env.event()

    def failer():
        yield env.timeout(0.5)
        bad.fail(ValueError("child broke"))

    env.process(failer())
    caught = []

    def waiter():
        try:
            yield AllOf(env, [good, bad])
        except ValueError as exc:
            caught.append(str(exc))

    env.process(waiter())
    env.run()
    assert caught == ["child broke"]


def test_any_of_failure_beats_success():
    env = Environment()
    slow = env.timeout(10)
    bad = env.event()

    def failer():
        yield env.timeout(1)
        bad.fail(RuntimeError("fast failure"))

    env.process(failer())

    def waiter():
        with pytest.raises(RuntimeError, match="fast failure"):
            yield AnyOf(env, [slow, bad])
        return "handled"

    p = env.process(waiter())
    assert env.run(until=p) == "handled"


def test_condition_event_with_pre_processed_children():
    env = Environment()
    t1 = env.timeout(0)
    env.run(until=1)  # t1 processed
    t2 = env.timeout(1)

    def waiter():
        result = yield AllOf(env, [t1, t2])
        return len(result)

    p = env.process(waiter())
    assert env.run(until=p) == 2


def test_condition_event_cross_environment_rejected():
    env1, env2 = Environment(), Environment()
    with pytest.raises(ValueError):
        AllOf(env1, [env1.timeout(1), env2.timeout(1)])


def test_event_trigger_copies_success_and_failure():
    env = Environment()
    src_ok = env.event().succeed("v")
    dst_ok = env.event()
    env.run()
    dst_ok.trigger(src_ok)
    assert dst_ok.triggered and dst_ok._value == "v"

    src_bad = env.event()
    src_bad.fail(ValueError("x"))
    env2_dst = env.event()
    env2_dst.trigger(src_bad)
    assert not env2_dst.ok
    env2_dst.defuse()
    with pytest.raises(EmptySchedule):
        while True:
            env.step()


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_interrupt_cause_accessible():
    exc = Interrupt("why")
    assert exc.cause == "why"
    assert Interrupt().cause is None


def test_interrupt_during_immediate_resume():
    # Interrupt a process that is waiting on an already-processed event
    # (scheduled for immediate resumption).
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt:
            log.append("int")
            # Continue and wait again; second interrupt also lands.
            try:
                yield env.timeout(100)
            except Interrupt:
                log.append("int2")

    def interrupter(victim):
        yield env.timeout(1)
        victim.interrupt()
        yield env.timeout(1)
        victim.interrupt()

    v = env.process(sleeper())
    env.process(interrupter(v))
    env.run()
    assert log == ["int", "int2"]


def test_interrupted_process_ignores_original_wakeup():
    env = Environment()
    timeline = []

    def sleeper():
        try:
            yield env.timeout(5)
            timeline.append(("woke", env.now))
        except Interrupt:
            timeline.append(("interrupted", env.now))
            yield env.timeout(100)
            timeline.append(("second", env.now))

    def interrupter(victim):
        yield env.timeout(2)
        victim.interrupt()

    v = env.process(sleeper())
    env.process(interrupter(v))
    env.run()
    # The original t=5 wakeup must NOT resume the process a second time.
    assert timeline == [("interrupted", 2), ("second", 102)]


def test_run_until_processed_failed_event_reraises():
    env = Environment()
    ev = env.event()
    ev.fail(ValueError("already failed"))
    ev.defuse()
    env.run()  # processes the failed (defused) event
    with pytest.raises(ValueError, match="already failed"):
        env.run(until=ev)


def test_run_until_event_that_fails_later():
    env = Environment()
    ev = env.event()

    def failer():
        yield env.timeout(3)
        ev.fail(RuntimeError("boom"))

    env.process(failer())
    with pytest.raises(RuntimeError, match="boom"):
        env.run(until=ev)


def test_step_after_run_continues():
    env = Environment()
    env.timeout(1)
    env.timeout(5)
    env.run(until=2)
    assert env.now == 2
    env.step()
    assert env.now == 5


def test_callbacks_none_after_processing():
    env = Environment()
    t = env.timeout(1)
    env.run()
    assert t.callbacks is None
    assert t.processed


def test_environment_len_and_peek_track_queue():
    env = Environment()
    assert len(env) == 0
    env.timeout(3)
    env.timeout(1)
    assert len(env) == 2
    assert env.peek() == 1
