"""The docs cross-reference checker (`python -m tools.docscheck`).

Two halves: the failure modes on a synthetic tree (broken links,
absolute links, dead code paths, rule-catalog drift in both
directions), and the pin that keeps the real repository clean — the
latter is the actual contract CI enforces, the former proves the
checker would notice if it drifted.
"""

import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT))

from tools.docscheck import (  # noqa: E402
    EXCLUDED,
    check_code_paths,
    check_links,
    check_rule_catalog,
    markdown_files,
    run_all,
)


def make_tree(tmp_path, checks_md="### SIM001 — demo\n", sources=("SIM001",)):
    """A minimal repo skeleton the three passes can run against."""
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "CHECKS.md").write_text(checks_md)
    (tmp_path / "tools" / "check").mkdir(parents=True)
    (tmp_path / "tools" / "analyze").mkdir()
    (tmp_path / "tools" / "check" / "rules.py").write_text(
        "\n".join(f"ID = {rule!r}" for rule in sources) + "\n"
    )
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "real.py").write_text("x = 1\n")
    return tmp_path


# -- pass 1: links ----------------------------------------------------------


def test_broken_and_absolute_links_are_flagged(tmp_path):
    root = make_tree(tmp_path)
    (tmp_path / "README.md").write_text(
        "[ok](docs/CHECKS.md)\n"
        "[gone](docs/MISSING.md)\n"
        "[abs](/etc/passwd)\n"
        "[ext](https://example.org) [anchor](#here)\n"
    )
    problems = check_links(root, markdown_files(root))
    assert len(problems) == 2
    assert any("MISSING.md" in p and "broken link" in p for p in problems)
    assert any("/etc/passwd" in p and "absolute" in p for p in problems)


def test_links_resolve_relative_to_the_containing_file(tmp_path):
    root = make_tree(tmp_path)
    (tmp_path / "docs" / "GUIDE.md").write_text(
        "[sibling](CHECKS.md) [up](../README.md#install)\n"
    )
    (tmp_path / "README.md").write_text("hello\n")
    assert check_links(root, markdown_files(root)) == []


def test_code_spans_and_fences_are_not_links(tmp_path):
    root = make_tree(tmp_path)
    (tmp_path / "README.md").write_text(
        "every `[text](target)` must resolve\n"
        "```\n[example](not/a/real/file.md)\n```\n"
    )
    assert check_links(root, markdown_files(root)) == []


def test_excluded_driver_files_are_skipped(tmp_path):
    root = make_tree(tmp_path)
    for name in EXCLUDED:
        (tmp_path / name).write_text("[broken](nowhere.md)\n")
    assert check_links(root, markdown_files(root)) == []


# -- pass 2: code paths -----------------------------------------------------


def test_dead_code_paths_are_flagged(tmp_path):
    root = make_tree(tmp_path)
    (tmp_path / "README.md").write_text(
        "see `src/real.py` and `src/deleted.py`\n"
    )
    problems = check_code_paths(root, markdown_files(root))
    assert len(problems) == 1
    assert "src/deleted.py" in problems[0]


# -- pass 3: rule catalog ---------------------------------------------------


def test_undocumented_rule_is_flagged(tmp_path):
    root = make_tree(
        tmp_path,
        checks_md="### SIM001 — demo\n",
        sources=("SIM001", "ANA999"),
    )
    problems = check_rule_catalog(root)
    assert problems == [
        "rule ANA999 is implemented but has no ### heading in docs/CHECKS.md"
    ]


def test_phantom_documented_rule_is_flagged(tmp_path):
    root = make_tree(
        tmp_path,
        checks_md="### SIM001 — demo\n### SIM777 — phantom\n",
        sources=("SIM001",),
    )
    problems = check_rule_catalog(root)
    assert len(problems) == 1
    assert "SIM777" in problems[0]


def test_internal_sentinel_is_tolerated(tmp_path):
    root = make_tree(
        tmp_path,
        checks_md="### SIM001 — demo\n",
        sources=("SIM001", "SIM000"),
    )
    assert check_rule_catalog(root) == []


# -- the real repository ----------------------------------------------------


def test_repository_docs_are_clean():
    """The CI contract: zero problems on the actual tree."""
    assert run_all(ROOT) == []


def test_cli_entry_point(tmp_path):
    result = subprocess.run(
        [sys.executable, "-m", "tools.docscheck"],
        capture_output=True,
        text=True,
        cwd=ROOT,
    )
    assert result.returncode == 0, result.stderr
    assert "clean" in result.stdout

    root = make_tree(tmp_path)
    (tmp_path / "README.md").write_text("[gone](missing.md)\n")
    result = subprocess.run(
        [sys.executable, "-m", "tools.docscheck", str(root)],
        capture_output=True,
        text=True,
        cwd=ROOT,
    )
    assert result.returncode == 1
    assert "broken link" in result.stderr
