"""Unit tests for scenario config, runner and table rendering."""

import pytest

from repro.harness import (
    SCHEMES,
    Scenario,
    build_simulation,
    render_table,
    run_replications,
    run_scenario,
)


def quick(**kw):
    base = dict(duration=600.0, warmup=100.0, offered_load=3.0, seed=2)
    base.update(kw)
    return Scenario(**base)


def test_scenario_defaults_are_paper_scale():
    s = Scenario()
    assert s.rows == s.cols == 7
    assert s.num_channels == 70
    assert s.cluster_size == 7
    assert s.wrap


def test_scenario_validation():
    with pytest.raises(ValueError):
        Scenario(duration=100, warmup=100)
    with pytest.raises(ValueError):
        Scenario(offered_load=-1)
    with pytest.raises(ValueError):
        Scenario(mean_holding=0)


def test_arrival_rate_conversion():
    s = Scenario(offered_load=9.0, mean_holding=180.0)
    assert s.arrival_rate == pytest.approx(0.05)


def test_with_override():
    s = Scenario(seed=1)
    s2 = s.with_(seed=9, scheme="fixed")
    assert s2.seed == 9 and s2.scheme == "fixed"
    assert s.seed == 1  # original untouched


def test_unknown_scheme_rejected():
    with pytest.raises(ValueError, match="unknown scheme"):
        build_simulation(quick(scheme="nonesuch"))


def test_schemes_registry():
    assert set(SCHEMES) == {
        "fixed", "basic_search", "basic_update", "advanced_update",
        "adaptive", "prakash",
    }


def test_run_scenario_produces_consistent_report():
    rep = run_scenario(quick(scheme="fixed"))
    assert rep.offered == rep.granted + rep.dropped
    assert 0 <= rep.drop_rate <= 1
    assert rep.violations == 0
    assert rep.messages_total == 0  # FCA sends nothing
    assert "fixed" in rep.summary()


def test_determinism_same_seed_same_report():
    a = run_scenario(quick(scheme="adaptive"))
    b = run_scenario(quick(scheme="adaptive"))
    assert a.offered == b.offered
    assert a.drop_rate == b.drop_rate
    assert a.messages_total == b.messages_total
    assert a.mean_acquisition_time == b.mean_acquisition_time


def test_different_seeds_differ():
    a = run_scenario(quick(scheme="adaptive", seed=1))
    b = run_scenario(quick(scheme="adaptive", seed=2))
    assert (a.offered, a.messages_total) != (b.offered, b.messages_total)


def test_replications_use_distinct_seeds():
    reps = run_replications(quick(scheme="fixed"), 3)
    assert len(reps) == 3
    seeds = [r.scenario.seed for r in reps]
    assert seeds == [2, 3, 4]


def test_xi_fractions_accessor():
    rep = run_scenario(quick(scheme="adaptive", offered_load=6.0))
    xi = rep.xi
    assert set(xi) == {"local", "update", "search"}
    assert 0.99 <= sum(xi.values()) <= 1.01 or sum(xi.values()) == 0


def test_extra_params_forwarded():
    sim = build_simulation(quick(scheme="adaptive", extra_params={"alpha": 7}))
    assert all(s.alpha == 7 for s in sim.stations.values())


def test_uniform_latency_model():
    rep = run_scenario(
        quick(scheme="basic_search", latency_model="uniform", latency_spread=0.5)
    )
    assert rep.violations == 0
    assert rep.mean_acquisition_time > 2.0  # latency at least base T both ways


def test_unknown_latency_model_rejected():
    with pytest.raises(ValueError):
        build_simulation(quick(latency_model="quantum"))


# ----------------------------------------------------------------- tables ----
def test_render_table_alignment_and_title():
    out = render_table(
        ["name", "value"],
        [["alpha", 1.5], ["beta-long-name", 22]],
        title="Table X",
        note="hello",
    )
    lines = out.splitlines()
    assert lines[0] == "Table X"
    assert "name" in lines[2] and "value" in lines[2]
    assert "beta-long-name" in out
    assert "note: hello" in out


def test_render_table_value_formats():
    from repro.harness import format_value

    assert format_value(True) == "yes"
    assert format_value(float("inf")) == "inf"
    assert format_value(float("nan")) == "-"
    assert format_value(0.00001) == "1e-05"
    assert format_value(3.14159) == "3.142"
    assert format_value(1234.5) == "1.23e+03"
    assert format_value("text") == "text"
    assert format_value(0.0) == "0"


def test_render_table_row_width_mismatch():
    with pytest.raises(ValueError):
        render_table(["a"], [[1, 2]])
