"""Tests for the python -m repro command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main, scenario_from_args


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.scheme == "adaptive"
    assert args.load == 5.0
    assert not args.all_schemes


def test_scenario_from_args_roundtrip():
    args = build_parser().parse_args(
        ["--scheme", "fixed", "--load", "3", "--rows", "7", "--seed", "9"]
    )
    s = scenario_from_args(args, args.scheme)
    assert s.scheme == "fixed"
    assert s.offered_load == 3.0
    assert s.seed == 9
    assert s.pattern is None


def test_scenario_with_hotspot_builds_pattern():
    args = build_parser().parse_args(
        ["--hotspot", "3", "4", "--hot-load", "15", "--load", "2"]
    )
    s = scenario_from_args(args, "adaptive")
    assert s.pattern is not None
    assert s.pattern.rate(3, 0) == pytest.approx(15 / 180)
    assert s.pattern.rate(0, 0) == pytest.approx(2 / 180)


def test_main_single_scheme_text(capsys):
    rc = main(
        ["--scheme", "fixed", "--load", "2", "--duration", "500",
         "--warmup", "100", "--seed", "2"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "scheme=fixed" in out
    assert "drop rate" in out


def test_main_json_output(capsys):
    rc = main(
        ["--scheme", "fixed", "--load", "2", "--duration", "500",
         "--warmup", "100", "--json"]
    )
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 1
    assert payload[0]["scheme"] == "fixed"
    assert payload[0]["violations"] == 0
    assert 0 <= payload[0]["drop_rate"] <= 1


def test_main_all_schemes_table(capsys):
    rc = main(
        ["--all-schemes", "--load", "1.5", "--duration", "400",
         "--warmup", "100"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    for scheme in ["fixed", "adaptive", "basic_search", "prakash"]:
        assert scheme in out


def test_invalid_scheme_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--scheme", "bogus"])
