"""Tests for the markdown report generator tool."""

import pathlib
import sys


ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))


def test_quick_report_single_scheme(tmp_path):
    from make_report import main

    out = tmp_path / "r.md"
    rc = main(
        [
            "-o", str(out),
            "--quick",
            "--presets", "paper_default",
            "--schemes", "fixed",
        ]
    )
    assert rc == 0
    text = out.read_text()
    assert "# Scheme comparison report" in text
    assert "## paper_default" in text
    assert "| fixed |" in text
    assert "violations" in text


def test_report_with_replications_shows_ci(tmp_path):
    from make_report import main

    out = tmp_path / "r.md"
    rc = main(
        [
            "-o", str(out),
            "--quick",
            "--seeds", "2",
            "--presets", "paper_default",
            "--schemes", "fixed",
        ]
    )
    assert rc == 0
    assert "±" in out.read_text()


def test_report_two_schemes_ordering(tmp_path):
    from make_report import main

    out = tmp_path / "r.md"
    main(
        [
            "-o", str(out),
            "--quick",
            "--presets", "hot_cell",
            "--schemes", "fixed", "adaptive",
        ]
    )
    text = out.read_text()
    fixed_line = next(l for l in text.splitlines() if l.startswith("| fixed"))
    adaptive_line = next(
        l for l in text.splitlines() if l.startswith("| adaptive")
    )
    fixed_drop = float(fixed_line.split("|")[2])
    adaptive_drop = float(adaptive_line.split("|")[2])
    assert adaptive_drop < fixed_drop  # hot spot: borrowing wins
