"""Integration tests: full simulations across schemes and workloads.

Every run executes with the interference monitor in "raise" mode, so
these tests double as end-to-end safety checks of Theorem 1 under
realistic traffic, for every scheme.
"""

import pytest

from repro import Scenario, run_scenario
from repro.analysis import erlang_b
from repro.harness import build_simulation
from repro.traffic import HotspotLoad, TemporalHotspot

ALL_SCHEMES = ["fixed", "basic_search", "basic_update", "advanced_update", "adaptive"]


def quick(**kw):
    base = dict(duration=800.0, warmup=200.0, seed=3)
    base.update(kw)
    return Scenario(**base)


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_moderate_load_runs_safely(scheme):
    rep = run_scenario(quick(scheme=scheme, offered_load=5.0))
    assert rep.violations == 0
    assert rep.offered > 200
    assert rep.drop_rate < 0.15


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_overload_runs_safely_and_drops(scheme):
    rep = run_scenario(quick(scheme=scheme, offered_load=16.0))
    assert rep.violations == 0
    assert rep.offered > 500
    assert rep.drop_rate > 0.2  # overload must shed calls


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_mobility_runs_safely(scheme):
    rep = run_scenario(
        quick(scheme=scheme, offered_load=4.0, mean_dwell=250.0)
    )
    assert rep.violations == 0
    assert rep.handoff_failure_rate <= 1.0


def test_fca_matches_erlang_b():
    # End-to-end validation of traffic + metrics against queueing theory.
    rep = run_scenario(
        quick(
            scheme="fixed",
            offered_load=9.0,
            duration=12000.0,
            warmup=1000.0,
            setup_deadline=None,
        )
    )
    expected = erlang_b(9.0, 10)
    assert rep.drop_rate == pytest.approx(expected, abs=0.025)


def test_dynamic_schemes_beat_fca_under_hotspot():
    # The paper's central motivation: a hot cell surrounded by idle
    # neighbors drops calls under FCA but borrows under dynamic schemes.
    pattern = HotspotLoad(base_rate=0.2 / 180, hot_cells=[24], hot_rate=25.0 / 180)
    results = {}
    for scheme in ["fixed", "adaptive", "basic_update"]:
        rep = run_scenario(
            quick(scheme=scheme, pattern=pattern, duration=3000, warmup=500)
        )
        assert rep.violations == 0
        results[scheme] = rep.drop_rate
    assert results["adaptive"] < results["fixed"]
    assert results["basic_update"] < results["fixed"]


def test_adaptive_stays_silent_at_low_uniform_load():
    rep = run_scenario(quick(scheme="adaptive", offered_load=1.0))
    assert rep.messages_total == 0
    assert rep.mean_acquisition_time == 0.0
    assert rep.xi["local"] == 1.0


def test_adaptive_uses_fewer_messages_than_basic_update():
    msgs = {}
    for scheme in ["adaptive", "basic_update"]:
        rep = run_scenario(quick(scheme=scheme, offered_load=5.0))
        msgs[scheme] = rep.messages_per_acquisition
    assert msgs["adaptive"] < msgs["basic_update"]


def test_temporal_hotspot_recovery():
    # After a transient hot spot ends, the adaptive cells return to
    # local mode (no borrowing-state leak).
    pattern = TemporalHotspot(
        base_rate=1.0 / 180, hot_cells=[24, 25], hot_rate=20.0 / 180,
        start=300, end=900,
    )
    sim = build_simulation(
        quick(scheme="adaptive", pattern=pattern, duration=2500, warmup=100)
    )
    sim.source.start()
    sim.env.run(until=2500)
    from repro.core import Mode

    assert all(s.mode is Mode.LOCAL for s in sim.stations.values())
    assert all(not s.UpdateS for s in sim.stations.values())
    assert all(s.waiting == 0 for s in sim.stations.values())
    assert sim.monitor.violations == []


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_channel_accounting_balances(scheme):
    # After arrivals stop and calls drain, no channel remains in use.
    sim = build_simulation(
        Scenario(scheme=scheme, offered_load=4.0, duration=800.0,
                 warmup=100.0, seed=9, mean_holding=60.0)
    )
    sim.source.start()
    sim.env.run(until=800)
    sim.source.horizon = 0  # no new arrivals
    sim.env.run()  # drain everything
    assert all(not s.use for s in sim.stations.values())
    assert sim.monitor.in_use == 0
    assert sim.monitor.total_acquisitions == sim.monitor.total_releases


def test_adaptive_bounded_acquisition_under_saturation():
    # Paper Table 3: adaptive max acquisition time is (2αN+1)T; our
    # measured max must respect the bound.
    rep = run_scenario(
        quick(scheme="adaptive", offered_load=14.0, duration=1200, warmup=300)
    )
    N = 18
    alpha = rep.scenario.alpha
    bound = (2 * alpha * N + 1) * rep.scenario.latency_T
    assert rep.max_acquisition_time <= bound
