"""Tests for continuous hex geometry and random-waypoint mobility."""

import numpy as np
import pytest

from repro.cellular import (
    Hex,
    HexGrid,
    axial_to_xy,
    cell_center,
    grid_bounds,
    nearest_cell,
    xy_to_axial,
)
from repro.protocols import FixedMSS
from repro.traffic import CallConfig, CallLog, WaypointHost, waypoint_call_process



# -------------------------------------------------------------- geometry ----
def test_axial_to_xy_round_trip_at_centers():
    for q in range(-5, 6):
        for r in range(-5, 6):
            h = Hex(q, r)
            x, y = axial_to_xy(h, size=1.0)
            assert xy_to_axial(x, y, size=1.0) == h


def test_round_trip_with_scaled_size():
    h = Hex(3, -2)
    x, y = axial_to_xy(h, size=7.5)
    assert xy_to_axial(x, y, size=7.5) == h


def test_points_near_center_map_to_that_hex():
    rng = np.random.default_rng(0)
    for _ in range(200):
        h = Hex(int(rng.integers(-4, 5)), int(rng.integers(-4, 5)))
        x, y = axial_to_xy(h)
        # Inradius of a unit pointy-top hex is sqrt(3)/2 ≈ 0.866; stay
        # safely inside it.
        dx, dy = rng.uniform(-0.4, 0.4, size=2)
        assert xy_to_axial(x + dx, y + dy) == h


def test_nearest_cell_matches_brute_force():
    grid = HexGrid(5, 5, wrap=False)
    rng = np.random.default_rng(1)
    xmin, ymin, xmax, ymax = grid_bounds(grid)
    for _ in range(100):
        x = float(rng.uniform(xmin, xmax))
        y = float(rng.uniform(ymin, ymax))
        got = nearest_cell(grid, x, y)
        centers = [cell_center(grid, c) for c in grid]
        dists = [(cx - x) ** 2 + (cy - y) ** 2 for cx, cy in centers]
        best = int(np.argmin(dists))
        # Either the exact containing hex (inside the grid) or the
        # closest center (outside); both must agree within a hair of
        # the Voronoi boundary.
        assert dists[got] <= dists[best] + 1e-9 or got == best


def test_grid_bounds_contains_all_centers():
    grid = HexGrid(4, 6, wrap=False)
    xmin, ymin, xmax, ymax = grid_bounds(grid)
    for c in grid:
        x, y = cell_center(grid, c)
        assert xmin <= x <= xmax
        assert ymin <= y <= ymax


# ------------------------------------------------------------ WaypointHost ----
def make_host(seed=0, speed=0.5):
    grid = HexGrid(5, 5, wrap=False)
    rng = np.random.default_rng(seed)
    return WaypointHost(grid, rng, speed=speed), grid


def test_host_requires_planar_grid():
    grid = HexGrid(7, 7, wrap=True)
    with pytest.raises(ValueError):
        WaypointHost(grid, np.random.default_rng(0), speed=1.0)


def test_host_invalid_speed():
    grid = HexGrid(5, 5, wrap=False)
    with pytest.raises(ValueError):
        WaypointHost(grid, np.random.default_rng(0), speed=0)


def test_host_stays_in_bounds():
    host, grid = make_host()
    xmin, ymin, xmax, ymax = host.bounds
    for _ in range(500):
        host.advance(1.0)
        assert xmin - 1e-9 <= host.x <= xmax + 1e-9
        assert ymin - 1e-9 <= host.y <= ymax + 1e-9
        assert 0 <= host.cell < grid.num_cells


def test_host_moves_at_configured_speed():
    host, _ = make_host(speed=0.3)
    x0, y0 = host.x, host.y
    host.advance(1.0)
    moved = ((host.x - x0) ** 2 + (host.y - y0) ** 2) ** 0.5
    # One leg without waypoint switch moves exactly speed*dt; waypoint
    # turns can shorten the net displacement but never lengthen it.
    assert moved <= 0.3 + 1e-9


def test_host_eventually_changes_cells():
    host, _ = make_host(seed=3, speed=1.0)
    start = host.cell
    seen = {start}
    for _ in range(300):
        host.advance(0.5)
        seen.add(host.cell)
    assert len(seen) > 3  # roams the grid


# ----------------------------------------------------------- call process ----
def test_waypoint_call_handoffs_and_cleans_up():
    # Waypoint mobility needs a planar grid, so build the stack by hand
    # (make_stack builds a torus).
    from repro.cellular import CellularTopology
    from repro.metrics import MetricsCollector
    from repro.protocols import InterferenceMonitor
    from repro.sim import DeterministicLatency, Environment, Network

    env = Environment()
    topo = CellularTopology(5, 5, num_channels=70, wrap=False)
    net = Network(env, DeterministicLatency(1.0))
    metrics = MetricsCollector()
    monitor = InterferenceMonitor(topo)
    stations = {
        c: FixedMSS(env, net, topo, c, metrics=metrics, monitor=monitor)
        for c in topo.grid
    }

    rng = np.random.default_rng(5)
    log = CallLog()
    host = WaypointHost(topo.grid, rng, speed=0.4)
    proc = env.process(
        waypoint_call_process(
            env, stations, host, CallConfig(mean_holding=300.0), rng, log=log
        )
    )
    env.run(until=proc)
    env.run()
    assert log.started == 1
    assert log.blocked + log.completed + log.handoffs_failed >= 1
    assert all(not s.use for s in stations.values())
    assert monitor.in_use == 0
    # With a 300-unit call at speed 0.4 across a 5x5 grid, boundary
    # crossings are essentially certain.
    assert log.handoffs_attempted >= 1
