"""Hybrid analytic/DES fast lane: fluid cells, state bridge, gates.

The contract under test (DESIGN.md §10): with ``fastlane=False``
nothing is even constructed; with it on, demotion happens only under
the quiescence/Erlang-loss validity conditions, every promotion
trigger materializes *before* protocol state is observed, and the
promote→demote→promote round trip neither invents nor loses calls.
"""

import dataclasses

import pytest

from repro.analysis.erlang import erlang_b
from repro.faults import CrashWindow, FaultPlan
from repro.harness import Scenario, build_simulation, run_scenario
from repro.harness.fastlane import FastLane
from repro.protocols.messages import ChangeMode
from repro.sim.network import Envelope
from repro.snap import SnapshotError, checkpoint, run_to_checkpoint


def lane_scenario(**overrides):
    defaults = dict(
        scheme="adaptive",
        wrap=False,
        offered_load=3.0,
        duration=600.0,
        warmup=100.0,
        seed=7,
        fastlane=True,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


def rows(report):
    data = dataclasses.asdict(report)
    data.pop("scenario")
    data.pop("obs")
    data.pop("metrics")
    return data


# -- default-off: the lane must not exist ----------------------------------


def test_off_by_default_constructs_nothing():
    sim = build_simulation(lane_scenario(fastlane=False))
    assert sim.fastlane is None
    assert all(st.fastlane is None for st in sim.stations.values())
    assert sim.source.lane is None


# -- validity gates --------------------------------------------------------


def test_build_gates_reject_invalid_combinations():
    with pytest.raises(ValueError, match="schemes"):
        build_simulation(lane_scenario(scheme="basic_update"))
    with pytest.raises(ValueError, match="fault"):
        build_simulation(
            lane_scenario(
                faults=FaultPlan(
                    crashes=(CrashWindow(cell=3, at=50.0, downtime=20.0),)
                )
            )
        )
    with pytest.raises(ValueError, match="mobility"):
        build_simulation(lane_scenario(mean_dwell=600.0))
    with pytest.raises(ValueError, match="guard"):
        build_simulation(lane_scenario(extra_params={"guard_channels": 2}))
    with pytest.raises(ValueError, match="fastlane"):
        run_scenario(lane_scenario(), shards=2)


def test_trafficmix_rejected_at_lane_construction():
    sim = build_simulation(lane_scenario(fastlane=False))
    sim.source.mix = object()  # what a TrafficMix-built source carries
    with pytest.raises(ValueError, match="TrafficMix"):
        FastLane(
            sim.env, sim.stations, sim.source, sim.metrics,
            sim.scenario, sim.streams,
        )


def test_snapshot_gates_reject_fastlane():
    with pytest.raises(SnapshotError, match="fastlane"):
        run_to_checkpoint(lane_scenario(), at=100.0)
    sim = build_simulation(lane_scenario())
    with pytest.raises(SnapshotError, match="fastlane"):
        checkpoint(sim)


# -- the fluid model itself ------------------------------------------------


def test_fixed_scheme_blocking_matches_erlang_b():
    """FCA cells never exchange messages, so the whole run is fluid and
    the measured drop rate must track the Erlang-B model."""
    scenario = lane_scenario(
        scheme="fixed", offered_load=8.0, duration=4000.0, warmup=200.0
    )
    report = run_scenario(scenario)
    lane = report.fastlane
    assert lane is not None
    assert lane["fluid_fraction"] > 0.99
    assert lane["promotions"] == {"message": 0, "spike": 0, "borrow": 0}
    # c = num_channels / cluster_size = 10 primaries per cell.
    expected = erlang_b(8.0, 10)
    assert abs(report.drop_rate - expected) < 0.02
    assert report.violations == 0


def test_adaptive_low_load_stays_mostly_fluid_and_clean():
    report = run_scenario(lane_scenario())
    lane = report.fastlane
    assert lane is not None
    assert lane["demotions"] > 0
    assert 0.5 < lane["fluid_fraction"] <= 1.0
    # Erlang-B at A=3, c=10 is ~8e-4: the lane must not invent drops.
    assert report.drop_rate < 0.01
    assert report.violations == 0
    # Divergence accounting is self-consistent.
    assert lane["arrivals"] >= lane["blocked"]
    assert lane["block_rate_abs_err"] >= 0.0


def test_runs_are_seed_deterministic():
    a = run_scenario(lane_scenario())
    b = run_scenario(lane_scenario())
    assert rows(a) == rows(b)
    assert a.fastlane == b.fastlane


def test_lane_streams_are_scheme_invariant():
    """The per-cell lane substream depends only on (seed, cell) — never
    on the scheme — so lane draws are comparable across schemes."""
    adaptive = build_simulation(lane_scenario())
    fixed = build_simulation(lane_scenario(scheme="fixed"))
    sa = adaptive.streams.stream("fastlane", "cell", 11)
    sf = fixed.streams.stream("fastlane", "cell", 11)
    assert [sa.random() for _ in range(4)] == [sf.random() for _ in range(4)]


# -- the state bridge (promote / demote round trips) -----------------------


def fluid_sim(until=250.0):
    sim = build_simulation(lane_scenario())
    sim.source.start()
    sim.env.run(until=until)
    lane = sim.fastlane
    assert lane._fluid, "expected fluid cells at low load"
    return sim, lane


def test_promote_demote_promote_preserves_calls_and_streams():
    """A zero-length demote→promote round trip must neither create nor
    destroy calls, and must not touch any *other* cell's lane stream."""
    sim, lane = fluid_sim()
    cell = sorted(lane._fluid)[0]
    station = sim.stations[cell]
    lane._promote(cell, "message")  # settle the open interval first
    assert cell not in lane._fluid

    others = [c for c in sorted(lane._fluid) if c != cell][:3]
    other_states = [lane._rng(c).bit_generator.state for c in others]
    use_before = set(station.use)
    log = sim.source.log
    counts_before = (log.started, log.blocked, log.completed)

    assert lane._demotable(cell)
    lane._demote(cell)
    assert cell in lane._fluid
    lane._promote(cell, "message")
    assert cell not in lane._fluid

    # Zero-length fluid interval: no arrivals, no drops, no survivors.
    assert set(station.use) == use_before
    assert (log.started, log.blocked, log.completed) == counts_before
    # Neighbors' lane streams were not consulted.
    assert [lane._rng(c).bit_generator.state for c in others] == other_states
    # Re-entrant promotion of an already-discrete cell is a no-op.
    before = dict(lane.promotions)
    lane._promote(cell, "message")
    assert lane.promotions == before


def test_hostile_message_at_demotion_instant():
    """A borrow-related message delivered at the very instant a cell was
    demoted must materialize it before the handler observes anything:
    the handler then runs against discrete state and the cell becomes
    ineligible (a borrowing neighbor) rather than silently re-fluid."""
    sim, lane = fluid_sim()
    env = sim.env
    cell = sorted(lane._fluid)[0]
    station = sim.stations[cell]
    # Re-demote at *this* instant so the fluid interval is zero-length.
    lane._promote(cell, "message")
    lane._demote(cell)
    demoted_at = env.now

    neighbor = sorted(station.IN)[0]
    promos_before = lane.promotions["message"]
    station.on_message(
        Envelope(
            src=neighbor,
            dst=cell,
            payload=ChangeMode(1, neighbor, 999),
            sent_at=demoted_at,
            deliver_at=demoted_at,
        )
    )
    # Promoted first, then handled: the neighbor is now registered as
    # borrowing, which keeps the cell discrete (fastlane_eligible is
    # False while UpdateS is non-empty).
    assert cell not in lane._fluid
    assert lane.promotions["message"] == promos_before + 1
    assert neighbor in station.UpdateS
    assert not station.fastlane_eligible()
    assert not lane._demotable(cell)
    # The run continues cleanly after the synthetic delivery.
    env.run(until=env.now + 50.0)
    assert not sim.monitor.violations


def test_finalize_settles_every_fluid_cell_once():
    sim, lane = fluid_sim()
    fluid = set(lane._fluid)
    assert fluid  # the scenario genuinely exercised the lane
    sim.env.run(until=lane.duration)
    lane.finalize()
    assert lane._fluid == {}
    assert lane.fluid_time > 0.0
    # Idempotent: a second finalize must not double-settle.
    arrivals = lane.arrivals
    lane.finalize()
    assert lane.arrivals == arrivals
