"""Smoke tests on the package's public surface."""

import pytest

import repro


def test_version_string():
    assert repro.__version__


def test_lazy_harness_exports_resolve():
    for name in repro._HARNESS_EXPORTS:
        assert getattr(repro, name) is not None


def test_dir_lists_lazy_names():
    listing = dir(repro)
    assert "run_scenario" in listing
    assert "Scenario" in listing
    assert "preset" in listing


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        repro.no_such_symbol


def test_top_level_quickstart_flow():
    report = repro.run_scenario(
        repro.Scenario(
            scheme="adaptive",
            offered_load=3.0,
            duration=400.0,
            warmup=100.0,
            mean_holding=60.0,
            seed=6,
        )
    )
    assert report.violations == 0
    assert report.offered > 0


def test_all_subpackage_exports_importable():
    import repro.analysis
    import repro.cellular
    import repro.core
    import repro.harness
    import repro.metrics
    import repro.protocols
    import repro.sim
    import repro.snap
    import repro.traffic

    for module in (
        repro.sim, repro.cellular, repro.protocols, repro.core,
        repro.traffic, repro.metrics, repro.analysis, repro.harness,
        repro.snap,
    ):
        for name in module.__all__:
            assert getattr(module, name) is not None, (module, name)
