"""Tests for the observability layer (repro.obs).

Covers the ObsConfig contract, span pairing (including under a hostile
fault plan), determinism of the collected data, the run-artifact
writer, the ``--trace`` directory layout of ``run_cells``, and the
shared mode-glyph coercion used by both ``ModeSampler`` and the run
reports.
"""

import json
import os

import pytest

from repro.faults import CrashWindow, FaultPlan
from repro.harness import (
    ModeSampler,
    Scenario,
    build_simulation,
    run_cells,
    run_scenario,
)
from repro.obs import (
    MODE_GLYPHS,
    UNKNOWN_MODE,
    ObsConfig,
    coerce_mode,
    mode_glyph,
    trace_events,
    write_run_artifacts,
)


def small(**kw):
    """A fast paper-topology scenario for traced runs."""
    base = dict(
        scheme="adaptive",
        offered_load=6.0,
        mean_holding=30.0,
        duration=200.0,
        warmup=25.0,
        seed=11,
        obs=ObsConfig(sample_interval=25.0),
    )
    base.update(kw)
    return Scenario(**base)


@pytest.fixture(scope="module")
def traced_report():
    return run_scenario(small())


# ----------------------------------------------------------- ObsConfig ----
def test_obs_config_validation():
    with pytest.raises(ValueError):
        ObsConfig(sample_interval=0)
    with pytest.raises(ValueError):
        ObsConfig(max_spans=-1)
    with pytest.raises(ValueError):
        ObsConfig(timeline_cells=0)


def test_obs_config_round_trip():
    cfg = ObsConfig(sample_interval=10.0, kernel=False, timeline_cells=4)
    assert ObsConfig.from_dict(cfg.to_dict()) == cfg
    assert cfg.with_(spans=False).spans is False
    with pytest.raises(ValueError, match="unknown obs config fields"):
        ObsConfig.from_dict({"bogus": 1})


def test_scenario_round_trip_with_obs():
    s = small(seed=5)
    restored = Scenario.from_json(s.to_json())
    assert restored.obs == s.obs
    assert restored == s


def test_scenario_without_obs_serializes_none():
    s = Scenario()
    assert s.obs is None
    assert Scenario.from_json(s.to_json()).obs is None


# ------------------------------------------------------- span pairing ----
def check_span_invariants(obs):
    stats = obs.span_stats
    assert stats["malformed"] == 0
    assert stats["dropped"] == 0
    assert stats["opened"] == stats["closed"] + len(obs.open_spans)
    assert len(obs.spans) == stats["closed"]
    seen = set()
    for span in obs.spans:
        key = (span["cell"], span["req_id"])
        assert key not in seen  # every span closes exactly once
        seen.add(key)
        assert span["t_end"] is not None
        assert span["t_end"] >= span["t_begin"]
        if span["t_serve"] is not None:
            assert span["t_begin"] <= span["t_serve"] <= span["t_end"]
        assert span["granted"] == (span["channel"] is not None)


def test_spans_pair_exactly(traced_report):
    obs = traced_report.obs
    assert obs is not None
    assert obs.span_stats["opened"] > 0
    check_span_invariants(obs)


def test_spans_pair_exactly_under_hostile_faults():
    """Every opened span closes exactly once even with drops, dups,
    reordering and a station crash-restart mid-run (the request.end
    emit sits in a ``finally:``)."""
    plan = FaultPlan(
        drop_prob=0.08,
        dup_prob=0.05,
        reorder_prob=0.05,
        reorder_delay=2.0,
        crashes=(CrashWindow(cell=24, at=60.0, downtime=40.0),),
    )
    report = run_scenario(small(faults=plan, seed=17))
    obs = report.obs
    assert obs is not None
    assert obs.span_stats["opened"] > 0
    check_span_invariants(obs)
    assert sum(report.faults_injected.values()) > 0


def test_disabled_obs_collects_nothing():
    assert run_scenario(small(obs=None)).obs is None
    assert run_scenario(small(obs=ObsConfig(enabled=False))).obs is None


def test_obs_data_is_deterministic(traced_report):
    again = run_scenario(small())
    assert again.obs.spans == traced_report.obs.spans
    assert again.obs.open_spans == traced_report.obs.open_spans
    assert again.obs.instants == traced_report.obs.instants
    assert again.obs.span_stats == traced_report.obs.span_stats
    assert again.obs.series == traced_report.obs.series
    # obs.kernel is excluded: its wall-clock columns vary by design.


def test_max_spans_cap_counts_overflow():
    report = run_scenario(small(obs=ObsConfig(max_spans=5)))
    obs = report.obs
    assert len(obs.spans) == 5
    assert obs.span_stats["dropped"] == obs.span_stats["closed"] - 5
    assert obs.span_stats["dropped"] > 0


# ----------------------------------------------------------- artifacts ----
def test_write_run_artifacts(tmp_path, traced_report):
    out = tmp_path / "run"
    files = write_run_artifacts(traced_report, str(out))
    assert files == sorted(
        [
            "kernel.json",
            "manifest.json",
            "report.md",
            "scenario.json",
            "timeseries.csv",
            "timeseries.json",
            "trace.json",
        ]
    )
    trace = json.loads((out / "trace.json").read_text())
    events = trace["traceEvents"]
    phases = {e["ph"] for e in events}
    assert {"M", "X", "i", "C"} <= phases
    spans = [e for e in events if e["ph"] == "X" and e["name"].startswith("acquire")]
    assert len(spans) == len(traced_report.obs.spans) + len(
        traced_report.obs.open_spans
    )
    assert all(e["dur"] >= 0 for e in spans)

    report_md = (out / "report.md").read_text()
    assert "Cost breakdown (paper Table 1 columns)" in report_md
    for column in ("msgs (model)", "msgs (sim)", "time (model)", "time (sim)"):
        assert column in report_md
    assert "Mode timeline" in report_md

    scenario = json.loads((out / "scenario.json").read_text())
    assert Scenario.from_dict(scenario) == traced_report.scenario

    manifest = json.loads((out / "manifest.json").read_text())
    assert manifest["files"] == [f for f in files if f != "manifest.json"]
    assert manifest["spans"] == traced_report.obs.span_stats

    csv = (out / "timeseries.csv").read_text().splitlines()
    assert csv[0] == "time,cell,occupancy,mode,nfc_predicted,neighborhood_load"
    assert len(csv) > 1


def test_write_run_artifacts_requires_obs(tmp_path):
    report = run_scenario(small(obs=None))
    with pytest.raises(ValueError, match="no observability data"):
        write_run_artifacts(report, str(tmp_path / "nope"))


def test_trace_counters_present(traced_report):
    events = trace_events(traced_report)
    counters = {e["name"] for e in events if e["ph"] == "C"}
    assert counters == {"system", "kernel"}


def test_run_cells_trace_dir_layout(tmp_path):
    scenarios = [
        small(seed=1, duration=100.0, warmup=20.0),
        small(seed=2, duration=100.0, warmup=20.0, obs=None),
    ]
    out = tmp_path / "artifacts"
    run_cells(scenarios, workers=1, cache=False, trace_dir=str(out))
    manifest = json.loads((out / "manifest.json").read_text())
    cells = manifest["cells"]
    assert [c["index"] for c in cells] == [0, 1]
    assert cells[0]["dir"] == "cell-000-adaptive-seed1"
    assert cells[0]["status"] == "ok"
    assert cells[1]["dir"] is None  # untraced cell: listed, no subdir
    assert os.path.isdir(out / "cell-000-adaptive-seed1")
    assert not os.path.exists(out / "cell-001-adaptive-seed2")
    report_md = (out / "cell-000-adaptive-seed1" / "report.md").read_text()
    assert report_md.startswith("# Run report — adaptive")


# ------------------------------------------------------- mode glyphs ----
def test_coerce_mode():
    assert coerce_mode(0) == 0
    assert coerce_mode(3) == 3
    assert coerce_mode(2.0) == 2
    assert coerce_mode(2.5) == UNKNOWN_MODE
    assert coerce_mode("down") == UNKNOWN_MODE
    assert coerce_mode(None) == UNKNOWN_MODE
    assert coerce_mode(99) == UNKNOWN_MODE  # integral but not a known mode


def test_mode_glyphs():
    assert [mode_glyph(m) for m in sorted(MODE_GLYPHS)] == [".", "b", "U", "S"]
    assert mode_glyph(UNKNOWN_MODE) == "?"
    assert mode_glyph("down") == "?"


def test_mode_sampler_tolerates_weird_mode_values():
    """Regression: a non-integer ``mode`` attribute (e.g. a crashed
    station flagged "down") must sample as ``?``, not raise."""
    sim = build_simulation(
        Scenario(scheme="fixed", offered_load=2.0, mean_holding=30.0,
                 duration=100.0, warmup=10.0)
    )
    sim.stations[0].mode = "down"
    sampler = ModeSampler(sim.env, sim.stations, interval=20.0)
    sim.run()
    assert set(sampler.samples[0]) == {UNKNOWN_MODE}
    assert sampler.borrowing_fraction(0) == 0.0  # unknown is not borrowing
    text = sampler.timeline(cells=[0, 1])
    assert "?" in text.splitlines()[0]
    assert "." in text.splitlines()[1]
