"""Tests for the capacity planner and weighted static partitions."""

import itertools

import pytest

from repro.analysis import (
    expected_blocked_traffic,
    marginal_allocation,
    plan_partition,
)
from repro.cellular import CellularTopology, HexGrid, ReusePattern, Spectrum


# -------------------------------------------------------------- planner ----
def test_equal_loads_get_equal_channels():
    counts = marginal_allocation([5.0] * 7, 70)
    assert counts == [10] * 7


def test_heavier_color_gets_more_channels():
    counts = marginal_allocation([2.0, 2.0, 2.0, 12.0], 40)
    assert counts[3] > max(counts[:3])
    assert sum(counts) == 40


def test_greedy_is_optimal_small_instance():
    # Brute-force check on a small instance: the greedy allocation must
    # achieve the minimum expected blocked traffic.
    loads = [1.0, 4.0, 8.0]
    total = 12
    best = None
    for counts in itertools.product(range(1, total + 1), repeat=3):
        if sum(counts) != total:
            continue
        value = expected_blocked_traffic(loads, counts)
        if best is None or value < best:
            best = value
    greedy = marginal_allocation(loads, total)
    assert expected_blocked_traffic(loads, greedy) == pytest.approx(best)


def test_min_per_color_floor():
    counts = marginal_allocation([0.0, 10.0], 10, min_per_color=2)
    assert counts[0] == 2  # the idle color keeps its floor, no more
    assert counts[1] == 8


def test_planner_validation():
    with pytest.raises(ValueError):
        marginal_allocation([], 10)
    with pytest.raises(ValueError):
        marginal_allocation([1.0, -2.0], 10)
    with pytest.raises(ValueError):
        marginal_allocation([1.0, 1.0], 1)  # cannot give 1 to each
    with pytest.raises(ValueError):
        expected_blocked_traffic([1.0], [1, 2])


def test_plan_partition_dict_interface():
    plan = plan_partition({0: 2.0, 1: 2.0, 2: 10.0}, 21)
    assert sum(plan.values()) == 21
    assert plan[2] > plan[0]


# -------------------------------------------------- weighted partitions ----
def test_spectrum_partition_sizes_and_disjointness():
    s = Spectrum(70)
    pools = s.partition([30, 25, 15])
    assert [len(p) for p in pools] == [30, 25, 15]
    assert frozenset().union(*pools) == s.all_channels
    for a, b in itertools.combinations(pools, 2):
        assert not (a & b)


def test_spectrum_partition_validation():
    s = Spectrum(10)
    with pytest.raises(ValueError):
        s.partition([5, 6])  # sums to 11
    with pytest.raises(ValueError):
        s.partition([-1, 11])


def test_weighted_primary_sets():
    grid = HexGrid(7, 7, wrap=True)
    pattern = ReusePattern(grid, 7)
    s = Spectrum(70)
    weights = {0: 22, 1: 8, 2: 8, 3: 8, 4: 8, 5: 8, 6: 8}
    pr = s.primary_sets(pattern, weights)
    for cell in grid:
        assert len(pr[cell]) == weights[pattern.color(cell)]
    # Interfering cells still have disjoint primaries.
    im = grid.interference_map(2)
    for cell in grid:
        for other in im[cell]:
            assert not (pr[cell] & pr[other])


def test_weighted_primary_sets_validation():
    grid = HexGrid(7, 7, wrap=True)
    pattern = ReusePattern(grid, 7)
    s = Spectrum(70)
    with pytest.raises(ValueError, match="cover colors"):
        s.primary_sets(pattern, {0: 70})


def test_weighted_topology_end_to_end():
    weights = {0: 16, 1: 9, 2: 9, 3: 9, 4: 9, 5: 9, 6: 9}
    topo = CellularTopology(
        7, 7, num_channels=70, wrap=True, channels_per_color=weights
    )
    sizes = {len(topo.PR(c)) for c in topo.grid}
    assert sizes == {16, 9}


def test_weighted_scenario_runs_and_serializes():
    from repro.harness import Scenario, run_scenario

    weights = {0: 16, 1: 9, 2: 9, 3: 9, 4: 9, 5: 9, 6: 9}
    s = Scenario(
        scheme="fixed",
        channels_per_color=weights,
        offered_load=4.0,
        duration=500.0,
        warmup=100.0,
        mean_holding=60.0,
        seed=3,
    )
    rep = run_scenario(s)
    assert rep.violations == 0
    restored = Scenario.from_json(s.to_json())
    assert restored.channels_per_color == weights
