"""Property-based protocol-conformance tests.

Hypothesis drives random workloads through the full stack and then
audits the complete message trace: every request answered exactly once,
every search response acknowledged, every CHANGE_MODE answered, plus
the quiescence invariants.  This is the strongest correctness net in
the suite — it exercises the interleavings unit tests cannot enumerate.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Mode
from repro.harness import Scenario, build_simulation
from repro.protocols import TraceRecorder


def run_drained(scenario):
    sim = build_simulation(scenario)
    recorder = TraceRecorder(sim.network)
    sim.source.start()
    sim.env.run(until=scenario.duration)
    sim.source.horizon = 0
    sim.env.run()  # drain calls and in-flight rounds
    return sim, recorder


@settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(
    load=st.floats(1.0, 13.0),
    seed=st.integers(0, 10_000),
    alpha=st.integers(0, 4),
    spread=st.sampled_from([0.0, 1.0]),
)
def test_adaptive_trace_always_conformant(load, seed, alpha, spread):
    scenario = Scenario(
        scheme="adaptive",
        offered_load=load,
        mean_holding=50.0,
        duration=350.0,
        warmup=50.0,
        seed=seed,
        alpha=alpha,
        latency_model="uniform" if spread else "deterministic",
        latency_spread=spread,
    )
    sim, recorder = run_drained(scenario)
    recorder.check_all()
    assert sim.monitor.violations == []
    assert sim.monitor.in_use == 0
    for s in sim.stations.values():
        assert s.waiting == 0
        assert not s.DeferQ
        assert s.mode in (Mode.LOCAL, Mode.BORROW_IDLE)


@settings(
    max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(
    scheme=st.sampled_from(["basic_search", "basic_update"]),
    load=st.floats(1.0, 12.0),
    seed=st.integers(0, 10_000),
)
def test_baseline_requests_always_answered(scheme, load, seed):
    scenario = Scenario(
        scheme=scheme,
        offered_load=load,
        mean_holding=50.0,
        duration=350.0,
        warmup=50.0,
        seed=seed,
    )
    sim, recorder = run_drained(scenario)
    recorder.check_requests_answered()
    assert sim.monitor.violations == []
    assert sim.monitor.in_use == 0


@settings(
    max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(
    load=st.floats(2.0, 12.0),
    seed=st.integers(0, 10_000),
    dwell=st.sampled_from([None, 60.0]),
)
def test_adaptive_trace_conformant_with_mobility_and_repack(load, seed, dwell):
    scenario = Scenario(
        scheme="adaptive",
        offered_load=load,
        mean_holding=50.0,
        mean_dwell=dwell,
        duration=350.0,
        warmup=50.0,
        seed=seed,
        extra_params={"repack": True},
    )
    sim, recorder = run_drained(scenario)
    recorder.check_all()
    assert sim.monitor.violations == []
    assert sim.monitor.in_use == 0
    for s in sim.stations.values():
        assert not s._alias  # every reassignment alias resolved
