"""Unit tests for the refcounted mirror sets behind interfered()."""

import pytest

from repro.core.adaptive import _CountedSet


def make_pair():
    counts = {}
    return counts, _CountedSet(counts), _CountedSet(counts)


def test_add_and_discard_update_counts():
    counts, a, b = make_pair()
    a.add(5)
    assert counts == {5: 1}
    b.add(5)
    assert counts == {5: 2}
    a.discard(5)
    assert counts == {5: 1}
    b.discard(5)
    assert counts == {}


def test_duplicate_add_counts_once():
    counts, a, _ = make_pair()
    a.add(3)
    a.add(3)
    assert counts == {3: 1}
    a.discard(3)
    assert counts == {}


def test_discard_absent_is_noop():
    counts, a, _ = make_pair()
    a.discard(7)
    assert counts == {}


def test_replace_diffs_membership():
    counts, a, b = make_pair()
    a.replace([1, 2, 3])
    b.replace([3, 4])
    assert counts == {1: 1, 2: 1, 3: 2, 4: 1}
    a.replace([2, 4])
    assert sorted(a) == [2, 4]
    assert counts == {2: 1, 3: 1, 4: 2}


def test_replace_empty_clears():
    counts, a, _ = make_pair()
    a.replace([1, 2])
    a.replace([])
    assert counts == {}
    assert not a


def test_bypassing_mutators_blocked():
    counts, a, _ = make_pair()
    with pytest.raises(NotImplementedError):
        a.update([1])
    with pytest.raises(NotImplementedError):
        a.remove(1)
    with pytest.raises(NotImplementedError):
        a.clear()


def test_set_algebra_still_works_readonly():
    counts, a, b = make_pair()
    a.replace([1, 2, 3])
    b.replace([2, 3, 4])
    assert a & b == {2, 3}
    assert a - b == {1}
    assert sorted(a | b) == [1, 2, 3, 4]


def test_counts_equal_reconstructed_union():
    import numpy as np

    counts, *_ = {}, None
    counts = {}
    sets = [_CountedSet(counts) for _ in range(6)]
    rng = np.random.default_rng(0)
    for _ in range(500):
        s = sets[rng.integers(0, len(sets))]
        ch = int(rng.integers(0, 20))
        op = rng.integers(0, 3)
        if op == 0:
            s.add(ch)
        elif op == 1:
            s.discard(ch)
        else:
            s.replace(rng.integers(0, 20, size=rng.integers(0, 6)).tolist())
        # Invariant: counts reconstruct exactly from the memberships.
        expected = {}
        for t in sets:
            for c in t:
                expected[c] = expected.get(c, 0) + 1
        assert counts == expected
