"""Request-path tests for the adaptive scheme's Fig. 2 branches —
especially the waiting-gate and guarded-primary paths added by D3 and
the deadlock fix (DESIGN.md)."""

import pytest

from repro.core import AdaptiveMSS, Mode
from repro.protocols import Acquisition, AcqType, NO_CHANNEL, ReqType, Request

from conftest import drive, make_stack


def test_direct_local_acquire_when_not_waiting():
    env, net, topo, stations, monitor, metrics = make_stack(AdaptiveMSS)
    s = stations[0]
    ch = drive(env, s.request_channel())
    assert ch in topo.PR(0)
    rec = metrics.records[-1]
    assert rec.mode == "local"
    assert rec.acquisition_time == 0.0


def test_parks_behind_older_search(monkeypatch):
    env, net, topo, stations, monitor, metrics = make_stack(AdaptiveMSS)
    s = stations[0]
    searcher = sorted(topo.IN(0))[0]
    # We owe an ack to an OLDER search: request must park on the gate.
    # (The emit registers round 99 with the causality sanitizer, since
    # _respond_search is driven below the handler layer here.)
    env.emit("proto.request", (s.cell, searcher, 99))
    s._respond_search(searcher, (0.5, searcher), 99)
    assert s.waiting == 1

    result = {}

    def requester():
        # Starts at t=1 → ts (1.0, 0) which is younger than the owed
        # search at ts 0.5 → parking is allowed and must happen.
        yield env.timeout(1.0)
        ch = yield from s.request_channel()
        result["channel"] = ch
        result["done_at"] = env.now

    def acker():
        yield env.timeout(5.0)
        s._on_Acquisition(Acquisition(AcqType.SEARCH, searcher, NO_CHANNEL))

    env.process(requester())
    env.process(acker())
    env.run()
    assert result["channel"] in topo.PR(0)
    assert result["done_at"] == pytest.approx(5.0)  # woke exactly at ack


def test_guarded_round_when_owed_ack_is_younger():
    env, net, topo, stations, monitor, metrics = make_stack(AdaptiveMSS)
    s = stations[0]
    searcher = sorted(topo.IN(0))[0]

    result = {}

    def requester():
        yield env.timeout(1.0)
        # Before our request starts, we answered a YOUNGER search
        # (ts 10); parking would create an increasing wait-for edge, so
        # the request must run a guarded update round instead of
        # parking — completing in one round trip (2T), NOT waiting for
        # the searcher's ack.
        ch = yield from s.request_channel()
        result["channel"] = ch
        result["done_at"] = env.now

    def late_search():
        yield env.timeout(0.5)
        env.emit("proto.request", (s.cell, searcher, 99))
        s._respond_search(searcher, (10.0, searcher), 99)

    env.process(late_search())
    env.process(requester())
    env.run(until=20)
    assert result["channel"] in topo.PR(0)
    assert result["done_at"] == pytest.approx(3.0)  # 1.0 + 2T round
    assert metrics.records[-1].mode == "update"  # guarded, not local
    # The searcher's ack never arrived — and wasn't needed.
    assert s.waiting == 1


def test_guarded_round_grant_recorded_by_younger_searcher():
    # The safety half of the guarded path: all IN receive the REQUEST,
    # so any in-flight searcher records granted_out and avoids the
    # channel.
    env, net, topo, stations, monitor, metrics = make_stack(AdaptiveMSS)
    s = stations[0]
    j = sorted(topo.IN(0))[0]
    sj = stations[j]
    sj.mode = Mode.BORROW_SEARCH
    sj._req_ts = (10.0, j)  # younger than the requester below
    ch = min(s.PR)
    sj._handle_update_request(
        Request(ReqType.UPDATE, ch, (1.0, 0), 0, 5)
    )
    assert ch in sj.granted_out[0]
    assert ch in sj.interfered()  # its later pick will skip ch
    sj.mode = Mode.LOCAL
    sj._req_ts = None


def test_borrow_retry_uses_same_timestamp():
    env, net, topo, stations, monitor, metrics = make_stack(AdaptiveMSS)
    s = stations[0]
    seen_ts = []
    orig = s._update_round

    def spy(channel, ts):
        seen_ts.append(ts)
        return orig(channel, ts)

    s._update_round = spy
    # Exhaust primaries, then force at least one borrow.
    for _ in range(len(topo.PR(0))):
        drive(env, s.request_channel())
    drive(env, s.request_channel())
    env.run()
    assert seen_ts  # at least one borrow round ran
    assert len({ts for ts in seen_ts}) <= len(
        [r for r in metrics.records if r.mode != "local"]
    ) or len(set(seen_ts)) == 1


def test_alpha_zero_goes_straight_to_search():
    env, net, topo, stations, monitor, metrics = make_stack(
        AdaptiveMSS, alpha=0
    )
    s = stations[0]
    for _ in range(len(topo.PR(0))):
        drive(env, s.request_channel())
    ch = drive(env, s.request_channel())
    assert ch is not None
    assert metrics.records[-1].mode == "search"


def test_request_while_mid_request_rejected():
    env, net, topo, stations, monitor, metrics = make_stack(AdaptiveMSS)
    s = stations[0]
    s.mode = Mode.BORROW_SEARCH
    with pytest.raises(AssertionError, match="concurrent"):
        drive(env, s._request((1.0, 0)))
    s.mode = Mode.LOCAL
