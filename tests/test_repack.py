"""Tests for the channel-reassignment (repack) extension."""


from repro.core import AdaptiveMSS
from repro.harness import Scenario, run_scenario

from conftest import drive, make_stack


def repack_stack():
    return make_stack(AdaptiveMSS, repack=True)


def saturate(env, topo, stations, cell):
    got = [
        drive(env, stations[cell].request_channel())
        for _ in range(len(topo.PR(cell)))
    ]
    env.run()
    return got


def borrow_one(env, topo, stations, cell):
    ch = drive(env, stations[cell].request_channel())
    assert ch is not None and ch not in topo.PR(cell)
    env.run()
    return ch


def test_primary_release_retires_borrowed_channel():
    env, net, topo, stations, monitor, metrics = repack_stack()
    s = stations[0]
    primaries = saturate(env, topo, stations, 0)
    borrowed = borrow_one(env, topo, stations, 0)

    s.release_channel(primaries[0])
    env.run()
    # The borrowed channel was retired instead; the primary stays busy.
    assert borrowed not in s.use
    assert primaries[0] in s.use
    assert s.repacks == 1
    # The owners saw the release of the borrowed channel.
    for j in topo.IN(0):
        assert borrowed not in stations[j].U[0]
        assert borrowed not in stations[j].granted_out[0]


def test_alias_resolves_when_borrow_holder_releases():
    env, net, topo, stations, monitor, metrics = repack_stack()
    s = stations[0]
    primaries = saturate(env, topo, stations, 0)
    borrowed = borrow_one(env, topo, stations, 0)
    s.release_channel(primaries[0])  # moves borrowed call onto primary
    env.run()
    # The call that held `borrowed` ends: its release must resolve to
    # the primary it was moved to.
    s.release_channel(borrowed)
    env.run()
    assert primaries[0] not in s.use
    assert not s._alias
    assert monitor.channels_used_by(0) == set(s.use)


def test_chained_repacks_resolve():
    env, net, topo, stations, monitor, metrics = repack_stack()
    s = stations[0]
    primaries = saturate(env, topo, stations, 0)
    b1 = borrow_one(env, topo, stations, 0)
    b2 = borrow_one(env, topo, stations, 0)
    # Two primary releases retire both borrowed channels (highest first).
    s.release_channel(primaries[0])
    s.release_channel(primaries[1])
    env.run()
    assert b1 not in s.use and b2 not in s.use
    assert s.repacks == 2
    # Releasing the original borrow ids unwinds onto the primaries.
    s.release_channel(b1)
    s.release_channel(b2)
    env.run()
    assert primaries[0] not in s.use and primaries[1] not in s.use
    assert monitor.in_use == sum(len(x.use) for x in stations.values())


def test_no_repack_without_flag():
    env, net, topo, stations, monitor, metrics = make_stack(
        AdaptiveMSS, repack=False
    )
    s = stations[0]
    primaries = saturate(env, topo, stations, 0)
    borrowed = borrow_one(env, topo, stations, 0)
    s.release_channel(primaries[0])
    env.run()
    assert borrowed in s.use  # borrowed call untouched
    assert primaries[0] not in s.use


def test_repack_full_simulation_safe_and_helpful():
    base = Scenario(
        scheme="adaptive",
        offered_load=8.5,
        duration=1500.0,
        warmup=300.0,
        seed=93,
    )
    plain = run_scenario(base)
    packed = run_scenario(base.with_(extra_params={"repack": True}))
    assert packed.violations == 0
    # Repacking returns borrowed channels sooner, so it should never
    # hurt the drop rate materially.
    assert packed.drop_rate <= plain.drop_rate + 0.01
