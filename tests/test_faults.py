"""Tests for the fault-injection subsystem (``repro.faults``).

Covers the FaultPlan configuration surface, the ARQ/dedup hardening
primitives, the injector's determinism, exact fault-free parity of the
hardened wiring, crash–restart re-synchronisation, and the acceptance
property of this subsystem: mutual exclusion holds under message loss
with the sanitizer suite raising.
"""

import pytest

from repro.faults import (
    Ack,
    CrashWindow,
    FaultPlan,
    Hardening,
    LinkPartition,
)
from repro.faults.arq import DedupFilter, ReliableLink
from repro.harness import Scenario, build_simulation, run_scenario
from repro.sim import DeterministicLatency, Environment, Network
from repro.traffic import HotspotLoad


# ---------------------------------------------------------------- FaultPlan --
def test_plan_defaults_are_disabled():
    plan = FaultPlan()
    assert not plan.enabled
    assert plan.max_extra_delay() == 0.0


def test_plan_enabled_by_any_fault_source():
    assert FaultPlan(drop_prob=0.01).enabled
    assert FaultPlan(dup_prob=0.01).enabled
    assert FaultPlan(partitions=(LinkPartition(0, 1, 10.0, 20.0),)).enabled
    assert FaultPlan(crashes=(CrashWindow(3, at=5.0, downtime=2.0),)).enabled


def test_plan_validation_errors():
    with pytest.raises(ValueError, match="probability"):
        FaultPlan(drop_prob=1.5)
    with pytest.raises(ValueError, match="extra_delay"):
        FaultPlan(delay_prob=0.1)
    with pytest.raises(ValueError, match="reorder_delay"):
        FaultPlan(reorder_prob=0.1)
    with pytest.raises(ValueError, match="max_retries"):
        FaultPlan(max_retries=-1)
    with pytest.raises(ValueError, match="backoff"):
        FaultPlan(backoff=0.5)
    with pytest.raises(ValueError, match="start < end"):
        LinkPartition(0, 1, 20.0, 10.0)
    with pytest.raises(ValueError, match="downtime"):
        CrashWindow(0, at=1.0, downtime=0.0)


def test_plan_roundtrips_through_dict():
    plan = FaultPlan(
        drop_prob=0.05,
        dup_prob=0.01,
        delay_prob=0.02,
        extra_delay=3.0,
        partitions=(LinkPartition(2, 9, 100.0, 150.0),),
        crashes=(CrashWindow(24, at=200.0, downtime=30.0, lose_state=False),),
        max_retries=5,
    )
    assert FaultPlan.from_dict(plan.to_dict()) == plan


def test_plan_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown FaultPlan fields"):
        FaultPlan.from_dict({"drop_prob": 0.1, "chaos_level": 11})


def test_scenario_carries_plan_through_json():
    s = Scenario(scheme="adaptive", faults=FaultPlan.uniform_loss(0.05))
    back = Scenario.from_json(s.to_json())
    assert back.faults == s.faults
    assert back == s
    # Absent plan stays absent (and distinct in the cache key).
    bare = Scenario(scheme="adaptive")
    assert Scenario.from_json(bare.to_json()).faults is None
    assert bare.to_json() != s.to_json()


def test_partition_severs_both_directions_inside_window():
    p = LinkPartition(2, 9, 10.0, 20.0)
    assert p.severs(2, 9, 15.0) and p.severs(9, 2, 15.0)
    assert not p.severs(2, 9, 5.0)
    assert not p.severs(2, 9, 20.0)  # half-open window
    assert not p.severs(2, 3, 15.0)


# -------------------------------------------------------------- ARQ / dedup --
def test_dedup_filter_suppresses_repeats_within_window():
    d = DedupFilter(window=3)
    assert d.accept(1, 10)
    assert not d.accept(1, 10)
    assert d.accept(2, 10)  # per-source spaces
    for m in (11, 12, 13):
        assert d.accept(1, m)
    # msg_id 10 fell out of source 1's window of 3.
    assert d.accept(1, 10)
    assert d.suppressed == 1
    d.reset()
    assert d.accept(2, 10)


class _Sink:
    def __init__(self, node_id):
        self.node_id = node_id
        self.received = []

    def on_message(self, envelope):
        self.received.append(envelope)


def _link_fixture():
    env = Environment()
    net = Network(env, DeterministicLatency(1.0))
    for i in range(3):
        net.attach(_Sink(i))
    hard = Hardening.from_plan(FaultPlan.uniform_loss(0.05), 1.0)
    link = ReliableLink(env, net, 0, hard)
    return env, net, link, hard


def test_reliable_link_ack_clears_pending():
    env, net, link, _ = _link_fixture()
    link.send(1, "hello")
    assert link.in_flight == 1
    env.run()
    ack = Ack(net._msg_id)  # the only message sent so far
    link.on_ack(ack)
    assert link.in_flight == 0
    assert link.recovered == 0  # first try: nothing to recover


def test_reliable_link_retransmits_then_recovers():
    env, net, link, hard = _link_fixture()
    link.send(1, "hello")
    msg_id = net._msg_id
    env.run(until=hard.rto + 0.1)  # timer fired once, no ack
    assert link.retransmissions == 1
    link.on_ack(Ack(msg_id))
    assert link.recovered == 1
    env.run()
    # Both copies reached the sink with the same logical identity.
    sink = net.node(1)
    assert [e.msg_id for e in sink.received] == [msg_id, msg_id]
    assert sink.received[1].fault_tag == "retrans"


def test_reliable_link_bounded_retries_then_gives_up():
    env, net, link, hard = _link_fixture()
    link.send(1, "void")
    env.run()
    assert link.retransmissions == hard.max_retries
    assert link.exhausted == 1
    assert link.in_flight == 0


def test_reliable_link_sends_in_order_per_destination():
    """The second message to a destination waits for the first's ack.

    This is the safety-critical half of the ARQ: without it a
    retransmitted stale message could overtake newer traffic and
    corrupt the receiver's neighbor-use mirror.
    """
    env, net, link, _ = _link_fixture()
    link.send(1, "first")
    first_id = net._msg_id
    link.send(1, "second")
    link.send(2, "other-link")  # different destination: not blocked
    assert net.total_sent == 2  # "second" is queued, not sent
    link.on_ack(Ack(first_id))
    assert net.total_sent == 3
    env.run(until=2.0)  # both deliveries land; before any rto fires
    assert [e.payload for e in net.node(1).received] == ["first", "second"]


def test_reliable_link_exhaustion_unblocks_queue():
    env, net, link, hard = _link_fixture()
    link.send(1, "lost-forever")
    link.send(1, "next")
    env.run()  # never acked: retries exhaust, then "next" goes out
    assert link.exhausted == 2  # both eventually give up (no acker here)
    payloads = [e.payload for e in net.node(1).received]
    assert "next" in payloads
    # Strict order: every copy of the first precedes every "next" copy.
    assert max(i for i, p in enumerate(payloads) if p == "lost-forever") < (
        min(i for i, p in enumerate(payloads) if p == "next")
    )


def test_hardening_timeout_ordering():
    hard = Hardening.from_plan(FaultPlan.uniform_loss(0.05), 2.0)
    # rto covers a full round trip; deadlines nest strictly.
    assert hard.rto > 2 * 2.0
    assert hard.round_deadline > hard.rto
    assert hard.ack_timeout > hard.round_deadline


# -------------------------------------------------- network-level semantics --
def test_msg_id_monotonic_and_in_repr():
    env = Environment()
    net = Network(env, DeterministicLatency(1.0))
    for i in range(2):
        net.attach(_Sink(i))
    a = net.send(0, 1, "x")
    b = net.send(0, 1, "y")
    assert b.msg_id == a.msg_id + 1 > 0
    assert f"msg_id={a.msg_id}" in repr(a)
    assert "fault_tag" not in repr(a)
    c = net.send(0, 1, "z", msg_id=a.msg_id, fault_tag="retrans")
    assert c.msg_id == a.msg_id
    assert "fault_tag='retrans'" in repr(c)


def test_multicast_snapshots_generator_argument():
    """A failing send must not leave a generator argument half-consumed."""
    env = Environment()
    net = Network(env, DeterministicLatency(1.0))
    for i in range(3):
        net.attach(_Sink(i))
    dsts = (d for d in [1, 99, 2])
    with pytest.raises(KeyError):
        net.multicast(0, dsts, "fan-out")
    # The iterable was snapshotted up front: nothing left dangling.
    assert list(dsts) == []
    # And plain generators work end to end.
    assert net.multicast(0, (d for d in [1, 2]), "ok") == 2


# ----------------------------------------------------- injector determinism --
def _lossy(scheme="adaptive", **kw):
    base = dict(
        scheme=scheme,
        faults=FaultPlan.uniform_loss(0.05),
        duration=200.0,
        warmup=50.0,
        offered_load=4.0,
        mean_holding=60.0,
        seed=7,
    )
    base.update(kw)
    return Scenario(**base)


def test_injector_is_deterministic():
    a = run_scenario(_lossy())
    b = run_scenario(_lossy())
    assert a.faults_injected == b.faults_injected
    assert a.faults_recovered == b.faults_recovered
    assert a.retries == b.retries
    assert a.drop_rate == b.drop_rate
    assert a.messages_total == b.messages_total
    assert sum(a.faults_injected.values()) > 0


def test_injector_seed_changes_fault_pattern():
    a = run_scenario(_lossy())
    b = run_scenario(_lossy(seed=8))
    assert a.faults_injected != b.faults_injected


def test_disabled_plan_runs_event_identical_to_no_plan():
    """An all-zero plan must not perturb the simulation at all.

    Compared on the kernel's event counter — the strongest cheap
    equality: if even one extra timeout or message were scheduled, the
    counters would diverge.
    """
    bare = build_simulation(_lossy(faults=None))
    bare.run()
    noop = build_simulation(_lossy(faults=FaultPlan()))
    noop.run()
    assert noop.injector is None
    assert noop.env._eid == bare.env._eid
    assert noop.network.total_sent == bare.network.total_sent
    assert noop.metrics.drop_rate == bare.metrics.drop_rate
    assert not hasattr(noop.stations[0], "_link") or noop.stations[0]._link is None


# --------------------------------------------------------- crash and re-sync --
def test_crash_restart_resync_stays_safe():
    """A cold crash loses all state; the restart re-sync rebuilds it."""
    plan = FaultPlan(
        crashes=(CrashWindow(24, at=100.0, downtime=15.0, lose_state=True),),
    )
    report = run_scenario(_lossy(faults=plan, duration=300.0))
    assert report.violations == 0
    injected = report.faults_injected
    assert injected.get("crash") == 1
    assert injected.get("restart") == 1
    # The crashed cell is alive again and took traffic post-restart.
    assert report.drop_rate < 1.0


def test_partition_blocks_link_during_window():
    plan = FaultPlan(partitions=(LinkPartition(24, 25, 60.0, 120.0),))
    report = run_scenario(_lossy(faults=plan, scheme="basic_update"))
    assert report.violations == 0
    assert report.faults_injected.get("partition", 0) > 0


# ----------------------------------------------------------------- acceptance --
def test_mutual_exclusion_holds_under_loss():
    """Acceptance: 5% uniform loss, hot-spot load, sanitizers raising.

    The session-level conftest fixture runs every simulation with the
    deadlock/causality/quiescence sanitizers in raise mode, and the
    interference monitor raises on any co-channel violation — so this
    completing at all is the safety claim; the assertions pin the
    recovery machinery actually being exercised.
    """
    holding = 60.0
    scenario = Scenario(
        scheme="adaptive",
        faults=FaultPlan.uniform_loss(0.05),
        pattern=HotspotLoad(4.0 / holding, [24], 16.0 / holding),
        offered_load=4.0,
        mean_holding=holding,
        duration=300.0,
        warmup=50.0,
        seed=7,
    )
    report = run_scenario(scenario)
    assert report.violations == 0
    assert sum(report.faults_injected.values()) > 0
    assert sum(report.faults_recovered.values()) > 0
    assert report.retries > 0
    # The hot spot still gets served: loss degrades liveness gracefully
    # rather than collapsing the allocator.
    assert report.drop_rate < 0.2
