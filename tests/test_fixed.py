"""Unit tests for the fixed (static) allocation baseline."""

import pytest

from repro.protocols import FixedMSS

from conftest import drive, make_stack


def test_grants_only_primaries():
    env, net, topo, stations, monitor, metrics = make_stack(FixedMSS)
    s = stations[0]
    ch = drive(env, s.request_channel())
    assert ch in topo.PR(0)
    assert ch in s.use


def test_zero_latency_and_zero_messages():
    env, net, topo, stations, monitor, metrics = make_stack(FixedMSS)
    drive(env, stations[0].request_channel())
    assert env.now == 0.0
    assert net.total_sent == 0


def test_denies_when_primaries_exhausted():
    env, net, topo, stations, monitor, metrics = make_stack(FixedMSS)
    s = stations[0]
    capacity = len(topo.PR(0))
    for _ in range(capacity):
        assert drive(env, s.request_channel()) is not None
    assert drive(env, s.request_channel()) is None
    assert metrics.dropped == 1


def test_denies_even_when_neighbors_idle():
    # The paper's motivating weakness: hot cell drops while the
    # interference region sits on idle channels.
    env, net, topo, stations, monitor, metrics = make_stack(FixedMSS)
    s = stations[0]
    for _ in range(len(topo.PR(0))):
        drive(env, s.request_channel())
    # All neighbors completely idle, yet:
    assert drive(env, s.request_channel()) is None
    assert all(not stations[j].use for j in topo.IN(0))


def test_release_enables_new_grant():
    env, net, topo, stations, monitor, metrics = make_stack(FixedMSS)
    s = stations[0]
    channels = [drive(env, s.request_channel()) for _ in range(len(topo.PR(0)))]
    s.release_channel(channels[0])
    assert drive(env, s.request_channel()) == channels[0]


def test_release_unheld_channel_rejected():
    env, net, topo, stations, monitor, metrics = make_stack(FixedMSS)
    with pytest.raises(ValueError):
        stations[0].release_channel(3)


def test_no_interference_between_any_cells():
    env, net, topo, stations, monitor, metrics = make_stack(FixedMSS)
    # Fill every cell to capacity: static reuse pattern guarantees
    # safety, and the monitor verifies it live.
    for cell, s in stations.items():
        for _ in range(len(topo.PR(cell))):
            assert drive(env, s.request_channel()) is not None
    assert monitor.total_acquisitions == 49 * 10
    assert not monitor.violations


def test_deterministic_channel_order():
    env, net, topo, stations, monitor, metrics = make_stack(FixedMSS)
    s = stations[0]
    got = [drive(env, s.request_channel()) for _ in range(3)]
    assert got == sorted(topo.PR(0))[:3]
