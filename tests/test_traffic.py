"""Unit tests for load patterns, call lifecycle and arrival processes."""

import numpy as np
import pytest

from repro.protocols import FixedMSS
from repro.sim import StreamRegistry
from repro.traffic import (
    CallConfig,
    CallLog,
    HotspotLoad,
    PiecewiseLoad,
    RampLoad,
    TemporalHotspot,
    TrafficSource,
    UniformLoad,
    call_process,
)

from conftest import drive, make_stack


# --------------------------------------------------------------- patterns ----
def test_uniform_load():
    p = UniformLoad(0.5)
    assert p.rate(0, 0) == 0.5
    assert p.rate(42, 1e6) == 0.5
    assert p.max_rate(7) == 0.5
    with pytest.raises(ValueError):
        UniformLoad(-1)


def test_hotspot_load():
    p = HotspotLoad(0.1, [3, 4], 2.0)
    assert p.rate(3, 0) == 2.0
    assert p.rate(5, 0) == 0.1
    assert p.max_rate(4) == 2.0
    assert p.max_rate(0) == 0.1


def test_temporal_hotspot_window():
    p = TemporalHotspot(0.1, [1], 5.0, start=100, end=200)
    assert p.rate(1, 50) == 0.1
    assert p.rate(1, 100) == 5.0
    assert p.rate(1, 199.9) == 5.0
    assert p.rate(1, 200) == 0.1
    assert p.rate(2, 150) == 0.1
    assert p.max_rate(1) == 5.0
    with pytest.raises(ValueError):
        TemporalHotspot(0.1, [1], 5.0, start=200, end=100)


def test_ramp_load():
    p = RampLoad(0.0, 1.0, duration=100)
    assert p.rate(0, 0) == 0.0
    assert p.rate(0, 50) == pytest.approx(0.5)
    assert p.rate(0, 100) == 1.0
    assert p.rate(0, 500) == 1.0
    assert p.max_rate(0) == 1.0


def test_piecewise_load():
    p = PiecewiseLoad({0: 1.0, 1: 2.0}, default=0.25)
    assert p.rate(0, 0) == 1.0
    assert p.rate(9, 0) == 0.25
    with pytest.raises(ValueError):
        PiecewiseLoad({0: -1})


# ------------------------------------------------------------ call process ----
def test_call_lifecycle_grant_hold_release():
    env, net, topo, stations, monitor, metrics = make_stack(FixedMSS)
    rng = np.random.default_rng(0)
    log = CallLog()
    cfg = CallConfig(mean_holding=50.0)
    drive(env, call_process(env, stations, 0, cfg, rng, log=log))
    assert log.started == 1
    assert log.completed == 1
    assert not stations[0].use  # channel released at completion
    assert env.now > 0


def test_blocked_call_counted():
    env, net, topo, stations, monitor, metrics = make_stack(FixedMSS)
    s = stations[0]
    for _ in range(len(topo.PR(0))):
        drive(env, s.request_channel())
    rng = np.random.default_rng(0)
    log = CallLog()
    drive(env, call_process(env, stations, 0, CallConfig(), rng, log=log))
    assert log.blocked == 1
    assert log.completed == 0


def test_mobility_performs_handoffs():
    env, net, topo, stations, monitor, metrics = make_stack(FixedMSS)
    rng = np.random.default_rng(42)
    log = CallLog()
    cfg = CallConfig(mean_holding=500.0, mean_dwell=20.0)
    drive(env, call_process(env, stations, 0, cfg, rng, log=log))
    assert log.handoffs_attempted > 0
    # Call either completed or died on a failed handoff; channel state
    # must be clean either way.
    assert all(not s.use for s in stations.values())


def test_config_validation():
    with pytest.raises(ValueError):
        CallConfig(mean_holding=0)
    with pytest.raises(ValueError):
        CallConfig(mean_dwell=-1)
    with pytest.raises(ValueError):
        CallConfig(setup_deadline=0)


def test_forced_termination_rate():
    log = CallLog(handoffs_attempted=10, handoffs_failed=3)
    assert log.forced_termination_rate == pytest.approx(0.3)
    assert CallLog().forced_termination_rate == 0.0


# ------------------------------------------------------------- TrafficSource ----
def test_poisson_arrival_count_matches_rate():
    env, net, topo, stations, monitor, metrics = make_stack(FixedMSS)
    rate = 0.05  # per cell per unit
    src = TrafficSource(
        env,
        stations,
        UniformLoad(rate),
        CallConfig(mean_holding=1.0),  # near-instant calls
        StreamRegistry(seed=1),
        horizon=2000.0,
    )
    src.start()
    env.run(until=2100)
    expected = rate * 2000 * len(stations)
    assert src.log.started == pytest.approx(expected, rel=0.1)


def test_arrivals_stop_at_horizon():
    env, net, topo, stations, monitor, metrics = make_stack(FixedMSS)
    src = TrafficSource(
        env, stations, UniformLoad(0.05), CallConfig(mean_holding=1.0),
        StreamRegistry(seed=1), horizon=100.0,
    )
    src.start()
    env.run(until=100)
    count_at_horizon = src.log.started
    env.run()  # drain
    assert src.log.started == count_at_horizon


def test_double_start_rejected():
    env, net, topo, stations, monitor, metrics = make_stack(FixedMSS)
    src = TrafficSource(
        env, stations, UniformLoad(0.01), CallConfig(),
        StreamRegistry(seed=1), horizon=10.0,
    )
    src.start()
    with pytest.raises(RuntimeError):
        src.start()


def test_traffic_reproducible_across_runs():
    def run(seed):
        env, net, topo, stations, monitor, metrics = make_stack(FixedMSS)
        src = TrafficSource(
            env, stations, UniformLoad(0.02), CallConfig(mean_holding=30.0),
            StreamRegistry(seed=seed), horizon=500.0,
        )
        src.start()
        env.run()
        return (src.log.started, src.log.completed, metrics.offered)

    assert run(5) == run(5)
    assert run(5) != run(6)


def test_temporal_hotspot_thinning_produces_burst():
    env, net, topo, stations, monitor, metrics = make_stack(FixedMSS)
    pattern = TemporalHotspot(0.001, [0], 0.2, start=500, end=1500)
    src = TrafficSource(
        env, stations, pattern, CallConfig(mean_holding=1.0),
        StreamRegistry(seed=3), horizon=2000.0,
    )
    arrivals_in = []
    orig = metrics.record_acquisition

    def spy(**kw):
        if kw["cell"] == 0:
            arrivals_in.append(kw["time"])
        orig(**kw)

    metrics.record_acquisition = spy
    src.start()
    env.run(until=2100)
    burst = sum(1 for t in arrivals_in if 500 <= t < 1500)
    outside = len(arrivals_in) - burst
    # Hot window: rate 0.2 for 1000 units ≈ 200 calls; outside: 0.001
    # for 1000 units ≈ 1 call.
    assert burst > 20 * max(outside, 1)
