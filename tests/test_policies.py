"""Mode-policy registry: round trips, cache hygiene, snapshots, regret.

The contracts under test (docs/POLICIES.md):

* **Registry round trip** — every registered policy reconstructs from
  its own ``to_config()`` output after a JSON round trip, and its
  mutable state survives ``state_dict``/``load_state`` the same way.
* **Cache hygiene** — ``policy`` and ``policy_params`` participate in
  the result-cache key, so two scenarios differing only in policy can
  never alias a cached row.
* **Snapshot round trip** — a mid-run checkpoint taken under any
  policy resumes row-identically to never having snapshotted (the
  format-v2 opaque policy state actually carries the policy's memory).
* **Oracle dominance** — the clairvoyant oracle's regret is exactly 0
  by construction, and every other policy's *mean* regret over seeds
  is non-negative on the reference workload.  (Per-seed dominance does
  not hold — a myopic policy can luck into a better trajectory on one
  short horizon — which is why the property is stated over the mean.)
"""

import dataclasses
import json

import pytest

from repro.harness import Scenario, run_scenario, tune_policy
from repro.harness.cache import cache_key
from repro.policies import (
    compare_policies,
    make_policy,
    policy_names,
    policy_spec,
    record_trace,
)
from repro.snap import run_from_snapshot, run_to_checkpoint

#: Station-derived context every policy receives (paper defaults).
CONTEXT = dict(
    cell=7,
    theta_low=1.0,
    theta_high=3.0,
    window=30.0,
    horizon=2.0,
    initial=10,
)


def small(**overrides):
    defaults = dict(
        scheme="adaptive",
        offered_load=5.0,
        duration=160.0,
        warmup=40.0,
        seed=11,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


def rows(report):
    """Every Report field that must be policy/snapshot-invariant."""
    data = dataclasses.asdict(report)
    data.pop("scenario")
    data.pop("obs")
    data.pop("metrics")
    return data


# -- registry ---------------------------------------------------------------


def test_registry_ships_the_five_documented_policies():
    assert policy_names() == [
        "ewma",
        "harvest",
        "linear",
        "oracle",
        "quantile",
    ]


def test_unknown_policy_is_a_value_error():
    with pytest.raises(ValueError, match="unknown policy"):
        policy_spec("nope")
    with pytest.raises(ValueError, match="unknown policy"):
        make_policy("nope", **CONTEXT)


def test_bad_params_name_the_policy():
    with pytest.raises(ValueError, match="ewma"):
        make_policy("ewma", {"bogus": 1}, **CONTEXT)


@pytest.mark.parametrize("name", policy_names())
def test_config_round_trip(name):
    """to_config() -> JSON -> make_policy reconstructs the policy."""
    policy = make_policy(name, **CONTEXT)
    config = json.loads(json.dumps(policy.to_config()))
    rebuilt = make_policy(config["name"], config["params"], **CONTEXT)
    assert type(rebuilt) is type(policy)
    assert rebuilt.to_config() == policy.to_config()


@pytest.mark.parametrize("name", policy_names())
def test_state_dict_round_trip(name):
    """Mutable state survives state_dict -> JSON -> load_state."""
    policy = make_policy(name, **CONTEXT)
    borrowing = False
    for t, s in [(0.0, 10), (4.0, 6), (9.0, 2), (15.0, 0), (22.0, 5)]:
        answer = policy.decide(t, s, borrowing)
        if answer is not None:
            borrowing = answer
    state = json.loads(json.dumps(policy.state_dict()))
    rebuilt = make_policy(name, **CONTEXT)
    rebuilt.load_state(state)
    assert rebuilt.state_dict() == policy.state_dict()
    # The restored policy predicts and decides exactly like the
    # original from here on.
    assert rebuilt.predict_at(30.0) == policy.predict_at(30.0)
    assert rebuilt.decide(30.0, 4, borrowing) == policy.decide(
        30.0, 4, borrowing
    )


# -- cache hygiene ----------------------------------------------------------


def test_cache_key_separates_policies_and_params():
    base = small()
    keys = {
        cache_key(base),
        cache_key(base.with_(policy="ewma")),
        cache_key(base.with_(policy="ewma", policy_params={"beta": 0.5})),
        cache_key(base.with_(policy="quantile")),
    }
    assert len(keys) == 4


def test_scenario_json_round_trips_policy_fields():
    scenario = small(policy="ewma", policy_params={"beta": 0.4})
    restored = Scenario.from_json(scenario.to_json())
    assert restored.policy == "ewma"
    assert restored.policy_params == {"beta": 0.4}
    assert cache_key(restored) == cache_key(scenario)


# -- default behavior -------------------------------------------------------


def test_default_policy_is_linear_and_row_identical():
    """An explicit policy="linear" is the default, bit for bit."""
    default = run_scenario(small())
    explicit = run_scenario(small(policy="linear", policy_params={}))
    assert rows(default) == rows(explicit)
    # Outside a policy comparison the regret column stays unfilled.
    assert default.regret_vs_oracle is None


# -- snapshot round trip ----------------------------------------------------


@pytest.mark.parametrize("name", ["linear", "ewma", "quantile", "harvest"])
def test_midrun_checkpoint_resumes_row_identically(name):
    scenario = small(policy=name)
    cold = rows(run_scenario(scenario))
    snapshot = run_to_checkpoint(scenario, at=80.0)
    resumed = rows(run_from_snapshot(snapshot))
    assert resumed == cold


def test_midrun_checkpoint_resumes_the_oracle():
    """The oracle's trace (config) and lookup state ride the snapshot."""
    trace = record_trace(small())
    scenario = small(policy="oracle", policy_params={"trace": trace})
    cold = rows(run_scenario(scenario))
    snapshot = run_to_checkpoint(scenario, at=80.0)
    assert rows(run_from_snapshot(snapshot)) == cold


# -- fast-lane gating -------------------------------------------------------


@pytest.mark.parametrize("name", ["oracle", "harvest"])
def test_fastlane_rejects_unsafe_policies(name):
    with pytest.raises(ValueError, match="fastlane"):
        run_scenario(small(policy=name, fastlane=True))


def test_fastlane_accepts_safe_policies():
    report = run_scenario(small(policy="ewma", fastlane=True))
    assert report.fastlane is not None


# -- regret vs the clairvoyant oracle ---------------------------------------


def test_oracle_regret_is_zero_and_mean_regret_nonnegative():
    """The oracle-dominance property on the reference workload.

    Per-report regret is drop_rate - oracle drop_rate on the same
    (scenario, seed); the oracle's is exactly 0.0 by construction.
    Mean regret per policy over the seeds must be non-negative —
    clairvoyance can be matched but not beaten on average.
    """
    base = Scenario(
        scheme="adaptive",
        offered_load=10.0,
        duration=400.0,
        warmup=100.0,
    )
    comparison = compare_policies(base, seeds=[1, 2], workers=0)
    assert "oracle" in comparison.policies
    for seed in (1, 2):
        oracle_report = comparison.reports[("oracle", seed)]
        assert oracle_report.regret_vs_oracle == 0.0
    for name in comparison.policies:
        for seed in (1, 2):
            assert comparison.reports[(name, seed)].regret_vs_oracle is not None
        if name != "oracle":
            assert comparison.regret(name) >= 0.0


# -- tuning -----------------------------------------------------------------


def test_tune_policy_grid_and_best_scenario():
    base = small()
    result = tune_policy(
        base,
        theta_lows=(0.5, 1.0),
        seeds=(11,),
        workers=0,
    )
    assert len(result.rows) == 2
    best = result.best
    assert best["setting"]["theta_low"] in (0.5, 1.0)
    assert best["score"] == min(row["score"] for row in result.rows)
    tuned = result.best_scenario(base)
    assert tuned.theta_low == best["setting"]["theta_low"]


def test_tune_policy_param_grid_lands_in_policy_params():
    base = small(policy="ewma")
    result = tune_policy(
        base,
        param_grid={"beta": [0.2, 0.6]},
        seeds=(11,),
        workers=0,
    )
    tuned = result.best_scenario(base)
    assert tuned.policy_params["beta"] in (0.2, 0.6)


def test_tune_policy_rejects_non_adaptive_schemes():
    with pytest.raises(ValueError, match="adaptive"):
        tune_policy(small(scheme="fixed"))
