"""Tests for the vector-clock happens-before checker.

The checker is driven synthetically (hand-built envelopes and
hand-emitted probe events, like the other sanitizer tests) and through
a real adaptive-protocol stack, where a full borrow round must stamp
real traffic and stay silent.
"""

import pytest

from repro.core import AdaptiveMSS
from repro.sim import DeterministicLatency, Envelope, Environment, Network
from repro.verify import VectorClockChecker

from conftest import drive, make_stack


class MirrorSink:
    """Node that mirrors the sender's payload on every delivery."""

    def __init__(self, node_id, env):
        self.node_id = node_id
        self.env = env
        self.received = []

    def on_message(self, envelope):
        self.received.append(envelope)
        self.env.emit(
            "mirror.update",
            (self.node_id, envelope.src, "U", "add", envelope.payload),
        )


def make_net(env, fifo=True, n=4):
    net = Network(env, latency=DeterministicLatency(1.0), fifo=fifo)
    for i in range(n):
        net.attach(MirrorSink(i, env))
    return net


# -------------------------------------------------------- synthetic runs ----
def test_in_order_traffic_is_clean_and_stamped():
    env = Environment()
    net = make_net(env)
    chk = VectorClockChecker(env, policy="record")
    net.send(0, 1, "a")
    net.send(0, 1, "b")
    env.run()
    assert chk.violations == []
    assert chk.messages_stamped == 2


def test_reordered_delivery_flags_causal_delivery():
    env = Environment()
    net = make_net(env, fifo=False)  # network *allows* reordering
    chk = VectorClockChecker(env, policy="record", check_order=True)
    net.send(0, 1, "slow", delay_override=5.0)
    net.send(0, 1, "fast", delay_override=1.0)
    env.run()
    assert "causal_delivery" in [v.kind for v in chk.violations]


def test_reordered_mirror_write_flags_mirror_race():
    # The overtaken message reaches the handler second, so the second
    # write to U[0] at cell 1 carries the *older* stamp: last-writer-
    # wins would leave the mirror holding stale state.
    env = Environment()
    net = make_net(env, fifo=False)
    chk = VectorClockChecker(env, policy="record", check_order=True)
    net.send(0, 1, "slow", delay_override=5.0)
    net.send(0, 1, "fast", delay_override=1.0)
    env.run()
    kinds = [v.kind for v in chk.violations]
    assert "mirror_race" in kinds
    race = next(v for v in chk.violations if v.kind == "mirror_race")
    assert (race.src, race.dst) == (0, 1)


def test_check_order_gate_silences_reordering_network():
    env = Environment()
    net = make_net(env, fifo=False)
    chk = VectorClockChecker(env, policy="record", check_order=False)
    net.send(0, 1, "slow", delay_override=5.0)
    net.send(0, 1, "fast", delay_override=1.0)
    env.run()
    assert chk.violations == []
    assert chk.messages_stamped == 2


def test_raise_policy_raises_on_reorder():
    env = Environment()
    net = make_net(env, fifo=False)
    VectorClockChecker(env, policy="raise", check_order=True)
    net.send(0, 1, "slow", delay_override=5.0)
    net.send(0, 1, "fast", delay_override=1.0)
    with pytest.raises(AssertionError, match="causal_delivery"):
        env.run()


def test_fault_tagged_copies_are_not_stamped():
    env = Environment()
    chk = VectorClockChecker(env, policy="record")
    env.emit(
        "net.send",
        Envelope(0, 1, "x", sent_at=0.0, deliver_at=1.0, seq=1, fault_tag="retrans"),
    )
    env.emit(
        "net.deliver",
        Envelope(0, 1, "x", sent_at=0.0, deliver_at=1.0, seq=1, fault_tag="retrans"),
    )
    assert chk.messages_stamped == 0
    assert chk.violations == []


def test_unknown_stamp_skips_checks_and_clears_context():
    env = Environment()
    chk = VectorClockChecker(env, policy="record")
    # Delivery of a message the checker never saw sent (white-box
    # injection): nothing to verify, and the mirror write that follows
    # must not be attributed to anything.
    env.emit("net.deliver", Envelope(0, 1, "x", sent_at=0.0, deliver_at=1.0, seq=99))
    env.emit("mirror.update", (1, 0, "U", "add", 5))
    env.emit("mirror.update", (1, 0, "U", "add", 6))
    assert chk.violations == []


def test_local_write_resets_mirror_tracking():
    env = Environment()
    net = make_net(env, fifo=False)
    chk = VectorClockChecker(env, policy="record", check_order=True)
    net.send(0, 1, "slow", delay_override=5.0)
    net.send(0, 1, "fast", delay_override=1.0)
    # A local wipe (no delivery context for cell 2) between the two
    # handler writes resets tracking for *its* key only.
    env.emit("mirror.update", (2, 0, "U", "replace", None))
    env.run()
    assert "mirror_race" in [v.kind for v in chk.violations]


def test_foreign_probe_payloads_tolerated():
    env = Environment()
    chk = VectorClockChecker(env, policy="record")
    env.emit("mirror.update", 42)  # not a tuple
    env.emit("mirror.update", (1, 0, "U"))  # wrong arity
    assert chk.violations == []


# -------------------------------------------------------- real protocol ----
def test_adaptive_borrow_round_is_stamped_and_clean():
    # make_stack's suite already runs a raise-mode VectorClockChecker;
    # this record-mode one rides along to expose the counters.
    env, net, topo, stations, monitor, metrics = make_stack(AdaptiveMSS, alpha=0)
    chk = VectorClockChecker(env, policy="record")
    held = []
    for _ in range(len(topo.PR(0))):
        held.append(drive(env, stations[0].request_channel()))
    env.run()
    borrowed = drive(env, stations[0].request_channel())  # via search
    env.run()
    assert borrowed is not None
    for ch in held + [borrowed]:
        stations[0].release_channel(ch)
    env.run()
    assert chk.violations == []
    assert chk.messages_stamped > 0
