"""Unit tests for the interference monitor (Theorem 1 oracle)."""

import pytest

from repro.cellular import CellularTopology
from repro.protocols import InterferenceMonitor


@pytest.fixture
def topo():
    return CellularTopology(7, 7, num_channels=70, wrap=True)


def test_conflicting_acquisition_raises(topo):
    mon = InterferenceMonitor(topo, policy="raise")
    neighbor = sorted(topo.IN(0))[0]
    mon.acquired(0, 5, time=1.0)
    with pytest.raises(AssertionError, match="interfering"):
        mon.acquired(neighbor, 5, time=2.0)


def test_far_cells_may_share_channel(topo):
    mon = InterferenceMonitor(topo, policy="raise")
    far = next(c for c in topo.grid if c != 0 and c not in topo.IN(0))
    mon.acquired(0, 5, time=1.0)
    mon.acquired(far, 5, time=2.0)  # no exception
    assert mon.total_acquisitions == 2


def test_record_policy_collects_violations(topo):
    mon = InterferenceMonitor(topo, policy="record")
    neighbor = sorted(topo.IN(0))[0]
    mon.acquired(0, 5, time=1.0)
    mon.acquired(neighbor, 5, time=2.0)
    assert len(mon.violations) == 1
    v = mon.violations[0]
    assert v.channel == 5 and v.cell == neighbor and v.conflicting_cell == 0
    with pytest.raises(AssertionError):
        mon.assert_clean()


def test_release_after_acquire_allows_reuse(topo):
    mon = InterferenceMonitor(topo, policy="raise")
    neighbor = sorted(topo.IN(0))[0]
    mon.acquired(0, 5, time=1.0)
    mon.released(0, 5, time=2.0)
    mon.acquired(neighbor, 5, time=3.0)  # fine now


def test_double_acquire_same_cell_rejected(topo):
    mon = InterferenceMonitor(topo, policy="record")
    mon.acquired(0, 5, time=1.0)
    with pytest.raises(AssertionError, match="double-acquired"):
        mon.acquired(0, 5, time=2.0)


def test_release_without_hold_rejected(topo):
    mon = InterferenceMonitor(topo, policy="raise")
    with pytest.raises(AssertionError, match="does not hold"):
        mon.released(0, 5, time=1.0)


def test_usage_queries(topo):
    mon = InterferenceMonitor(topo, policy="raise")
    mon.acquired(0, 5, time=1.0)
    mon.acquired(0, 6, time=1.0)
    assert mon.channels_used_by(0) == {5, 6}
    assert mon.in_use == 2
    mon.released(0, 5, time=2.0)
    assert mon.in_use == 1


def test_unknown_policy_rejected(topo):
    with pytest.raises(ValueError):
        InterferenceMonitor(topo, policy="ignore")


def test_assert_clean_passes_when_clean(topo):
    mon = InterferenceMonitor(topo, policy="record")
    mon.acquired(0, 5, time=1.0)
    mon.assert_clean()


def test_record_policy_accumulates_and_keeps_running(topo):
    mon = InterferenceMonitor(topo, policy="record")
    a, b = sorted(topo.IN(0))[:2]
    mon.acquired(0, 5, time=1.0)
    mon.acquired(a, 5, time=2.0)  # conflict 1
    mon.acquired(b, 5, time=3.0)  # conflicts with 0 (and possibly a)
    assert len(mon.violations) >= 2
    assert mon.total_acquisitions == 3  # record mode never halts the run
    first = mon.violations[0]
    assert (first.time, first.channel) == (2.0, 5)
