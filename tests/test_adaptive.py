"""Unit tests for the adaptive hybrid scheme (the paper's contribution)."""

import pytest

from repro.core import AdaptiveMSS, Mode
from repro.protocols import Acquisition, AcqType, ChangeMode, Release

from conftest import drive, drive_all, make_stack


def adaptive_stack(**kw):
    kw.setdefault("alpha", 2)
    kw.setdefault("theta_low", 1.0)
    kw.setdefault("theta_high", 3.0)
    kw.setdefault("window", 30.0)
    return make_stack(AdaptiveMSS, **kw)


# ------------------------------------------------------------- local mode ----
def test_local_acquisition_zero_time_zero_messages():
    env, net, topo, stations, monitor, metrics = adaptive_stack()
    ch = drive(env, stations[0].request_channel())
    assert ch in topo.PR(0)
    assert env.now == 0.0
    assert net.total_sent == 0  # nobody is borrowing: fully silent


def test_local_release_is_silent_without_borrowers():
    env, net, topo, stations, monitor, metrics = adaptive_stack()
    ch = drive(env, stations[0].request_channel())
    stations[0].release_channel(ch)
    assert net.total_sent == 0


def test_parameter_validation():
    env, net, topo, stations, monitor, metrics = adaptive_stack()
    with pytest.raises(ValueError):
        adaptive_stack(alpha=-1)
    with pytest.raises(ValueError):
        adaptive_stack(theta_low=5, theta_high=1)
    with pytest.raises(ValueError):
        adaptive_stack(window=0)


# ------------------------------------------------------- mode transitions ----
def test_enters_borrowing_when_primaries_deplete():
    env, net, topo, stations, monitor, metrics = adaptive_stack(
        theta_low=2.0, theta_high=4.0
    )
    s = stations[0]
    assert s.mode is Mode.LOCAL
    # Consume primaries quickly: the NFC predictor sees the crash.
    for _ in range(len(topo.PR(0))):
        drive(env, s.request_channel())
    assert s.mode is not Mode.LOCAL
    assert net.sent_by_kind.get("ChangeMode", 0) == len(topo.IN(0))


def test_neighbors_track_updates_set():
    env, net, topo, stations, monitor, metrics = adaptive_stack()
    s = stations[0]
    for _ in range(len(topo.PR(0))):
        drive(env, s.request_channel())
    env.run()
    for j in topo.IN(0):
        assert 0 in stations[j].UpdateS


def test_returns_to_local_when_load_clears():
    env, net, topo, stations, monitor, metrics = adaptive_stack(
        theta_low=1.0, theta_high=3.0, window=10.0
    )
    s = stations[0]
    channels = [drive(env, s.request_channel()) for _ in range(len(topo.PR(0)))]
    env.run()
    assert s.mode is Mode.BORROW_IDLE

    def unload():
        for ch in channels:
            yield env.timeout(20)
            s.release_channel(ch)

    drive(env, unload())
    env.run()
    assert s.mode is Mode.LOCAL
    for j in topo.IN(0):
        assert 0 not in stations[j].UpdateS


def test_acquisition_notifies_only_borrowing_neighbors():
    env, net, topo, stations, monitor, metrics = adaptive_stack()
    # Put one neighbor into borrowing mode.
    b = sorted(topo.IN(0))[0]
    for _ in range(len(topo.PR(b))):
        drive(env, stations[b].request_channel())
    env.run()
    assert b in stations[0].UpdateS
    before = net.sent_by_kind.get("Acquisition", 0)
    drive(env, stations[0].request_channel())
    sent = net.sent_by_kind.get("Acquisition", 0) - before
    assert sent == 1  # only to the single borrowing neighbor


# --------------------------------------------------------------- borrowing ----
def saturate(env, topo, stations, cell):
    """Use up every primary of a cell (entering borrowing mode)."""
    got = []
    for _ in range(len(topo.PR(cell))):
        ch = drive(env, stations[cell].request_channel())
        assert ch is not None
        got.append(ch)
    env.run()
    return got


def test_borrows_neighbor_primary_via_update():
    env, net, topo, stations, monitor, metrics = adaptive_stack()
    saturate(env, topo, stations, 0)
    ch = drive(env, stations[0].request_channel())
    assert ch is not None and ch not in topo.PR(0)
    owners = [j for j in topo.IN(0) if ch in topo.PR(j)]
    assert owners  # borrowed from somebody's primary set in the region
    rep = metrics.records[-1]
    assert rep.mode == "update"
    # 2T for the permission round trip.
    assert rep.acquisition_time == pytest.approx(2.0)


def test_borrow_update_message_cost_is_3N():
    env, net, topo, stations, monitor, metrics = adaptive_stack()
    saturate(env, topo, stations, 0)
    before = net.total_sent
    ch = drive(env, stations[0].request_channel())
    env.run()
    N = len(topo.IN(0))
    # N requests + N responses (grants); release comes at call end.
    sent = net.total_sent - before
    # Some grant-triggered check_mode chatter (CHANGE_MODE/STATUS) can
    # add messages; the core round is exactly 2N.
    assert sent >= 2 * N
    stations[0].release_channel(ch)
    assert net.sent_by_kind["Release"] >= N  # borrowed: release to all IN


def test_granters_record_borrow():
    env, net, topo, stations, monitor, metrics = adaptive_stack()
    saturate(env, topo, stations, 0)
    ch = drive(env, stations[0].request_channel())
    env.run()
    for j in topo.IN(0):
        assert ch in stations[j].U[0] or ch in stations[j].granted_out[0]
        assert ch in stations[j].interfered()


def test_best_prefers_fewest_common_borrowers():
    env, net, topo, stations, monitor, metrics = adaptive_stack()
    s = stations[0]
    # Mark some neighbors as borrowing.
    borrowers = sorted(topo.IN(0))[:3]
    for b in borrowers:
        s.UpdateS.add(b)
    free = set(range(70)) - set(topo.PR(0))
    best = s._best(free)
    assert best is not None
    assert best not in borrowers
    # The chosen target minimizes |UpdateS ∩ IN_j| over eligible js.
    def common(j):
        return len(s.UpdateS & set(topo.IN(j)))
    eligible = [
        j for j in s.IN
        if j not in s.UpdateS and (topo.PR(j) & free)
    ]
    assert common(best) == min(common(j) for j in eligible)


def test_best_returns_none_when_all_neighbors_borrowing():
    env, net, topo, stations, monitor, metrics = adaptive_stack()
    s = stations[0]
    s.UpdateS = set(topo.IN(0))
    assert s._best(set(range(70))) is None


def test_search_after_alpha_failed_rounds():
    env, net, topo, stations, monitor, metrics = adaptive_stack(alpha=0)
    saturate(env, topo, stations, 0)
    # α = 0: goes straight to borrowing search.
    ch = drive(env, stations[0].request_channel())
    assert ch is not None
    assert metrics.records[-1].mode == "search"
    env.run()  # flush the ACQUISITION broadcast
    for j in topo.IN(0):
        assert ch in stations[j].U[0]


def test_search_failure_drops_and_unblocks_waiters():
    env, net, topo, stations, monitor, metrics = adaptive_stack(alpha=0)
    # Saturate the whole region of cell 0 so no channel is free.
    region = [0] + sorted(topo.IN(0))
    for cell in region:
        saturate(env, topo, stations, cell)
    # Everything both free and legal is gone now; next request searches
    # and must drop.
    before_drops = metrics.dropped
    ch = drive(env, stations[0].request_channel())
    env.run()
    assert ch is None
    assert metrics.dropped == before_drops + 1
    # Failed search still broadcast ACQUISITION(-1): nobody's waiting
    # counter leaks.
    assert all(s.waiting == 0 for s in stations.values())
    assert stations[0].mode is Mode.BORROW_IDLE
    assert stations[0].rounds == 0


def test_concurrent_interfering_borrows_distinct_channels():
    env, net, topo, stations, monitor, metrics = adaptive_stack()
    a, b = 0, sorted(topo.IN(0))[0]
    saturate(env, topo, stations, a)
    saturate(env, topo, stations, b)
    got = drive_all(
        env, [stations[a].request_channel(), stations[b].request_channel()]
    )
    granted = [g for g in got if g is not None]
    assert len(set(granted)) == len(granted)
    assert not monitor.violations


def test_search_sequentialization_two_searchers():
    env, net, topo, stations, monitor, metrics = adaptive_stack(alpha=0)
    a, b = 0, sorted(topo.IN(0))[0]
    saturate(env, topo, stations, a)
    saturate(env, topo, stations, b)
    got = drive_all(
        env, [stations[a].request_channel(), stations[b].request_channel()]
    )
    assert None not in got
    assert got[0] != got[1]
    assert not monitor.violations
    env.run()  # flush ACQUISITION broadcasts so acks land everywhere
    assert all(s.waiting == 0 for s in stations.values())


# ------------------------------------------------------ regression: races ----
def test_status_refresh_does_not_wipe_pending_grant():
    """Regression for deviation D6: a STATUS snapshot must not erase a
    grant for a borrow still in flight."""
    env, net, topo, stations, monitor, metrics = adaptive_stack()
    s = stations[0]
    grantee = sorted(topo.IN(0))[0]
    ch = min(topo.PR(0))
    # We grant `ch` to the neighbor...
    s.granted_out[grantee].add(ch)
    # ...then a STATUS response from it arrives without the channel
    # (it hasn't completed its round yet).
    from repro.protocols import Response, ResType

    s._on_Response(Response(ResType.STATUS, grantee, frozenset(), 999))
    assert ch in s.interfered()  # still protected
    got = drive(env, s.request_channel())
    assert got != ch


def test_release_clears_pending_grant():
    env, net, topo, stations, monitor, metrics = adaptive_stack()
    s = stations[0]
    grantee = sorted(topo.IN(0))[0]
    ch = min(topo.PR(0))
    s.granted_out[grantee].add(ch)
    s._on_Release(Release(grantee, ch))
    assert ch not in s.interfered()


def test_acquisition_confirms_pending_grant():
    env, net, topo, stations, monitor, metrics = adaptive_stack()
    s = stations[0]
    grantee = sorted(topo.IN(0))[0]
    ch = min(topo.PR(0))
    s.granted_out[grantee].add(ch)
    s._on_Acquisition(Acquisition(AcqType.NON_SEARCH, grantee, ch))
    assert ch not in s.granted_out[grantee]
    assert ch in s.U[grantee]
    assert ch in s.interfered()


def test_high_load_no_deadlock_no_violation():
    """Regression for the wait-for-cycle deadlock found at saturation."""
    from repro import Scenario, run_scenario

    rep = run_scenario(
        Scenario(
            scheme="adaptive",
            offered_load=12.0,
            duration=900.0,
            warmup=200.0,
            seed=7,
        )
    )
    assert rep.offered > 1000  # requests actually completed post-warmup
    assert rep.violations == 0
    assert rep.drop_rate > 0  # overloaded: some calls must drop


# ------------------------------------------------------------ change mode ----
def test_change_mode_always_answered_with_status():
    env, net, topo, stations, monitor, metrics = adaptive_stack()
    s = stations[0]
    sender = sorted(topo.IN(0))[0]
    before = net.sent_by_kind.get("Response", 0)
    s._on_ChangeMode(ChangeMode(1, sender, 1))
    s._on_ChangeMode(ChangeMode(0, sender, 2))
    assert net.sent_by_kind["Response"] - before == 2
    assert sender not in s.UpdateS


def test_stale_status_responses_counted_not_crashing():
    env, net, topo, stations, monitor, metrics = adaptive_stack()
    s = stations[0]
    from repro.protocols import Response, ResType

    s._on_Response(Response(ResType.STATUS, sorted(topo.IN(0))[0], frozenset({3}), 12345))
    assert s.stale_responses == 1
    assert 3 in s.U[sorted(topo.IN(0))[0]]


def test_hysteresis_reduces_flapping():
    # With θ_l == θ_h the mode oscillates more than with a gap.
    def run(theta_l, theta_h):
        env, net, topo, stations, monitor, metrics = adaptive_stack(
            theta_low=theta_l, theta_high=theta_h, window=10.0
        )
        s = stations[0]

        def churn():
            for _ in range(12):
                chans = []
                for _ in range(len(topo.PR(0))):
                    ch = yield from s.request_channel()
                    if ch is not None:
                        chans.append(ch)
                yield env.timeout(15)
                for ch in chans:
                    s.release_channel(ch)
                yield env.timeout(15)

        drive(env, churn())
        env.run()
        return s.mode_changes

    assert run(2.0, 2.0) >= run(1.0, 4.0)


def test_free_primary_count_accounts_interference():
    env, net, topo, stations, monitor, metrics = adaptive_stack()
    s = stations[0]
    assert s.free_primary_count() == len(topo.PR(0))
    drive(env, s.request_channel())
    assert s.free_primary_count() == len(topo.PR(0)) - 1
    neighbor = sorted(topo.IN(0))[0]
    borrowed = sorted(topo.PR(0))[-1]
    s.U[neighbor].add(borrowed)  # neighbor borrowed one of our primaries
    assert s.free_primary_count() == len(topo.PR(0)) - 2
