"""Tests for the a-priori occupancy model (truncated Poisson, ξ)."""

import math

import pytest

from repro.analysis.occupancy import predict_xi, truncated_poisson_pmf
from repro.analysis import erlang_b


def test_pmf_sums_to_one():
    for a, c in [(0.5, 3), (5.0, 10), (50.0, 40)]:
        pmf = truncated_poisson_pmf(a, c)
        assert sum(pmf.values()) == pytest.approx(1.0)
        assert set(pmf) == set(range(c + 1))


def test_pmf_top_state_equals_erlang_b():
    for a, c in [(1.0, 1), (5.0, 10), (12.0, 10)]:
        pmf = truncated_poisson_pmf(a, c)
        assert pmf[c] == pytest.approx(erlang_b(a, c), rel=1e-9)


def test_pmf_zero_load_concentrates_at_zero():
    pmf = truncated_poisson_pmf(0.0, 5)
    assert pmf[0] == 1.0
    assert all(pmf[k] == 0 for k in range(1, 6))


def test_pmf_matches_direct_formula():
    a, c = 4.2, 7
    pmf = truncated_poisson_pmf(a, c)
    denom = sum(a**j / math.factorial(j) for j in range(c + 1))
    for k in range(c + 1):
        assert pmf[k] == pytest.approx((a**k / math.factorial(k)) / denom)


def test_pmf_validation():
    with pytest.raises(ValueError):
        truncated_poisson_pmf(-1, 5)
    with pytest.raises(ValueError):
        truncated_poisson_pmf(1, -5)


def test_predict_xi_fractions_form_distribution():
    for load in (0.5, 3.0, 7.0, 12.0):
        p = predict_xi(load)
        total = p.xi_local + p.xi_update + p.xi_search
        assert total == pytest.approx(1.0)
        assert 0 <= p.xi_local <= 1
        assert 0 <= p.xi_update <= 1
        assert 0 <= p.xi_search <= 1


def test_predict_xi_monotone_trends():
    loads = [1.0, 3.0, 5.0, 7.0, 9.0, 12.0]
    preds = [predict_xi(a) for a in loads]
    locals_ = [p.xi_local for p in preds]
    assert locals_ == sorted(locals_, reverse=True)
    searches = [p.xi_search for p in preds]
    assert searches == sorted(searches)


def test_predict_xi_matches_simulation_at_low_and_moderate_load():
    """The model's strong regime: borrowing is rare and search rarer.

    At high load the model underestimates ξ₃ (it ignores α-exhaustion
    under contention — documented), so the sharp check stays below the
    knee of the curve.
    """
    from repro import Scenario, run_scenario

    for load in (3.0, 5.0):
        predicted = predict_xi(load)
        rep = run_scenario(
            Scenario(
                scheme="adaptive",
                offered_load=load,
                duration=1500.0,
                warmup=300.0,
                seed=11,
            )
        )
        assert rep.xi["local"] == pytest.approx(predicted.xi_local, abs=0.02)
        assert rep.xi["search"] <= 0.01


def test_predict_xi_validation_and_dict():
    with pytest.raises(ValueError):
        predict_xi(-1)
    d = predict_xi(5.0).as_dict()
    assert set(d) == {"local", "update", "search"}
