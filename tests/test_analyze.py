"""Tests for the whole-program analyzer (``tools.analyze``).

Every rule/pass gets a firing fixture module and a silent one; the
baseline workflow, the CLI artifacts, and the real tree's cleanliness
are covered at the end.  Fixture trees mimic the ``src/repro`` layout
because both the flow and shard passes are scope-sensitive.
"""

import json
import pathlib
import sys
import textwrap

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT))

from tools.analyze import (  # noqa: E402
    DETERMINISM_RULES,
    baseline_key,
    build_model,
    load_baseline,
    partition,
    render_dot,
    run_flow_pass,
    run_shard_pass,
    run_snapshot_pass,
    write_baseline,
)
from tools.analyze.__main__ import main as analyze_main  # noqa: E402
from tools.check.engine import check_paths, iter_python_files  # noqa: E402


def write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return str(path)


def codes(findings):
    return [f.code for f in findings]


#: A minimal protocol tree: base class, messages, one scheme.
_BASE = """
    class MSS:
        def _send(self, dst, payload):
            pass

        def _broadcast(self, payload, dsts=None):
            pass
"""

_MESSAGES = """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class Ping:
        sender: int
        channel: int
        note: str = ""

        def to_dict(self):
            return {"sender": self.sender}

    @dataclass(frozen=True)
    class Pong:
        sender: int
"""


def flow_findings(tmp_path, scheme_source):
    write(tmp_path, "src/repro/protocols/base.py", _BASE)
    write(tmp_path, "src/repro/protocols/messages.py", _MESSAGES)
    write(tmp_path, "src/repro/protocols/scheme.py", scheme_source)
    files = list(iter_python_files([str(tmp_path / "src")]))
    return run_flow_pass(build_model(files))


# ------------------------------------------------------------------ ANA101 ----
def test_ana101_fires_on_sent_but_unhandled(tmp_path):
    findings = flow_findings(
        tmp_path,
        """
        from .base import MSS
        from .messages import Ping

        class LonelyMSS(MSS):
            def poke(self):
                self._send(1, Ping(0, 5))
        """,
    )
    assert codes(findings) == ["ANA101"]
    assert "_on_Ping" in findings[0].message


def test_ana101_silent_when_handler_exists(tmp_path):
    findings = flow_findings(
        tmp_path,
        """
        from .base import MSS
        from .messages import Ping

        class PairedMSS(MSS):
            def poke(self):
                self._send(1, Ping(0, 5))

            def _on_Ping(self, msg):
                return msg.channel
        """,
    )
    assert findings == []


# ------------------------------------------------------------------ ANA102 ----
def test_ana102_fires_on_handler_never_sent(tmp_path):
    findings = flow_findings(
        tmp_path,
        """
        from .base import MSS

        class DeafMSS(MSS):
            def _on_Pong(self, msg):
                return msg.sender
        """,
    )
    assert codes(findings) == ["ANA102"]


def test_ana102_silent_when_ancestor_sends(tmp_path):
    findings = flow_findings(
        tmp_path,
        """
        from .base import MSS
        from .messages import Pong

        class ParentMSS(MSS):
            def reply(self):
                self._send(0, Pong(1))

            def _on_Pong(self, msg):
                pass

        class ChildMSS(ParentMSS):
            def _on_Pong(self, msg):
                return msg.sender
        """,
    )
    assert findings == []


# ------------------------------------------------------------------ ANA103 ----
def test_ana103_fires_on_misfielded_access(tmp_path):
    findings = flow_findings(
        tmp_path,
        """
        from .base import MSS
        from .messages import Ping

        class TypoMSS(MSS):
            def poke(self):
                self._send(1, Ping(0, 5))

            def _on_Ping(self, msg):
                return msg.chanel  # typo'd field
        """,
    )
    assert codes(findings) == ["ANA103"]
    assert "chanel" in findings[0].message


def test_ana103_tolerates_fields_methods_and_annotated_helpers(tmp_path):
    findings = flow_findings(
        tmp_path,
        """
        from .base import MSS
        from .messages import Ping

        class FineMSS(MSS):
            def poke(self):
                self._send(1, Ping(0, 5))

            def _on_Ping(self, msg):
                self._log(msg)
                return msg.channel

            def _log(self, msg: Ping):
                return msg.to_dict(), msg.note
        """,
    )
    assert findings == []


def test_ana103_fires_inside_annotated_helper(tmp_path):
    findings = flow_findings(
        tmp_path,
        """
        from .base import MSS
        from .messages import Ping

        class HelperMSS(MSS):
            def poke(self):
                self._send(1, Ping(0, 5))

            def _on_Ping(self, msg):
                self._log(msg)

            def _log(self, msg: Ping):
                return msg.payload  # Ping has no payload
        """,
    )
    assert codes(findings) == ["ANA103"]


# ------------------------------------------------------------------ ANA104 ----
def test_ana104_fires_on_missing_required_field(tmp_path):
    findings = flow_findings(
        tmp_path,
        """
        from .base import MSS
        from .messages import Ping

        class ShortMSS(MSS):
            def poke(self):
                self._send(1, Ping(0))

            def _on_Ping(self, msg):
                pass
        """,
    )
    assert codes(findings) == ["ANA104"]
    assert "channel" in findings[0].message


def test_ana104_fires_on_unknown_keyword_and_duplicate(tmp_path):
    findings = flow_findings(
        tmp_path,
        """
        from .base import MSS
        from .messages import Ping

        class KwMSS(MSS):
            def poke(self):
                self._send(1, Ping(0, 5, color="red"))
                self._send(1, Ping(0, 5, sender=2))

            def _on_Ping(self, msg):
                pass
        """,
    )
    assert codes(findings) == ["ANA104", "ANA104"]


def test_ana104_silent_on_star_args_and_defaults(tmp_path):
    findings = flow_findings(
        tmp_path,
        """
        from .base import MSS
        from .messages import Ping

        class StarMSS(MSS):
            def poke(self, args, kw):
                self._send(1, Ping(*args))
                self._send(1, Ping(0, 5, note="hi"))
                self._send(1, Ping(channel=5, sender=0))

            def _on_Ping(self, msg):
                pass
        """,
    )
    assert findings == []


# ------------------------------------------------------------------ ANA201 ----
def shard_findings(tmp_path, relpath, source):
    path = write(tmp_path, relpath, source)
    findings, report = run_shard_pass([path])
    return findings, report


def test_ana201_fires_on_cross_cell_access(tmp_path):
    findings, report = shard_findings(
        tmp_path,
        "src/repro/protocols/leaky.py",
        """
        class LeakyMSS:
            def peek(self, j):
                return self.network.node(j).use  # cross-cell state leak

            def poke(self, j):
                self.network._nodes[j].use.add(1)
        """,
    )
    assert codes(findings) == ["ANA201", "ANA201"]
    assert report["verdict"] == "unsafe"


def test_ana201_silent_in_allowlisted_files(tmp_path):
    findings, report = shard_findings(
        tmp_path,
        "src/repro/sim/network.py",
        """
        class Network:
            def _deliver(self, msg):
                self._nodes[msg.dst].on_message(msg)
        """,
    )
    assert findings == []
    assert report["files_allowlisted"]
    assert report["verdict"] == "safe"


# ------------------------------------------------------------------ ANA202 ----
def test_ana202_fires_on_mutable_class_attribute(tmp_path):
    findings, _ = shard_findings(
        tmp_path,
        "src/repro/protocols/shared.py",
        """
        class SharedMSS:
            registry = {}
            peers: list = []
        """,
    )
    assert codes(findings) == ["ANA202", "ANA202"]


def test_ana202_silent_on_instance_state_and_immutables(tmp_path):
    findings, _ = shard_findings(
        tmp_path,
        "src/repro/protocols/clean.py",
        """
        class CleanMSS:
            MODES = ("local", "borrow")
            LIMIT = 3

            def __init__(self):
                self.registry = {}
        """,
    )
    assert findings == []


# ------------------------------------------------------------------ ANA203 ----
def test_ana203_fires_on_mutable_module_global(tmp_path):
    findings, _ = shard_findings(
        tmp_path,
        "src/repro/core/globals.py",
        """
        ACTIVE_CELLS = set()
        __all__ = ["ACTIVE_CELLS"]
        """,
    )
    assert codes(findings) == ["ANA203"]


def test_ana203_silent_outside_sim_scope(tmp_path):
    findings, _ = shard_findings(
        tmp_path,
        "src/repro/harness/registry.py",
        "CACHE = {}\n",
    )
    assert findings == []


# ------------------------------------------------------------------ ANA204 ----
def test_ana204_fires_on_fluid_access_in_handler(tmp_path):
    findings, _ = shard_findings(
        tmp_path,
        "src/repro/protocols/leaky.py",
        """
        class LeakyMSS:
            def _on_request(self, msg):
                if self.fastlane is not None:
                    self.fastlane.notify_message(self.cell)

            def _handle_release(self, msg):
                lane = self.fastlane
                return lane
        """,
    )
    # One finding per ``self.fastlane`` access: two in ``_on_request``
    # (the guard and the call), one in ``_handle_release``.
    assert codes(findings) == ["ANA204", "ANA204", "ANA204"]
    assert "LeakyMSS._on_request" in findings[0].message
    assert "LeakyMSS._handle_release" in findings[-1].message


def test_ana204_silent_on_sanctioned_sites(tmp_path):
    # on_message / _enter_borrowing are the sanctioned notify sites
    # (neither matches the handler prefixes); other-object .fastlane
    # and handler-local names don't fire either.
    findings, _ = shard_findings(
        tmp_path,
        "src/repro/protocols/clean_lane.py",
        """
        class CleanMSS:
            def on_message(self, msg):
                if self.fastlane is not None:
                    self.fastlane.notify_message(self.cell)

            def _enter_borrowing(self):
                if self.fastlane is not None:
                    self.fastlane.notify_borrow(self.cell)

            def _on_request(self, msg):
                return msg.fastlane
        """,
    )
    assert findings == []


# ------------------------------------------------------------------ SIM006 ----
def det_findings(tmp_path, source, relpath="src/repro/protocols/x.py"):
    path = write(tmp_path, relpath, source)
    return check_paths([path], rules=DETERMINISM_RULES)


def test_sim006_fires_on_dict_iteration_fanout(tmp_path):
    findings = det_findings(
        tmp_path,
        """
        class X:
            def fan_out(self, verdicts):
                for j, verdict in verdicts.items():
                    self._send(j, verdict)
        """,
    )
    assert codes(findings) == ["SIM006"]


def test_sim006_silent_on_sorted_or_effect_free_iteration(tmp_path):
    findings = det_findings(
        tmp_path,
        """
        class X:
            def fan_out(self, verdicts):
                for j in sorted(verdicts):
                    self._send(j, verdicts[j])

            def tally(self, verdicts):
                total = 0
                for j, verdict in verdicts.items():
                    total += verdict
                return total
        """,
    )
    assert findings == []


# ------------------------------------------------------------------ SIM007 ----
def test_sim007_fires_on_identity_ordering(tmp_path):
    findings = det_findings(
        tmp_path,
        """
        def pick(items):
            items.sort(key=id)
            return min(items, key=lambda x: hash(x))
        """,
    )
    assert codes(findings) == ["SIM007", "SIM007"]


def test_sim007_silent_on_domain_keys(tmp_path):
    findings = det_findings(
        tmp_path,
        """
        def pick(items):
            return sorted(items, key=lambda x: x.cell)
        """,
    )
    assert findings == []


# ------------------------------------------------------------------ SIM008 ----
def test_sim008_fires_on_popitem(tmp_path):
    findings = det_findings(tmp_path, "def f(d):\n    return d.popitem()\n")
    assert codes(findings) == ["SIM008"]


def test_sim008_silent_on_explicit_pop(tmp_path):
    findings = det_findings(tmp_path, "def f(d):\n    return d.pop(min(d))\n")
    assert findings == []


# ------------------------------------------------------------------ SIM009 ----
def test_sim009_fires_on_env_reads(tmp_path):
    findings = det_findings(
        tmp_path,
        """
        import os

        def f():
            if os.getenv("FAST"):
                return 1
            return os.environ["MODE"]
        """,
    )
    assert codes(findings) == ["SIM009", "SIM009"]


def test_sim009_silent_outside_sim_scope(tmp_path):
    findings = det_findings(
        tmp_path,
        "import os\n\ndef f():\n    return os.getenv('FAST')\n",
        relpath="src/repro/harness/runner.py",
    )
    assert findings == []


# ---------------------------------------------------------------- baseline ----
def test_baseline_roundtrip_and_partition(tmp_path):
    findings = det_findings(
        tmp_path,
        """
        class X:
            def fan_out(self, verdicts):
                for j in verdicts.keys():
                    self._send(j, 1)
        """,
    )
    assert len(findings) == 1
    baseline_file = tmp_path / "baseline.json"
    write_baseline(findings, str(baseline_file))
    baseline = load_baseline(str(baseline_file))
    assert baseline == {baseline_key(findings[0])}
    new, accepted, stale = partition(findings, baseline)
    assert (new, accepted, stale) == ([], findings, [])
    # An empty run leaves the baseline entry stale.
    new, accepted, stale = partition([], baseline)
    assert new == [] and accepted == [] and stale == sorted(baseline)


def test_baseline_keys_are_line_insensitive(tmp_path):
    fired = det_findings(
        tmp_path,
        """
        class X:
            def fan_out(self, verdicts):
                for j in verdicts.keys():
                    self._send(j, 1)
        """,
    )
    shifted = det_findings(
        tmp_path,
        """
        # a comment pushing everything down


        class X:
            def fan_out(self, verdicts):
                for j in verdicts.keys():
                    self._send(j, 1)
        """,
        relpath="src/repro/protocols/x.py",
    )
    assert fired[0].line != shifted[0].line
    assert baseline_key(fired[0]) == baseline_key(shifted[0])


# --------------------------------------------------------------------- CLI ----
def test_cli_end_to_end(tmp_path, capsys):
    write(tmp_path, "src/repro/protocols/base.py", _BASE)
    write(tmp_path, "src/repro/protocols/messages.py", _MESSAGES)
    write(
        tmp_path,
        "src/repro/protocols/scheme.py",
        """
        from .base import MSS
        from .messages import Ping

        class LonelyMSS(MSS):
            def poke(self):
                self._send(1, Ping(0, 5))
        """,
    )
    tree = str(tmp_path / "src")
    baseline = str(tmp_path / "baseline.json")
    dot = tmp_path / "flow.dot"
    report = tmp_path / "shard.json"

    # Unbaselined finding: exit 1, JSON output carries the shared schema.
    rc = analyze_main(
        [tree, "--baseline", baseline, "--format", "json",
         "--dot", str(dot), "--shard-report", str(report)]
    )
    assert rc == 1
    out = json.loads(capsys.readouterr().out)
    assert [f["code"] for f in out["new"]] == ["ANA101"]
    assert out["new"][0]["url"] == "docs/CHECKS.md#ana101"
    assert "LonelyMSS" in dot.read_text()
    assert json.loads(report.read_text())["verdict"] == "safe"

    # Accept it, then the same run is clean.
    assert analyze_main([tree, "--baseline", baseline, "--write-baseline"]) == 0
    capsys.readouterr()
    assert analyze_main([tree, "--baseline", baseline]) == 0

    # Missing path: exit 2.
    assert analyze_main([str(tmp_path / "nope")]) == 2


def test_list_passes(capsys):
    assert analyze_main(["--list-passes"]) == 0
    out = capsys.readouterr().out
    for token in ("flow", "shard", "snapshot", "determinism", "SIM006", "SIM009"):
        assert token in out


# ------------------------------------------------------------------ ANA3xx ----
def snapshot_findings(tmp_path, relpath, source):
    path = write(tmp_path, relpath, source)
    findings, report = run_snapshot_pass([path])
    return findings, report


def test_ana301_fires_on_unregistered_randomness(tmp_path):
    findings, report = snapshot_findings(
        tmp_path,
        "src/repro/faults/sloppy.py",
        """
        import random
        import numpy as np
        from numpy.random import default_rng

        def jitter():
            return random.random() + np.random.rand()

        def fresh():
            return default_rng(7).random()
        """,
    )
    assert codes(findings) == ["ANA301", "ANA301", "ANA301"]
    assert report["verdict"] == "unsafe"


def test_ana301_fires_on_from_random_import(tmp_path):
    findings, _ = snapshot_findings(
        tmp_path,
        "src/repro/traffic/sloppy.py",
        """
        from random import expovariate
        """,
    )
    assert codes(findings) == ["ANA301"]


def test_ana301_silent_in_allowlisted_files(tmp_path):
    # The registry itself and the adaptive tie-breaker are the
    # sanctioned generator factories (captured by the state codec).
    for relpath in ("src/repro/sim/rng.py", "src/repro/core/adaptive.py"):
        findings, report = snapshot_findings(
            tmp_path,
            relpath,
            """
            import numpy as np

            def make(seed):
                return np.random.default_rng(seed)
            """,
        )
        assert findings == []
        assert report["verdict"] == "safe"


def test_ana302_and_ana303_fire_outside_shard_scope(tmp_path):
    findings, report = snapshot_findings(
        tmp_path,
        "src/repro/metrics/sloppy.py",
        """
        TALLIES = {}

        class Collector:
            shared = []
        """,
    )
    assert codes(findings) == ["ANA302", "ANA303"]
    assert report["verdict"] == "unsafe"


def test_ana302_ana303_defer_to_shard_pass_inside_its_scope(tmp_path):
    # protocols/ is ANA202/ANA203 territory; the snapshot pass must not
    # double-report the same defect under a second code.
    findings, _ = snapshot_findings(
        tmp_path,
        "src/repro/protocols/sloppy.py",
        """
        TALLIES = {}

        class Collector:
            shared = []
        """,
    )
    assert findings == []


def test_snapshot_pass_ignores_out_of_scope_and_private_names(tmp_path):
    findings, report = snapshot_findings(
        tmp_path,
        "src/repro/obs/tidy.py",
        """
        _PRIVATE_CACHE = {}
        FROZEN = frozenset({1, 2})
        """,
    )
    assert findings == []
    out_of_scope = write(
        tmp_path, "tools/bench_helper.py", "import random\n"
    )
    findings, report = run_snapshot_pass([out_of_scope])
    assert findings == []
    assert report["files_scanned"] == 0


# ------------------------------------------------------------- real tree ----
def test_real_tree_has_no_unbaselined_findings(capsys):
    assert analyze_main(["src/repro"]) == 0


def test_real_tree_dot_covers_all_schemes(tmp_path):
    files = list(iter_python_files(["src/repro"]))
    dot = render_dot(build_model(files))
    for scheme in (
        "AdaptiveMSS",
        "AdvancedUpdateMSS",
        "BasicSearchMSS",
        "BasicUpdateMSS",
        "FixedMSS",
        "PrakashMSS",
    ):
        assert f'"{scheme}"' in dot
