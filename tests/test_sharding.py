"""Sharded space-parallel execution: partitioner, parity, oracles.

The headline contract under test: ``shards=N`` is **row-identical** to
``shards=1`` — same report, for every scheme, under a hostile fault
plan, with the full sanitizer suite raising (the session-wide
``conftest`` policy).  The conservative window protocol earns that by
construction; these tests check the construction.
"""

import dataclasses

import pytest

from repro.cellular import CellularTopology
from repro.faults import CrashWindow, FaultPlan, LinkPartition
from repro.harness import (
    Scenario,
    build_simulation,
    merge_shard_results,
    run_cells,
    run_scenario,
    run_sharded,
    run_sharded_results,
)
from repro.harness.sharded import (
    _ShardRun,
    _WindowClock,
    _cross_shard_violations,
    _windows,
    validate_shardable,
)
from repro.sim import Environment, plan_shards

SCHEMES = [
    "fixed",
    "basic_search",
    "basic_update",
    "advanced_update",
    "adaptive",
    "prakash",
]


def small(scheme="adaptive", **overrides):
    defaults = dict(
        scheme=scheme,
        offered_load=5.0,
        duration=220.0,
        warmup=40.0,
        seed=11,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


def rows(report):
    """Every Report field that must be shard-invariant."""
    data = dataclasses.asdict(report)
    data.pop("scenario")
    data.pop("obs")
    data.pop("metrics")
    return data


def topo7():
    return CellularTopology(7, 7, num_channels=70, cluster_size=7, wrap=True)


# -- partitioner -----------------------------------------------------------


def test_plan_shards_partitions_rows_contiguously():
    plan = plan_shards(topo7(), 3)
    # 7 rows over 3 shards: bands of 3, 2, 2 rows (row-major ids).
    assert [len(band) for band in plan.cells] == [21, 14, 14]
    flat = [c for band in plan.cells for c in band]
    assert flat == list(range(49))
    for shard, band in enumerate(plan.cells):
        assert band == tuple(range(band[0], band[-1] + 1))
        for cell in band:
            assert plan.owner[cell] == shard
            assert plan.shard_of(cell) == shard


def test_plan_shards_frontier_is_cross_shard_interference():
    topo = topo7()
    plan = plan_shards(topo, 2)
    for shard in range(2):
        frontier = set(plan.frontier_of(shard))
        for cell in plan.cells_of(shard):
            crosses = any(
                plan.owner[peer] != shard for peer in topo.IN(cell)
            )
            assert (cell in frontier) == crosses


def test_plan_shards_single_shard_has_no_frontier():
    plan = plan_shards(topo7(), 1)
    assert plan.cells == (tuple(range(49)),)
    assert plan.frontier_of(0) == ()


def test_plan_shards_rejects_bad_counts():
    with pytest.raises(ValueError):
        plan_shards(topo7(), 0)
    with pytest.raises(ValueError):
        plan_shards(topo7(), 8)  # more shards than rows


def test_validate_shardable_gates():
    with pytest.raises(ValueError, match="deterministic"):
        validate_shardable(
            small(latency_model="uniform", latency_spread=1.0), 2
        )
    with pytest.raises(ValueError, match="mean_dwell"):
        validate_shardable(small(mean_dwell=600.0), 2)
    # A fluid cell is off the event heap: its kernel has no lookahead
    # into the analytic interval, so the conservative window protocol
    # cannot order it.  Rejected up front, not degraded.
    with pytest.raises(ValueError, match="fastlane"):
        validate_shardable(small(fastlane=True), 2)
    validate_shardable(small(), 2)  # and the happy path is silent


# -- window schedule -------------------------------------------------------


def test_window_boundaries_are_multiplicative_and_capped():
    assert list(_windows(5.0, 2.0)) == [2.0, 4.0, 5.0]
    assert list(_windows(3.0, 10.0)) == [3.0]
    # k * T, not an accumulating sum: no float drift over many windows.
    boundaries = list(_windows(400.0, 0.1))
    assert boundaries[-1] == 400.0
    assert boundaries[99] == 100 * 0.1


def test_window_clock_adaptive_jumps_stay_on_grid():
    clock = _WindowClock(10.0, 2.0, "adaptive")
    # Earliest pending instant inside the first window: no jump.
    assert clock.next(0.5) == 2.0
    # Earliest pending instant at 7.0: nothing can deliver before
    # 7.0 + T = 9.0, so the largest safe grid boundary is 8.0.
    assert clock.next(7.0) == 8.0
    # Fully quiescent: one final window straight to the horizon.
    assert clock.next(float("inf")) == 10.0
    assert clock.next(float("inf")) is None
    assert clock.windows == 3


def test_window_clock_adaptive_boundary_is_conservative():
    """Every adaptive boundary b satisfies b <= low + T (the lookahead
    safety bound) and lies on the fixed-mode grid."""
    T = 0.1
    grid = set(_windows(40.0, T))
    for low in (0.0, 0.05, 0.3, 0.30000000000000004, 1.0, 7.77, 39.9):
        clock = _WindowClock(40.0, T, "adaptive")
        boundary = clock.next(low)
        assert boundary <= low + T + 1e-9
        assert boundary in grid


def test_environment_timeout_at_schedules_absolute_time():
    env = Environment()
    seen = []
    event = env.timeout_at(2.5, "x")
    event.callbacks.append(lambda e: seen.append((env.now, e._value)))
    env.run(until=5.0)
    assert seen == [(2.5, "x")]
    with pytest.raises(ValueError):
        env.timeout_at(env.now - 1.0)


# -- parity ----------------------------------------------------------------


@pytest.mark.parametrize("scheme", SCHEMES)
def test_sharded_rows_identical_per_scheme(scheme):
    scenario = small(scheme)
    classic = run_scenario(scenario)
    sharded = run_sharded(scenario, 2, mode="inline")
    assert rows(sharded) == rows(classic)


def test_sharded_rows_identical_at_many_shard_counts():
    scenario = small("adaptive")
    classic = rows(run_scenario(scenario))
    for shards in (3, 7):
        assert rows(run_sharded(scenario, shards, mode="inline")) == classic


def test_sharded_rows_identical_under_hostile_faults():
    plan = FaultPlan(
        drop_prob=0.05,
        dup_prob=0.03,
        delay_prob=0.05,
        extra_delay=2.0,
        crashes=(
            CrashWindow(cell=10, at=90.0, downtime=30.0),
            CrashWindow(cell=24, at=140.0, downtime=25.0),
        ),
        partitions=(LinkPartition(a=3, b=4, start=80.0, end=130.0),),
    )
    for scheme in ("adaptive", "basic_update"):
        scenario = small(scheme, faults=plan, seed=7)
        classic = run_scenario(scenario)
        sharded = run_sharded(scenario, 3, mode="inline")
        assert rows(sharded) == rows(classic)
        # The plan actually bit: this is not vacuous parity.
        assert sum(classic.faults_injected.values()) > 0


def test_sharded_process_mode_matches_inline():
    scenario = small("adaptive")
    classic = rows(run_scenario(scenario))
    assert rows(run_sharded(scenario, 2, mode="process")) == classic


def test_adaptive_windows_row_identical_to_fixed():
    """The null-message optimization changes only the barrier count:
    merged reports are equal field for field, and on a lightly loaded
    grid the adaptive clock actually collapses windows."""
    scenario = small("adaptive", offered_load=0.25, duration=200.0,
                     warmup=50.0)
    plan, fixed = run_sharded_results(scenario, 2, mode="inline")
    plan_a, adaptive = run_sharded_results(
        scenario, 2, mode="inline", window_mode="adaptive"
    )
    assert rows(merge_shard_results(scenario, plan_a, adaptive)) == rows(
        merge_shard_results(scenario, plan, fixed)
    )
    assert max(r.windows for r in adaptive) < max(r.windows for r in fixed)


def test_adaptive_windows_process_mode_matches_classic():
    scenario = small("adaptive")
    assert rows(
        run_sharded(scenario, 2, mode="process", window_mode="adaptive")
    ) == rows(run_scenario(scenario))


def test_unknown_window_mode_rejected():
    with pytest.raises(ValueError, match="window mode"):
        run_sharded(small(), 2, window_mode="widest")


def test_run_scenario_shards_kwarg_routes_to_sharded():
    scenario = small("adaptive")
    assert rows(run_scenario(scenario, shards=2)) == rows(
        run_scenario(scenario)
    )


def test_run_cells_composes_with_shards():
    scenarios = [small("adaptive"), small("fixed")]
    plain = run_cells(scenarios, cache=False)
    sharded = run_cells(scenarios, cache=False, shards=2)
    assert [rows(a) for a in plain] == [rows(b) for b in sharded]
    with pytest.raises(ValueError):
        run_cells(scenarios, cache=False, shards=0)


def test_windowing_adds_only_stop_events():
    """The windowed kernel does the same simulation work as classic.

    At shards=1 the event count matches the single ``env.run(until)``
    kernel *exactly* once window-stop events are discounted (classic
    schedules one stop, the windowed loop schedules one per window).
    Extra shards may only add constant per-shard bookkeeping (their
    own warmup process), never per-event overhead.
    """
    scenario = small("basic_update")
    sim = build_simulation(scenario)
    sim.run()
    classic = sim.env._eid - len(sim.env._queue) - 1
    windows = len(list(_windows(scenario.duration, scenario.latency_T)))
    _, single = run_sharded_results(scenario, 1, mode="inline")
    base = sum(r.processed_events for r in single) - windows
    assert base == classic
    _, split = run_sharded_results(scenario, 2, mode="inline")
    total = sum(r.processed_events for r in split) - 2 * windows
    assert 0 <= total - base <= 8


# -- correctness oracles ---------------------------------------------------


def test_vector_clock_stamps_cross_the_boundary():
    """Cross-shard envelopes carry the sender's vector-clock stamp, the
    receiving checker adopts it, and the oracle stays silent on a
    clean FIFO run (any violation would raise under the conftest
    policy)."""
    scenario = small("basic_update")
    topo = topo7()
    plan = plan_shards(topo, 2)
    runs = [_ShardRun(scenario, plan, s) for s in range(2)]
    pending = [[], []]
    stamped_crossings = 0
    for until in _windows(scenario.duration, scenario.latency_T):
        drains = []
        for run, records in zip(runs, pending):
            run.inject(records)
            run.advance(until)
            drains.append(run.drain())
        stamped_crossings += sum(
            1 for drained in drains for r in drained if r.clock is not None
        )
        pending = [
            sorted(
                (r for drained in drains for r in drained
                 if plan.owner[r.dst] == shard),
                key=lambda r: r[:5],
            )
            for shard in range(2)
        ]
    assert stamped_crossings > 0
    for run in runs:
        checker = run.sim.sanitizers.vector_clock
        assert checker.messages_stamped > 0
        assert checker.violations == []
        assert run.port.exported > 0


def test_cross_shard_violation_replay_counts_boundary_conflicts():
    topo = topo7()
    plan = plan_shards(topo, 2)
    # Two interfering cells across the boundary: one from shard 0's
    # frontier and one of its IN-peers owned by shard 1.
    a = plan.frontier_of(0)[0]
    b = next(p for p in sorted(topo.IN(a)) if plan.owner[p] == 1)
    overlap = [(1.0, 1, a, 5), (2.0, 1, b, 5), (3.0, 0, a, 5), (4.0, 0, b, 5)]
    assert _cross_shard_violations(topo, plan, overlap) == 1
    # Release-before-acquire at the same instant is not a conflict.
    handoff = [(1.0, 1, a, 5), (2.0, 0, a, 5), (2.0, 1, b, 5)]
    assert _cross_shard_violations(topo, plan, handoff) == 0
    # Same-shard overlaps are the live monitors' job, not the replay's.
    c, d = plan.cells_of(0)[0], plan.cells_of(0)[1]
    local = [(1.0, 1, c, 5), (2.0, 1, d, 5)]
    assert _cross_shard_violations(topo, plan, local) == 0
