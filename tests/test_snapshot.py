"""Checkpoint/restore: determinism oracles, format, cache, analyzer.

The headline contracts under test (see DESIGN.md §9):

* **Fork-at-t0 row-identity** — a cold (t0) snapshot forked to any
  seed reports row-identically to a cold run of that seed, for every
  scheme, under a hostile fault plan, and under sharded execution.
* **Exact mid-run continuation** — for schemes that reach global
  quiescence mid-run (fixed, adaptive, advanced_update, prakash at
  these loads), checkpointing at t and resuming is row-identical to
  never having snapshotted; schemes that cannot quiesce fail with an
  honest :class:`SnapshotError` instead of a silently-wrong snapshot.
* **Byte stability** — re-checkpointing a restored simulation yields
  the original snapshot's exact bytes, so the content hash is a true
  identity (and safe to use in result-cache variant keys).
* **Cache hygiene** — warm-forked rows and cold rows for the same
  scenario can never alias (the cache-poisoning regression).

Every simulation here runs with the session-wide sanitizer policy
("raise"): a restore that corrupts protocol state trips an invariant
before any row comparison gets a chance to.
"""

import dataclasses
import json

import pytest

from repro.faults import CrashWindow, FaultPlan, LinkPartition
from repro.harness import ResultCache, Scenario, run_replications, run_scenario
from repro.snap import (
    SNAPSHOT_FORMAT_VERSION,
    Snapshot,
    SnapshotError,
    checkpoint,
    fork_replications,
    load_snapshot,
    restore,
    run_from_snapshot,
    run_to_checkpoint,
    save_snapshot,
)

SCHEMES = [
    "fixed",
    "basic_search",
    "basic_update",
    "advanced_update",
    "adaptive",
    "prakash",
]

#: Schemes whose acquisitions resolve without suspending at these
#: loads, so the drain in run_to_checkpoint finds a globally quiescent
#: instant almost immediately.  basic_search/basic_update run a full
#: message round per acquisition and (at load 5 on 7x7) essentially
#: never quiesce — they are the honest-failure cases instead.
QUIESCENT_SCHEMES = ["fixed", "adaptive", "advanced_update", "prakash"]


def small(scheme="adaptive", **overrides):
    defaults = dict(
        scheme=scheme,
        offered_load=5.0,
        duration=160.0,
        warmup=40.0,
        seed=11,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


def hostile_faults():
    return FaultPlan(
        drop_prob=0.05,
        dup_prob=0.03,
        delay_prob=0.05,
        extra_delay=2.0,
        crashes=(
            CrashWindow(cell=10, at=90.0, downtime=30.0),
            CrashWindow(cell=24, at=140.0, downtime=25.0),
        ),
        partitions=(LinkPartition(a=3, b=4, start=80.0, end=130.0),),
    )


def rows(report):
    """Every Report field that must be snapshot-invariant."""
    data = dataclasses.asdict(report)
    data.pop("scenario")
    data.pop("obs")
    data.pop("metrics")
    return data


# -- fork at t0: every scheme ----------------------------------------------


@pytest.mark.parametrize("scheme", SCHEMES)
def test_t0_fork_row_identical_to_cold_run(scheme):
    scenario = small(scheme)
    snap = run_to_checkpoint(scenario, 0.0)
    assert not snap.started and snap.time == 0.0
    fork_seed = scenario.seed + 7
    forked = run_from_snapshot(snap, seed=fork_seed)
    cold = run_scenario(scenario.with_(seed=fork_seed))
    assert rows(forked) == rows(cold)


def test_t0_fork_row_identical_under_hostile_faults():
    scenario = small(
        "adaptive", faults=hostile_faults(), duration=220.0
    )
    snap = run_to_checkpoint(scenario, 0.0)
    forked = run_from_snapshot(snap, seed=scenario.seed + 1)
    cold = run_scenario(scenario.with_(seed=scenario.seed + 1))
    assert rows(forked) == rows(cold)


def test_t0_fork_row_identical_under_sharding():
    scenario = small("adaptive")
    snap = run_to_checkpoint(scenario, 0.0)
    sharded = run_from_snapshot(snap, shards=4)
    serial = run_scenario(scenario)
    assert rows(sharded) == rows(serial)


# -- exact mid-run continuation --------------------------------------------


@pytest.mark.parametrize("scheme", QUIESCENT_SCHEMES)
def test_midrun_resume_row_identical_to_uninterrupted(scheme):
    scenario = small(scheme)
    snap = run_to_checkpoint(scenario, 80.0)
    assert snap.started and snap.time >= 80.0
    resumed = run_from_snapshot(snap)
    straight = run_scenario(scenario)
    assert rows(resumed) == rows(straight)


def test_midrun_resume_inside_crash_window_under_faults():
    # t=100 sits inside cell 10's crash window *and* the 3-4 link
    # partition: the snapshot must carry the down state, the pending
    # recovery timers and the partition cursor.
    scenario = small("adaptive", faults=hostile_faults(), duration=220.0)
    snap = run_to_checkpoint(scenario, 100.0)
    resumed = run_from_snapshot(snap)
    straight = run_scenario(scenario)
    assert rows(resumed) == rows(straight)


def test_midrun_snapshot_refuses_never_quiescent_scheme():
    # Every basic_update acquisition runs an update round, so no
    # globally quiescent instant exists mid-run; the drain must give
    # up honestly instead of capturing a torn state.
    with pytest.raises(SnapshotError, match="no snapshot-safe point"):
        run_to_checkpoint(small("basic_update"), 80.0, drain_window=10.0)


def test_midrun_snapshot_refuses_sharded_resume():
    snap = run_to_checkpoint(small("adaptive"), 80.0)
    with pytest.raises(SnapshotError, match="single kernel"):
        run_from_snapshot(snap, shards=4)


# -- reseeded forking ------------------------------------------------------


def test_fork_same_seed_is_deterministic_and_seeds_differ():
    snap = run_to_checkpoint(small("adaptive"), 80.0)
    a = run_from_snapshot(snap, seed=101)
    b = run_from_snapshot(snap, seed=101)
    c = run_from_snapshot(snap, seed=102)
    assert rows(a) == rows(b)
    assert rows(a) != rows(c)


def test_fork_replications_seed_zero_is_exact_continuation():
    scenario = small("adaptive")
    snap = run_to_checkpoint(scenario, 80.0)
    reports = fork_replications(snap, 2)
    # Seed i=0 forks under the snapshot's own seed: exact continuation,
    # row-identical to the cold run of the base scenario.
    assert rows(reports[0]) == rows(run_scenario(scenario))
    assert rows(reports[0]) != rows(reports[1])


def test_run_replications_warm_start_matches_fork_driver():
    scenario = small("adaptive")
    snap = run_to_checkpoint(scenario, 80.0)
    via_harness = run_replications(
        scenario, 2, cache=False, warmup_checkpoint=snap
    )
    via_fork = fork_replications(snap, 2)
    assert [rows(r) for r in via_harness] == [rows(r) for r in via_fork]


# -- byte stability and format ---------------------------------------------


def test_roundtrip_is_byte_stable_cold_and_warm(tmp_path):
    for at in (0.0, 80.0):
        snap = run_to_checkpoint(small("adaptive"), at)
        path = tmp_path / f"at{at:g}.snap"
        save_snapshot(snap, path)
        loaded = load_snapshot(path)
        assert loaded.to_bytes() == snap.to_bytes()
        assert loaded.content_hash() == snap.content_hash()
        if snap.started:
            again = checkpoint(restore(loaded))
            assert again.to_bytes() == snap.to_bytes()


def test_snapshot_rejects_tampered_bytes():
    snap = run_to_checkpoint(small("fixed"), 0.0)
    blob = snap.to_bytes()
    tampered = blob.replace(b"fixed", b"mixed", 1)
    assert tampered != blob
    with pytest.raises(SnapshotError, match="hash"):
        Snapshot.from_bytes(tampered)


def test_snapshot_rejects_unknown_format_version():
    snap = run_to_checkpoint(small("fixed"), 0.0)
    bumped = dataclasses.replace(snap, version=SNAPSHOT_FORMAT_VERSION + 1)
    with pytest.raises(SnapshotError, match="version"):
        restore(bumped)


def test_content_hash_distinguishes_scenarios_and_instants():
    h0 = run_to_checkpoint(small("adaptive"), 0.0).content_hash()
    h0b = run_to_checkpoint(small("adaptive"), 0.0).content_hash()
    h0_other = run_to_checkpoint(small("adaptive", seed=12), 0.0).content_hash()
    h80 = run_to_checkpoint(small("adaptive"), 80.0).content_hash()
    assert h0 == h0b
    assert h0 != h0_other
    assert h0 != h80


# -- cache hygiene (the cache-poisoning regression) ------------------------


def test_warm_forked_rows_never_alias_cold_rows(tmp_path):
    cache = ResultCache(tmp_path)
    scenario = small("adaptive")
    fork_seed = scenario.seed + 1
    forked_scenario = scenario.with_(seed=fork_seed)

    cold = run_scenario(forked_scenario)
    cache.put(forked_scenario, cold)

    snap = run_to_checkpoint(scenario, 80.0)
    (warm,) = fork_replications(snap, 1, cache=cache, seeds=[fork_seed])
    # The warm fork simulates a different trajectory (warmup paid under
    # the base seed) — it must have MISSED the cold row, not returned it.
    assert rows(warm) != rows(cold)

    # Both rows now coexist: the plain lookup still returns the cold
    # report, and a second warm fork hits the warm row (no simulation).
    assert rows(cache.get(forked_scenario)) == rows(cold)
    hits_before = cache.hits
    (warm2,) = fork_replications(snap, 1, cache=cache, seeds=[fork_seed])
    assert cache.hits == hits_before + 1
    assert rows(warm2) == rows(warm)


def test_forks_of_different_snapshots_do_not_share_rows(tmp_path):
    cache = ResultCache(tmp_path)
    scenario = small("adaptive")
    snap_a = run_to_checkpoint(scenario, 0.0)
    snap_b = run_to_checkpoint(scenario, 80.0)
    fork_replications(snap_a, 1, cache=cache)
    hits_before = cache.hits
    fork_replications(snap_b, 1, cache=cache)
    assert cache.hits == hits_before  # b never reads a's row


# -- CLI -------------------------------------------------------------------


def test_cli_checkpoint_resume_and_inspect(tmp_path, capsys):
    from repro.__main__ import main

    out = tmp_path / "cli.snap"
    args = [
        "--scheme", "adaptive", "--load", "5", "--duration", "160",
        "--warmup", "40", "--seed", "11",
    ]
    assert main(args + ["--checkpoint-at", "80", "--checkpoint-out", str(out)]) == 0
    assert out.exists()
    capsys.readouterr()

    assert main(["--from-checkpoint", str(out), "--json"]) == 0
    resumed = json.loads(capsys.readouterr().out)[0]
    straight = run_scenario(small("adaptive"))
    assert resumed["offered"] == straight.offered
    assert resumed["drop_rate"] == straight.drop_rate
    assert resumed["messages_total"] == straight.messages_total

    assert main(["snapshot", "inspect", str(out), "--json"]) == 0
    info = json.loads(capsys.readouterr().out)[0]
    assert info["scheme"] == "adaptive"
    assert info["started"] is True
    assert info["version"] == SNAPSHOT_FORMAT_VERSION
    assert info["rng_streams"] > 0
    assert info["queue_entries"] == sum(info["queue_kinds"].values())
