"""Shared fixtures and helpers for protocol-level tests.

``make_stack`` builds a minimal live system (env, network, topology,
stations) for a given scheme so tests can drive individual requests
deterministically; ``drive``/``drive_all`` run request generators to
completion inside the event loop.
"""

import os

import pytest

from repro.cellular import CellularTopology
from repro.metrics import MetricsCollector
from repro.protocols import InterferenceMonitor
from repro.sim import DeterministicLatency, Environment, Network
from repro.verify import SanitizerSuite, set_default_policy


@pytest.fixture(autouse=True, scope="session")
def _enable_sanitizers():
    """Run the whole suite with runtime sanitizers in raise mode.

    Every simulation built through ``repro.harness.build_simulation``
    (and every stack built through ``make_stack``) gets a
    :class:`SanitizerSuite` attached: the deadlock detector, the
    causality/FIFO checker and the quiescence checker all fail loudly
    the moment an invariant breaks anywhere in the test suite.
    """
    previous = set_default_policy("raise")
    yield
    set_default_policy(previous)


@pytest.fixture(autouse=True, scope="session")
def _disable_ambient_result_cache():
    """Keep the suite hermetic: no ``.repro-cache/`` reads or writes.

    Tests that exercise the cache opt in explicitly by passing
    ``cache=`` (a tmp-path-rooted ``ResultCache``) to the harness.
    """
    previous = os.environ.get("REPRO_CACHE")
    os.environ["REPRO_CACHE"] = "off"
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE", None)
    else:
        os.environ["REPRO_CACHE"] = previous


def make_stack(
    scheme_cls,
    rows: int = 7,
    cols: int = 7,
    num_channels: int = 70,
    T: float = 1.0,
    monitor_policy: str = "raise",
    **mss_kwargs,
):
    """Build a full protocol stack with one MSS per cell."""
    env = Environment()
    topo = CellularTopology(rows, cols, num_channels=num_channels, wrap=True)
    network = Network(env, DeterministicLatency(T))
    metrics = MetricsCollector()
    monitor = InterferenceMonitor(topo, policy=monitor_policy)
    # Runtime sanitizers ride along on every test stack; they observe
    # through the probe bus and raise on any protocol-invariant breach.
    SanitizerSuite(env, network, policy="raise")
    stations = {}
    for cell in topo.grid:
        stations[cell] = scheme_cls(
            env, network, topo, cell, metrics=metrics, monitor=monitor,
            **mss_kwargs,
        )
    for s in stations.values():
        s.start()
    return env, network, topo, stations, monitor, metrics


def drive(env: Environment, generator):
    """Run one request generator to completion, return its value."""
    proc = env.process(generator)
    return env.run(until=proc)


def drive_all(env: Environment, generators):
    """Run several request generators concurrently; return their values."""
    procs = [env.process(g) for g in generators]
    env.run(until=env.all_of(procs))
    return [p.value for p in procs]


@pytest.fixture
def grant_all(request):
    """Convenience: acquire ``n`` channels in one cell."""

    def _grant(env, station, n):
        got = []
        for _ in range(n):
            ch = drive(env, station.request_channel())
            assert ch is not None
            got.append(ch)
        return got

    return _grant
