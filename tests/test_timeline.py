"""Tests for the mode-occupancy sampler."""

import pytest

from repro.harness import ModeSampler, Scenario, build_simulation
from repro.traffic import TemporalHotspot


def test_sampler_validation():
    sim = build_simulation(Scenario(duration=200.0, warmup=50.0))
    with pytest.raises(ValueError):
        ModeSampler(sim.env, sim.stations, interval=0)


def test_sampler_counts_and_glyphs():
    scenario = Scenario(
        scheme="adaptive",
        offered_load=2.0,
        duration=400.0,
        warmup=50.0,
        mean_holding=60.0,
        seed=21,
    )
    sim = build_simulation(scenario)
    sampler = ModeSampler(sim.env, sim.stations, interval=40.0)
    sim.run()
    assert len(sampler.times) == 10  # 0, 40, ..., 360
    assert all(len(v) == 10 for v in sampler.samples.values())
    text = sampler.timeline(cells=[0, 1])
    assert text.count("\n") == 2
    assert "." in text


def test_borrowing_fraction_tracks_hotspot():
    pattern = TemporalHotspot(
        base_rate=1.0 / 60.0 / 10,  # near idle baseline
        hot_cells=[24],
        hot_rate=18.0 / 60.0,
        start=100.0,
        end=500.0,
    )
    scenario = Scenario(
        scheme="adaptive",
        pattern=pattern,
        mean_holding=60.0,
        duration=700.0,
        warmup=0.0,
        seed=23,
    )
    sim = build_simulation(scenario)
    sampler = ModeSampler(sim.env, sim.stations, interval=20.0)
    sim.run()
    hot = sampler.borrowing_fraction(24)
    quiet = sampler.borrowing_fraction(0)
    assert hot > 0.3
    assert quiet < 0.1
    series = sampler.system_borrowing_series()
    assert max(series) > 0.05
    assert series[0] == 0.0  # idle at start


def test_sampler_on_modeless_scheme():
    scenario = Scenario(
        scheme="fixed", offered_load=3.0, duration=200.0, warmup=50.0,
        mean_holding=60.0,
    )
    sim = build_simulation(scenario)
    sampler = ModeSampler(sim.env, sim.stations, interval=50.0)
    sim.run()
    assert all(
        sampler.borrowing_fraction(c) == 0.0 for c in sim.stations
    )


def test_empty_timeline_renders():
    sim = build_simulation(Scenario(duration=200.0, warmup=50.0))
    sampler = ModeSampler(sim.env, sim.stations, interval=40.0, horizon=0.0)
    assert "no samples" in sampler.timeline()
