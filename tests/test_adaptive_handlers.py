"""Handler-level tests for the adaptive scheme's Fig. 4/5/7/8 cases.

Each test puts one MSS into a precise mode/state and feeds it a single
message, asserting the exact response the pseudocode prescribes.
"""

import pytest

from repro.core import AdaptiveMSS, Mode
from repro.protocols import (
    Acquisition,
    AcqType,
    ChangeMode,
    NO_CHANNEL,
    Release,
    ReqType,
    Request,
    ResType,
    Response,
)

from conftest import make_stack


@pytest.fixture
def stack():
    return make_stack(AdaptiveMSS)


def station(stack):
    return stack[3][0]  # cell 0's MSS


def sent_responses(stack):
    """(dst, Response) pairs sent by any node, in order."""
    env, net = stack[0], stack[1]
    out = []
    orig = net.send

    def spy(src, dst, payload, **kw):
        if isinstance(payload, Response):
            out.append((src, dst, payload))
        return orig(src, dst, payload, **kw)

    net.send = spy
    return out


def neighbor_of(stack, i=0):
    topo = stack[2]
    return sorted(topo.IN(0))[i]


# ---------------------------------------------- Fig. 4, update requests ----
def test_update_request_local_mode_grants_free_channel(stack):
    s = station(stack)
    log = sent_responses(stack)
    j = neighbor_of(stack)
    ch = min(s.PR)
    s._on_Request(Request(ReqType.UPDATE, ch, (1.0, j), j, 5))
    assert log[-1][2].res_type is ResType.GRANT
    assert ch in s.granted_out[j]
    assert ch in s.interfered()


def test_update_request_local_mode_rejects_used_channel(stack):
    env = stack[0]
    s = station(stack)
    log = sent_responses(stack)
    j = neighbor_of(stack)
    ch = env.run(until=env.process(s.request_channel()))
    s._on_Request(Request(ReqType.UPDATE, ch, (1.0, j), j, 5))
    assert log[-1][2].res_type is ResType.REJECT
    assert ch not in s.granted_out[j]


def test_update_request_mode2_rejects_younger(stack):
    s = station(stack)
    log = sent_responses(stack)
    j = neighbor_of(stack)
    s.mode = Mode.BORROW_UPDATE
    s._req_ts = (1.0, 0)  # our pending request is older
    free_ch = max(s.spectrum)
    s._on_Request(Request(ReqType.UPDATE, free_ch, (2.0, j), j, 6))
    assert log[-1][2].res_type is ResType.REJECT


def test_update_request_mode2_grants_older(stack):
    s = station(stack)
    log = sent_responses(stack)
    j = neighbor_of(stack)
    s.mode = Mode.BORROW_UPDATE
    s._req_ts = (5.0, 0)
    free_ch = max(s.spectrum)
    s._on_Request(Request(ReqType.UPDATE, free_ch, (2.0, j), j, 6))
    assert log[-1][2].res_type is ResType.GRANT
    assert free_ch in s.granted_out[j]


def test_update_request_mode3_defers_younger(stack):
    s = station(stack)
    j = neighbor_of(stack)
    s.mode = Mode.BORROW_SEARCH
    s._req_ts = (1.0, 0)
    s._on_Request(Request(ReqType.UPDATE, 40, (2.0, j), j, 6))
    assert len(s.DeferQ) == 1
    assert s.DeferQ[0][0] is ReqType.UPDATE


def test_update_request_mode3_rejects_older_for_used_channel(stack):
    # Deviation D4: safety check the pseudocode omits.
    env = stack[0]
    s = station(stack)
    log = sent_responses(stack)
    j = neighbor_of(stack)
    ch = env.run(until=env.process(s.request_channel()))
    s.mode = Mode.BORROW_SEARCH
    s._req_ts = (9.0, 0)
    s._on_Request(Request(ReqType.UPDATE, ch, (2.0, j), j, 6))
    assert log[-1][2].res_type is ResType.REJECT
    s.mode = Mode.LOCAL
    s._req_ts = None


# ---------------------------------------------- Fig. 4, search requests ----
def test_search_request_answered_with_use_set(stack):
    env = stack[0]
    s = station(stack)
    log = sent_responses(stack)
    j = neighbor_of(stack)
    ch = env.run(until=env.process(s.request_channel()))
    s._on_Request(Request(ReqType.SEARCH, NO_CHANNEL, (1.0, j), j, 7))
    resp = log[-1][2]
    assert resp.res_type is ResType.SEARCH
    assert ch in resp.payload
    assert s.waiting == 1


def test_search_request_deferred_by_older_pending_search(stack):
    s = station(stack)
    j = neighbor_of(stack)
    s.mode = Mode.BORROW_SEARCH
    s._req_ts = (1.0, 0)
    s._on_Request(Request(ReqType.SEARCH, NO_CHANNEL, (2.0, j), j, 7))
    assert len(s.DeferQ) == 1
    assert s.waiting == 0


def test_search_request_answered_when_ours_is_younger(stack):
    s = station(stack)
    log = sent_responses(stack)
    j = neighbor_of(stack)
    s.mode = Mode.BORROW_SEARCH
    s._req_ts = (9.0, 0)
    s._on_Request(Request(ReqType.SEARCH, NO_CHANNEL, (2.0, j), j, 7))
    assert log[-1][2].res_type is ResType.SEARCH
    assert s.waiting == 1


def test_search_request_deferred_by_parked_local_request(stack):
    s = station(stack)
    j = neighbor_of(stack)
    s.pending = True
    s._req_ts = (1.0, 0)
    s._on_Request(Request(ReqType.SEARCH, NO_CHANNEL, (2.0, j), j, 7))
    assert len(s.DeferQ) == 1
    s.pending = False
    s._req_ts = None


# ------------------------------------------------------- Fig. 5 / 7 / 8 ----
def test_change_mode_updates_membership_and_answers(stack):
    s = station(stack)
    log = sent_responses(stack)
    j = neighbor_of(stack)
    s._on_ChangeMode(ChangeMode(1, j, 9))
    assert j in s.UpdateS
    assert log[-1][2].res_type is ResType.STATUS
    s._on_ChangeMode(ChangeMode(0, j, 10))
    assert j not in s.UpdateS
    assert log[-1][2].res_type is ResType.STATUS


def test_acquisition_updates_mirror_and_ack(stack):
    s = station(stack)
    j = neighbor_of(stack)
    s._owed_acks[j] = (1.0, j)
    s._on_Acquisition(Acquisition(AcqType.SEARCH, j, 12))
    assert 12 in s.U[j]
    assert s.waiting == 0


def test_failed_search_acquisition_still_acks(stack):
    s = station(stack)
    j = neighbor_of(stack)
    s._owed_acks[j] = (1.0, j)
    s._on_Acquisition(Acquisition(AcqType.SEARCH, j, NO_CHANNEL))
    assert s.waiting == 0
    assert NO_CHANNEL not in s.U[j]


def test_unexpected_search_ack_raises(stack):
    s = station(stack)
    j = neighbor_of(stack)
    with pytest.raises(AssertionError, match="without an owed response"):
        s._on_Acquisition(Acquisition(AcqType.SEARCH, j, 12))


def test_release_clears_mirror_and_grant(stack):
    s = station(stack)
    j = neighbor_of(stack)
    s.U[j].add(7)
    s.granted_out[j].add(8)
    s._on_Release(Release(j, 7))
    s._on_Release(Release(j, 8))
    assert 7 not in s.U[j]
    assert 8 not in s.granted_out[j]
    assert 7 not in s.interfered() and 8 not in s.interfered()


def test_double_search_response_to_same_searcher_raises(stack):
    s = station(stack)
    j = neighbor_of(stack)
    # Register the rounds with the causality sanitizer: this test calls
    # _respond_search below the handler layer, so no request was seen.
    s.env.emit("proto.request", (s.cell, j, 1))
    s.env.emit("proto.request", (s.cell, j, 2))
    s._respond_search(j, (1.0, j), 1)
    with pytest.raises(AssertionError, match="second search response"):
        s._respond_search(j, (2.0, j), 2)
