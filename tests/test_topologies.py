"""Cross-topology integration tests: the protocols must be correct on
any valid reuse configuration, not just the paper-scale default."""

import pytest

from repro import Scenario, run_scenario

CONFIGS = [
    # (rows, cols, channels, cluster, wrap, label)
    (6, 6, 36, 3, True, "small k=3 torus"),
    (6, 6, 40, 4, True, "k=4 torus"),
    (7, 7, 35, 7, True, "skinny spectrum k=7"),
    (14, 14, 70, 7, True, "large k=7 torus"),
    (9, 9, 63, 7, False, "planar grid with boundary cells"),
]


@pytest.mark.parametrize(
    "rows,cols,channels,cluster,wrap,label",
    CONFIGS,
    ids=[c[-1] for c in CONFIGS],
)
@pytest.mark.parametrize("scheme", ["fixed", "basic_update", "adaptive"])
def test_scheme_safe_on_topology(rows, cols, channels, cluster, wrap, label, scheme):
    rep = run_scenario(
        Scenario(
            scheme=scheme,
            rows=rows,
            cols=cols,
            num_channels=channels,
            cluster_size=cluster,
            wrap=wrap,
            offered_load=0.55 * channels / cluster,  # ~55% of primaries
            mean_holding=60.0,
            duration=500.0,
            warmup=100.0,
            seed=77,
        )
    )
    assert rep.violations == 0
    assert rep.offered > 50
    assert rep.drop_rate < 0.5


def test_interference_radius_one_configuration():
    # k=3 has co-channel distance 2, so radius 1 (the 6 adjacent cells)
    # is the only valid region — a much tighter N than the default.
    rep = run_scenario(
        Scenario(
            scheme="adaptive",
            rows=6,
            cols=6,
            num_channels=36,
            cluster_size=3,
            interference_radius=1,
            wrap=True,
            offered_load=8.0,
            mean_holding=60.0,
            duration=600.0,
            warmup=100.0,
            seed=78,
        )
    )
    assert rep.violations == 0
    assert rep.offered > 100


def test_large_grid_scales():
    rep = run_scenario(
        Scenario(
            scheme="adaptive",
            rows=14,
            cols=14,
            num_channels=70,
            offered_load=7.0,
            mean_holding=60.0,
            duration=400.0,
            warmup=100.0,
            seed=79,
        )
    )
    assert rep.violations == 0
    assert rep.offered > 1000  # 196 cells worth of traffic


def test_planar_edge_cells_have_smaller_regions():
    from repro.cellular import CellularTopology

    topo = CellularTopology(9, 9, num_channels=63, wrap=False)
    sizes = {len(topo.IN(c)) for c in topo.grid}
    assert max(sizes) == 18
    assert min(sizes) < 18  # corners see fewer neighbors


@pytest.mark.parametrize("scheme", ["basic_search", "advanced_update", "prakash"])
def test_remaining_schemes_on_nondefault_topology(scheme):
    rep = run_scenario(
        Scenario(
            scheme=scheme,
            rows=6,
            cols=6,
            num_channels=36,
            cluster_size=4,
            wrap=True,
            offered_load=5.0,
            mean_holding=60.0,
            duration=500.0,
            warmup=100.0,
            seed=80,
        )
    )
    assert rep.violations == 0
    assert rep.offered > 100
