"""Unit tests for the advanced update baseline (primary arbitration)."""


from repro.protocols import AdvancedUpdateMSS, ResType

from conftest import drive, drive_all, make_stack


def test_local_primary_zero_latency():
    env, net, topo, stations, monitor, metrics = make_stack(AdvancedUpdateMSS)
    ch = drive(env, stations[0].request_channel())
    assert ch in topo.PR(0)
    assert env.now == 0.0


def test_local_acquisition_broadcasts_to_region():
    env, net, topo, stations, monitor, metrics = make_stack(AdvancedUpdateMSS)
    N = len(topo.IN(0))
    drive(env, stations[0].request_channel())
    assert net.sent_by_kind == {"Acquisition": N}
    env.run()
    for j in topo.IN(0):
        assert stations[j].U[0]


def test_release_broadcasts():
    env, net, topo, stations, monitor, metrics = make_stack(AdvancedUpdateMSS)
    N = len(topo.IN(0))
    ch = drive(env, stations[0].request_channel())
    stations[0].release_channel(ch)
    assert net.sent_by_kind["Release"] == N


def exhaust_primaries(env, topo, stations, cell):
    for _ in range(len(topo.PR(cell))):
        assert drive(env, stations[cell].request_channel()) is not None
    env.run()  # flush broadcasts


def test_borrow_asks_only_arbiters():
    env, net, topo, stations, monitor, metrics = make_stack(AdvancedUpdateMSS)
    exhaust_primaries(env, topo, stations, 0)
    before = dict(net.sent_by_kind)
    ch = drive(env, stations[0].request_channel())
    assert ch is not None and ch not in topo.PR(0)
    arbiters = stations[0].arbiters(ch)
    sent_requests = net.sent_by_kind["Request"] - before.get("Request", 0)
    assert sent_requests == len(arbiters)
    # Fewer arbiters than interference neighbors: the scheme's point.
    assert len(arbiters) < len(topo.IN(0))


def test_arbiters_cover_interfering_requesters():
    # Reconstruction property: any two cells within the reuse distance
    # share at least one arbiter for every channel (the serialization
    # point that makes the scheme safe).
    env, net, topo, stations, monitor, metrics = make_stack(AdvancedUpdateMSS)
    cell = 0
    for other in topo.IN(cell):
        for ch in range(0, 70, 13):
            if ch in topo.PR(cell) or ch in topo.PR(other):
                continue
            common = set(stations[cell].arbiters(ch)) & set(
                stations[other].arbiters(ch)
            ) | ({cell} & set(stations[other].arbiters(ch))) | (
                {other} & set(stations[cell].arbiters(ch))
            )
            assert common, f"cells {cell},{other} share no arbiter for {ch}"


def test_concurrent_interfering_borrows_never_collide():
    env, net, topo, stations, monitor, metrics = make_stack(AdvancedUpdateMSS)
    a, b = 0, sorted(topo.IN(0))[0]
    exhaust_primaries(env, topo, stations, a)
    exhaust_primaries(env, topo, stations, b)
    got = drive_all(
        env, [stations[a].request_channel(), stations[b].request_channel()]
    )
    granted = [g for g in got if g is not None]
    assert len(set(granted)) == len(granted)
    assert not monitor.violations


def test_primary_blocks_own_channel_while_granted_out():
    env, net, topo, stations, monitor, metrics = make_stack(AdvancedUpdateMSS)
    s = stations[0]
    ch = min(topo.PR(0))
    ts = (0.0, 99)
    grantee = sorted(topo.IN(0))[0]
    verdict = s._arbitrate(ch, grantee, ts)
    assert verdict is ResType.GRANT
    assert ch in s.granted_channels()
    # Own local acquisition must now skip the granted channel.
    got = drive(env, s.request_channel())
    assert got != ch


def test_conditional_grant_on_timestamp_inversion():
    env, net, topo, stations, monitor, metrics = make_stack(AdvancedUpdateMSS)
    s = stations[0]
    ch = min(topo.PR(0))
    j_young, j_old = sorted(topo.IN(0))[:2]
    # Younger request arrives first (message overtaking), gets the grant.
    assert s._arbitrate(ch, j_young, (5.0, j_young)) is ResType.GRANT
    # The older request arriving late gets only a conditional grant.
    assert s._arbitrate(ch, j_old, (1.0, j_old)) is ResType.CONDITIONAL_GRANT
    # An even younger third request is rejected outright.
    j3 = sorted(topo.IN(0))[2]
    assert s._arbitrate(ch, j3, (9.0, j3)) is ResType.REJECT


def test_outstanding_cleared_by_release_and_acquisition():
    from repro.protocols import Acquisition, AcqType, Release

    env, net, topo, stations, monitor, metrics = make_stack(AdvancedUpdateMSS)
    s = stations[0]
    ch = min(topo.PR(0))
    grantee = sorted(topo.IN(0))[0]
    s._arbitrate(ch, grantee, (1.0, grantee))
    s._on_Release(Release(grantee, ch))
    assert ch not in s.granted_channels()
    s._arbitrate(ch, grantee, (2.0, grantee))
    s._on_Acquisition(Acquisition(AcqType.NON_SEARCH, grantee, ch))
    assert ch not in s.granted_channels()
    assert ch in s.U[grantee]


def test_arbitrate_rejects_known_interfering_user():
    from repro.protocols import Acquisition, AcqType

    env, net, topo, stations, monitor, metrics = make_stack(AdvancedUpdateMSS)
    s = stations[0]
    ch = min(topo.PR(0))
    user = sorted(topo.IN(0))[0]
    requester = sorted(topo.IN(0))[1]
    if requester not in topo.IN(user):  # pick an interfering pair
        for candidate in sorted(topo.IN(0)):
            if candidate != user and candidate in topo.IN(user):
                requester = candidate
                break
    s._on_Acquisition(Acquisition(AcqType.NON_SEARCH, user, ch))
    assert s._arbitrate(ch, requester, (1.0, requester)) is ResType.REJECT


def test_drop_when_region_saturated():
    env, net, topo, stations, monitor, metrics = make_stack(AdvancedUpdateMSS)
    s = stations[0]
    got = []
    while True:
        ch = drive(env, s.request_channel())
        if ch is None:
            break
        got.append(ch)
        env.run()
    # Own 10 primaries plus every channel borrowable via arbiters.
    assert len(got) >= len(topo.PR(0))
    assert metrics.dropped == 1
