"""Quiescence invariants: after traffic drains, no protocol state leaks.

These catch slow leaks that short unit tests can't see: stranded
DeferQ entries, unbalanced waiting counters, stale borrowed-channel
mirrors, or pledges that never resolve.
"""

import pytest

from repro.core import Mode
from repro.harness import Scenario, build_simulation


def drain(scheme: str, load: float, seed: int, **kw):
    sim = build_simulation(
        Scenario(
            scheme=scheme,
            offered_load=load,
            mean_holding=60.0,
            duration=700.0,
            warmup=100.0,
            seed=seed,
            **kw,
        )
    )
    sim.source.start()
    sim.env.run(until=700)
    sim.source.horizon = 0
    sim.env.run()
    # Traffic has fully drained: the end-of-run sanitizer checks apply
    # (every channel released, every request resolved).
    assert sim.sanitizers is not None  # pytest runs fully sanitized
    sim.sanitizers.finalize()
    sim.sanitizers.assert_clean()
    return sim


@pytest.mark.parametrize("load", [4.0, 9.0, 14.0])
def test_adaptive_quiesces_clean(load):
    sim = drain("adaptive", load, seed=89)
    for s in sim.stations.values():
        assert not s.use
        assert s.mode in (Mode.LOCAL, Mode.BORROW_IDLE)
        assert s.waiting == 0, f"cell {s.cell} leaked waiting counter"
        assert not s.DeferQ, f"cell {s.cell} stranded deferred requests"
        assert s._collector is None
        assert not s.pending
        # No borrowed (non-primary) channel may linger in any mirror:
        # borrowed releases reach the whole region (deviation D7).
        for j, mirrored in s.U.items():
            stale_borrowed = mirrored - sim.topo.PR(j)
            assert not stale_borrowed, (
                f"cell {s.cell} thinks {j} still borrows {stale_borrowed}"
            )
        for j, granted in s.granted_out.items():
            assert not granted, (
                f"cell {s.cell} never resolved grant {granted} to {j}"
            )
    assert sim.monitor.in_use == 0
    assert sim.monitor.total_acquisitions == sim.monitor.total_releases


@pytest.mark.parametrize("scheme", ["basic_update", "advanced_update"])
def test_update_family_mirrors_quiesce_empty(scheme):
    sim = drain(scheme, 9.0, seed=90)
    for s in sim.stations.values():
        assert not s.use
        for j, mirrored in s.U.items():
            assert not mirrored, f"cell {s.cell} stale mirror for {j}: {mirrored}"
    if scheme == "advanced_update":
        for s in sim.stations.values():
            assert not s.outstanding, f"cell {s.cell} leaked grants"


def test_prakash_quiesces_with_exclusive_allocations():
    sim = drain("prakash", 9.0, seed=91)
    for s in sim.stations.values():
        assert not s.use
        assert s._collector is None
        assert s._claiming is None
        assert not s._deferred
    # Allocated sets remain a valid exclusive partition per region.
    for cell, s in sim.stations.items():
        for other in sim.topo.IN(cell):
            common = s.allocated & sim.stations[other].allocated
            assert not common, (cell, other, common)
    # Every channel is still allocated somewhere (no channel lost to a
    # failed transfer).
    union = set()
    for s in sim.stations.values():
        union |= s.allocated
    assert union == set(range(sim.topo.num_channels))


def test_adaptive_quiesces_clean_with_mobility():
    sim = drain("adaptive", 7.0, seed=92, mean_dwell=80.0)
    for s in sim.stations.values():
        assert not s.use
        assert s.waiting == 0
        assert not s.DeferQ
    assert sim.monitor.in_use == 0
