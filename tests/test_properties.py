"""Property-based tests (hypothesis) on core data structures and the
end-to-end safety/liveness invariants."""


import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import erlang_b
from repro.cellular import Hex, HexGrid, ReusePattern, Spectrum, hex_distance
from repro.core import NFCWindow
from repro.harness import Scenario, run_scenario
from repro.sim import Environment

hexes = st.builds(
    Hex, st.integers(-30, 30), st.integers(-30, 30)
)


# ------------------------------------------------------------ hex geometry ----
@given(hexes, hexes)
def test_hex_distance_symmetric(a, b):
    assert hex_distance(a, b) == hex_distance(b, a)


@given(hexes, hexes, hexes)
def test_hex_distance_triangle_inequality(a, b, c):
    assert hex_distance(a, c) <= hex_distance(a, b) + hex_distance(b, c)


@given(hexes)
def test_hex_distance_identity(a):
    assert hex_distance(a, a) == 0


@given(hexes, hexes)
def test_hex_distance_translation_invariant(a, b):
    shift = Hex(3, -7)
    assert hex_distance(a + shift, b + shift) == hex_distance(a, b)


@given(st.integers(2, 9), st.integers(2, 9))
def test_planar_grid_neighbor_symmetry(rows, cols):
    g = HexGrid(rows, cols, wrap=False)
    for cell in g:
        for n in g.neighbors(cell):
            assert cell in g.neighbors(n)


@given(st.sampled_from([3, 4, 7, 9, 12, 13]))
def test_reuse_coloring_separation(k):
    # Any same-colored pair is at least the lattice co-channel distance
    # apart — on a plane large enough to contain several clusters.
    g = HexGrid(10, 10, wrap=False)
    p = ReusePattern(g, k)
    d_min = p.min_cochannel_distance()
    for a in g:
        for b in g:
            if a < b and p.color(a) == p.color(b):
                assert g.distance(a, b) >= d_min


@given(st.integers(1, 200), st.sampled_from([3, 4, 7, 9, 12]))
def test_spectrum_partition_is_exact(n, k):
    s = Spectrum(n)
    sets = [s.channels_of_color(c, k) for c in range(k)]
    assert sum(len(x) for x in sets) == n
    union = frozenset().union(*sets) if sets else frozenset()
    assert union == s.all_channels
    sizes = sorted(len(x) for x in sets)
    assert sizes[-1] - sizes[0] <= 1  # balanced


# ----------------------------------------------------------------- NFC ----
@given(
    st.lists(
        st.tuples(st.floats(0, 1e5), st.integers(0, 50)),
        min_size=1,
        max_size=60,
    ),
    st.floats(1, 1000),
)
def test_nfc_get_matches_reference_step_function(samples, window):
    samples = sorted(samples, key=lambda p: p[0])
    w = NFCWindow(window, initial=0)
    reference = []
    for t, s in samples:
        if reference and reference[-1][0] == t:
            reference.pop()
        reference.append((t, s))
        w.add(t, s)
    t_latest = samples[-1][0]
    horizon = t_latest - window

    def ref_get(t):
        value = 0
        for when, s in reference:
            if when <= t:
                value = s
        return value

    # Within the window (and at its boundary) the pruned structure must
    # agree exactly with the unpruned reference.
    for frac in (0.0, 0.25, 0.5, 1.0):
        t = horizon + frac * window
        if t >= horizon:
            assert w.get(t) == ref_get(t)


@given(st.integers(0, 30), st.integers(0, 30), st.floats(0.1, 100))
def test_nfc_predict_linear_in_horizon(s0, s1, horizon):
    w = NFCWindow(10.0, initial=s0)
    w.add(0, s0)
    w.add(10, s1)
    predicted = w.predict(10, horizon)
    assert predicted == pytest.approx(s1 + horizon * (s1 - s0) / 10.0)


# --------------------------------------------------------------- Erlang-B ----
@given(st.floats(0.01, 50), st.integers(1, 60))
def test_erlang_b_is_probability(a, c):
    b = erlang_b(a, c)
    assert 0 <= b <= 1


@given(st.floats(0.01, 50), st.integers(1, 59))
def test_erlang_b_decreasing_in_servers(a, c):
    assert erlang_b(a, c + 1) <= erlang_b(a, c) + 1e-12


@given(st.floats(0.01, 25), st.integers(1, 40))
def test_erlang_b_recurrence_identity(a, c):
    # B(A, c) = A·B(A, c-1) / (c + A·B(A, c-1))
    prev = erlang_b(a, c - 1)
    expected = a * prev / (c + a * prev)
    assert erlang_b(a, c) == pytest.approx(expected, rel=1e-9)


# ------------------------------------------------------------- sim engine ----
@given(st.lists(st.floats(0, 100), min_size=1, max_size=30))
def test_engine_processes_timeouts_in_order(delays):
    env = Environment()
    fired = []
    for i, d in enumerate(delays):
        def proc(d=d, i=i):
            yield env.timeout(d)
            fired.append((env.now, i))
        env.process(proc())
    env.run()
    times = [t for t, _ in fired]
    assert times == sorted(times)
    assert len(fired) == len(delays)


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=15, deadline=None)
def test_engine_clock_never_goes_backwards(seed):
    import numpy as np

    env = Environment()
    rng = np.random.default_rng(seed)
    observed = []

    def worker():
        for _ in range(20):
            yield env.timeout(float(rng.exponential(1.0)))
            observed.append(env.now)

    for _ in range(3):
        env.process(worker())
    env.run()
    assert observed == sorted(observed)


# --------------------------------------------- end-to-end safety property ----
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    scheme=st.sampled_from(
        ["fixed", "basic_search", "basic_update", "advanced_update",
         "adaptive", "prakash"]
    ),
    load=st.floats(0.5, 14.0),
    seed=st.integers(0, 10_000),
    spread=st.sampled_from([0.0, 0.7, 2.0]),
    mobility=st.booleans(),
)
def test_no_scheme_ever_violates_reuse_invariant(
    scheme, load, seed, spread, mobility
):
    """Theorem 1, empirically: random loads, seeds, latency jitter and
    mobility, with the monitor raising on any co-channel conflict."""
    rep = run_scenario(
        Scenario(
            scheme=scheme,
            offered_load=load,
            duration=400.0,
            warmup=50.0,
            seed=seed,
            mean_holding=60.0,
            mean_dwell=120.0 if mobility else None,
            latency_model="uniform" if spread else "deterministic",
            latency_spread=spread,
        )
    )
    assert rep.violations == 0
    assert rep.offered == rep.granted + rep.dropped


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    alpha=st.integers(0, 5),
    theta_low=st.floats(0.0, 2.0),
    gap=st.floats(0.0, 3.0),
    seed=st.integers(0, 1000),
)
def test_adaptive_parameters_never_break_liveness(alpha, theta_low, gap, seed):
    """All requests complete (grant or drop) for any α/θ configuration."""
    rep = run_scenario(
        Scenario(
            scheme="adaptive",
            offered_load=10.0,
            duration=400.0,
            warmup=50.0,
            seed=seed,
            mean_holding=60.0,
            alpha=alpha,
            theta_low=theta_low,
            theta_high=theta_low + gap,
        )
    )
    assert rep.violations == 0
    assert rep.offered > 50  # requests flowed and completed
