"""Unit tests for the allocated-set scheme (Prakash et al., §6 comparison)."""


from repro.protocols import PrakashMSS

from conftest import drive, drive_all, make_stack


def test_serves_from_allocated_set_silently():
    env, net, topo, stations, monitor, metrics = make_stack(PrakashMSS)
    ch = drive(env, stations[0].request_channel())
    assert ch in topo.PR(0)  # initial allocated set = primaries
    assert env.now == 0.0
    assert net.total_sent == 0


def test_release_keeps_allocation():
    env, net, topo, stations, monitor, metrics = make_stack(PrakashMSS)
    ch = drive(env, stations[0].request_channel())
    stations[0].release_channel(ch)
    assert ch in stations[0].allocated
    assert net.total_sent == 0
    # Reuse without messages: the adaptive-to-load property of [8].
    assert drive(env, stations[0].request_channel()) == ch


def test_transfer_migrates_channel_from_all_owners():
    env, net, topo, stations, monitor, metrics = make_stack(PrakashMSS)
    s = stations[0]
    for _ in range(len(topo.PR(0))):
        drive(env, s.request_channel())
    # Next request cannot be served locally: poll + transfer.
    ch = drive(env, s.request_channel())
    assert ch is not None
    assert ch not in topo.PR(0)
    assert ch in s.allocated
    env.run()  # flush confirms
    # Every previous owner inside the region released its allocation.
    for j in topo.IN(0):
        assert ch not in stations[j].allocated
        assert ch not in stations[j].pledged
    assert not monitor.violations


def test_transfer_costs_poll_plus_handshake():
    env, net, topo, stations, monitor, metrics = make_stack(PrakashMSS)
    s = stations[0]
    for _ in range(len(topo.PR(0))):
        drive(env, s.request_channel())
    before = net.total_sent
    drive(env, s.request_channel())
    env.run()
    N = len(topo.IN(0))
    sent = net.total_sent - before
    # Poll round (2N) plus TRANSFER/REPLY/CONFIRM per donor (3 each).
    assert sent >= 2 * N + 3
    assert net.sent_by_kind.get("Transfer", 0) >= 1
    assert net.sent_by_kind.get("TransferReply", 0) >= 1


def test_busy_owner_keeps_channel():
    env, net, topo, stations, monitor, metrics = make_stack(PrakashMSS)
    s = stations[0]
    # A neighbor uses one of its primaries: that channel must not be
    # chosen for transfer.
    j = sorted(topo.IN(0))[0]
    busy = drive(env, stations[j].request_channel())
    for _ in range(len(topo.PR(0))):
        drive(env, s.request_channel())
    got = drive(env, s.request_channel())
    assert got != busy
    assert busy in stations[j].allocated


def test_concurrent_interfering_requests_stay_safe():
    env, net, topo, stations, monitor, metrics = make_stack(PrakashMSS)
    a, b = 0, sorted(topo.IN(0))[0]
    for cell in (a, b):
        for _ in range(len(topo.PR(cell))):
            drive(env, stations[cell].request_channel())
    env.run()
    got = drive_all(
        env, [stations[a].request_channel(), stations[b].request_channel()]
    )
    granted = [g for g in got if g is not None]
    assert len(set(granted)) == len(granted)
    assert not monitor.violations


def test_exclusivity_invariant_within_regions():
    # After arbitrary churn, no channel is allocated by two interfering
    # cells.
    env, net, topo, stations, monitor, metrics = make_stack(PrakashMSS)
    import numpy as np

    rng = np.random.default_rng(0)

    def churn(cell):
        held = []
        for _ in range(12):
            if held and rng.random() < 0.4:
                stations[cell].release_channel(held.pop())
            else:
                ch = yield from stations[cell].request_channel()
                if ch is not None:
                    held.append(ch)
            yield env.timeout(float(rng.exponential(3.0)))

    drive_all(env, [churn(c) for c in range(0, 49, 3)])
    env.run()
    for cell in topo.grid:
        for other in topo.IN(cell):
            if cell < other:
                common = stations[cell].allocated & stations[other].allocated
                assert not common, (cell, other, common)
    assert not monitor.violations
