"""Unit tests for the runtime sanitizers in ``repro.verify``.

Each sanitizer is driven both synthetically (hand-emitted probe events
and hand-built graphs) and through a real simulation stack, covering
the raise and record policies.
"""

import pytest

from repro.core import AdaptiveMSS
from repro.protocols import ResType, Response
from repro.sim import DeterministicLatency, Envelope, Environment, Network
from repro.verify import (
    CausalityChecker,
    DeadlockDetector,
    QuiescenceChecker,
    SanitizerSuite,
    get_default_policy,
    set_default_policy,
)

from conftest import drive, make_stack


class Sink:
    def __init__(self, node_id, env):
        self.node_id = node_id
        self.env = env
        self.received = []

    def on_message(self, envelope):
        self.received.append(envelope)


def make_net(env, fifo=True, n=4):
    net = Network(env, latency=DeterministicLatency(1.0), fifo=fifo)
    for i in range(n):
        net.attach(Sink(i, env))
    return net


# ------------------------------------------------------ deadlock detector ----
def test_deadlock_cycle_raises():
    det = DeadlockDetector(Environment(), policy="raise")
    det.block(1, 2)
    det.block(2, 3)
    with pytest.raises(AssertionError, match="wait-for cycle"):
        det.block(3, 1)


def test_deadlock_cycle_recorded_with_members():
    det = DeadlockDetector(Environment(), policy="record")
    det.block(1, 2)
    det.block(2, 3)
    det.block(3, 1)
    assert len(det.violations) == 1
    assert set(det.violations[0].cycle) == {1, 2, 3}
    with pytest.raises(AssertionError, match="wait-for cycle"):
        det.assert_clean()


def test_two_cycle_detected():
    det = DeadlockDetector(Environment(), policy="record")
    det.block(5, 7)
    det.block(7, 5)
    assert len(det.violations) == 1
    assert set(det.violations[0].cycle) == {5, 7}


def test_unblock_breaks_would_be_cycle():
    det = DeadlockDetector(Environment(), policy="raise")
    det.block(1, 2)
    det.unblock(1, 2)
    det.block(2, 1)  # no cycle: the reverse edge is gone
    assert det.blocked_on(2) == {1}
    assert det.blocked_on(1) == set()


def test_block_idempotent_and_unblock_tolerant():
    det = DeadlockDetector(Environment(), policy="raise")
    det.block(1, 2)
    det.block(1, 2)
    assert det.edges_added == 1
    det.unblock(9, 9)  # absent edge: no-op
    assert det.edge_count == 1


def test_gate_edge_requires_open_search():
    env = Environment()
    det = DeadlockDetector(env, policy="raise")
    ts = (1.0, 2)
    # No search.begin yet: the owed ack's search already concluded, the
    # gate wait is bounded, no edge may appear.
    env.emit("wait.block", (1, 2, "gate", ts))
    assert det.blocked_on(1) == set()
    env.emit("search.begin", (2, ts))
    env.emit("wait.block", (1, 2, "gate", ts))
    assert det.blocked_on(1) == {2}
    # The ACQUISITION broadcast closes the search and clears every gate
    # edge pointing at the searcher.
    env.emit("search.end", 2)
    assert det.blocked_on(1) == set()
    # A later block for the *old* search timestamp is stale: ignored.
    env.emit("wait.block", (1, 2, "gate", ts))
    assert det.blocked_on(1) == set()


def test_defer_edges_via_probe_bus():
    env = Environment()
    det = DeadlockDetector(env, policy="record")
    env.emit("wait.block", (3, 4, "defer", (0.5, 3)))
    assert det.blocked_on(3) == {4}
    env.emit("wait.unblock", (3, 4))
    assert det.blocked_on(3) == set()
    assert det.violations == []


def test_detach_goes_inert():
    env = Environment()
    det = DeadlockDetector(env, policy="raise")
    det.detach()
    env.emit("wait.block", (1, 2, "defer", (0.0, 1)))
    assert det.edge_count == 0


# ------------------------------------------------------ causality checker ----
def test_reply_without_request_flagged():
    env = Environment()
    net = make_net(env)
    chk = CausalityChecker(env, policy="record")
    net.send(0, 1, Response(ResType.GRANT, 0, 7, 42))
    assert [v.kind for v in chk.violations] == ["reply_before_request"]


def test_reply_after_processed_request_is_clean_and_single():
    env = Environment()
    net = make_net(env)
    chk = CausalityChecker(env, policy="record")
    # The responder (cell 0) processed requester 1's round 42.
    env.emit("proto.request", (0, 1, 42))
    net.send(0, 1, Response(ResType.GRANT, 0, 7, 42))
    assert chk.violations == []
    # Second answer to the same round: flagged.
    net.send(0, 1, Response(ResType.GRANT, 0, 7, 42))
    assert [v.kind for v in chk.violations] == ["reply_before_request"]


def test_fifo_overtaking_flagged():
    env = Environment()
    net = make_net(env, fifo=False)  # network *allows* reordering
    chk = CausalityChecker(env, policy="record", check_fifo=True)
    net.send(0, 1, "slow", delay_override=5.0)
    net.send(0, 1, "fast", delay_override=1.0)
    env.run()
    assert [v.kind for v in chk.violations] == ["fifo"]


def test_fifo_check_disabled_for_reordering_network():
    env = Environment()
    net = make_net(env, fifo=False)
    chk = CausalityChecker(env, policy="record", check_fifo=False)
    net.send(0, 1, "slow", delay_override=5.0)
    net.send(0, 1, "fast", delay_override=1.0)
    env.run()
    assert chk.violations == []
    assert chk.messages_checked == 2


def test_in_order_delivery_is_clean():
    env = Environment()
    net = make_net(env)
    chk = CausalityChecker(env, policy="record")
    net.send(0, 1, "a")
    net.send(0, 1, "b")
    env.run()
    assert chk.violations == []


def test_time_travel_flagged():
    env = Environment()
    chk = CausalityChecker(env, policy="record")
    env.emit(
        "net.send",
        Envelope(src=0, dst=1, payload="x", sent_at=5.0, deliver_at=4.0, seq=1),
    )
    assert [v.kind for v in chk.violations] == ["time_travel"]


# ----------------------------------------------------- quiescence checker ----
def test_held_channel_reported_at_finalize():
    env = Environment()
    chk = QuiescenceChecker(env, policy="record")
    env.emit("channel.acquired", (3, 17))
    chk.finalize()
    assert [v.kind for v in chk.violations] == ["held_channel"]
    assert chk.violations[0].cell == 3


def test_unresolved_request_reported_at_finalize():
    env = Environment()
    chk = QuiescenceChecker(env, policy="record")
    env.emit("request.begin", 5)
    chk.finalize()
    assert [v.kind for v in chk.violations] == ["unresolved_request"]


def test_unbalanced_release_reported_immediately():
    env = Environment()
    chk = QuiescenceChecker(env, policy="raise")
    with pytest.raises(AssertionError, match="never acquired"):
        env.emit("channel.released", (2, 9))


def test_balanced_lifecycle_is_clean():
    env = Environment()
    chk = QuiescenceChecker(env, policy="raise")
    env.emit("request.begin", 1)
    env.emit("channel.acquired", (1, 4))
    env.emit("request.end", 1)
    env.emit("channel.released", (1, 4))
    chk.finalize()
    assert chk.channels_held == 0
    assert chk.requests_open == 0
    assert chk.total_acquisitions == chk.total_releases == 1


# --------------------------------------------------------- policies / API ----
def test_invalid_policy_rejected():
    with pytest.raises(ValueError):
        DeadlockDetector(Environment(), policy="warn")


def test_default_policy_roundtrip():
    previous = set_default_policy("record")
    try:
        assert get_default_policy() == "record"
        with pytest.raises(ValueError):
            set_default_policy("warn")
    finally:
        set_default_policy(previous)
    assert get_default_policy() == previous


# ------------------------------------------------------------------ suite ----
def test_suite_respects_network_fifo_flag():
    env = Environment()
    net = make_net(env, fifo=False)
    suite = SanitizerSuite(env, net, policy="record")
    assert suite.causality.check_fifo is False
    assert suite.vector_clock.check_order is False
    assert len(suite.sanitizers) == 4


def test_suite_aggregates_and_detaches():
    env = Environment()
    suite = SanitizerSuite(env, policy="record")
    env.emit("wait.block", (1, 2, "defer", (0.0, 1)))
    env.emit("wait.block", (2, 1, "defer", (0.0, 2)))  # 2-cycle
    env.emit("channel.acquired", (0, 3))
    suite.finalize()  # held channel
    assert len(suite.violations) == 2
    with pytest.raises(AssertionError):
        suite.assert_clean()
    suite.detach()
    env.emit("channel.acquired", (9, 9))
    assert suite.quiescence.channels_held == 1  # unchanged after detach


def test_real_run_is_sanitized_and_clean():
    # make_stack attaches a raise-mode suite: a borrow round that
    # exercises defer/gate/search paths must complete without any
    # sanitizer firing.
    env, net, topo, stations, monitor, metrics = make_stack(AdaptiveMSS, alpha=0)
    held = []
    for _ in range(len(topo.PR(0))):
        held.append(drive(env, stations[0].request_channel()))
    env.run()
    borrowed = drive(env, stations[0].request_channel())  # via search
    env.run()
    assert borrowed is not None
    for ch in held + [borrowed]:
        stations[0].release_channel(ch)
    env.run()
