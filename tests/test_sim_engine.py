"""Unit tests for the discrete-event kernel (Environment, Event, Process)."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    EmptySchedule,
    Environment,
    Interrupt,
)


def test_clock_starts_at_initial_time():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(3.5)
    env.run()
    assert env.now == 3.5


def test_timeout_value_passed_to_process():
    env = Environment()
    got = []

    def proc():
        value = yield env.timeout(1, value="hello")
        got.append(value)

    env.process(proc())
    env.run()
    assert got == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_events_fire_in_time_order():
    env = Environment()
    order = []
    for delay in (3, 1, 2):
        def proc(d=delay):
            yield env.timeout(d)
            order.append(d)
        env.process(proc())
    env.run()
    assert order == [1, 2, 3]


def test_same_time_events_fire_in_insertion_order():
    env = Environment()
    order = []
    for tag in "abc":
        def proc(t=tag):
            yield env.timeout(1)
            order.append(t)
        env.process(proc())
    env.run()
    assert order == ["a", "b", "c"]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def ticker():
        while True:
            yield env.timeout(1)

    env.process(ticker())
    env.run(until=10)
    assert env.now == 10


def test_run_until_time_in_past_rejected():
    env = Environment()
    env.timeout(5)
    env.run(until=5)
    with pytest.raises(ValueError):
        env.run(until=1)


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(2)
        return 42

    p = env.process(proc())
    assert env.run(until=p) == 42
    assert env.now == 2


def test_run_until_never_triggered_event_raises():
    env = Environment()
    ev = env.event()
    env.timeout(1)
    with pytest.raises(RuntimeError, match="never triggered"):
        env.run(until=ev)


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()
    got = []

    def waiter():
        got.append((yield ev))

    def firer():
        yield env.timeout(4)
        ev.succeed("done")

    env.process(waiter())
    env.process(firer())
    env.run()
    assert got == ["done"]
    assert ev.ok and ev.processed


def test_event_cannot_trigger_twice():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(ValueError())


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(RuntimeError):
        _ = ev.value


def test_failed_event_raises_in_waiting_process():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    env.process(waiter())

    def firer():
        yield env.timeout(1)
        ev.fail(ValueError("boom"))

    env.process(firer())
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_surfaces_from_run():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise RuntimeError("crashed")

    env.process(bad())
    with pytest.raises(RuntimeError, match="crashed"):
        env.run()


def test_process_exception_caught_by_waiter_is_defused():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise RuntimeError("crashed")

    def supervisor():
        try:
            yield env.process(bad())
        except RuntimeError:
            return "handled"

    sup = env.process(supervisor())
    assert env.run(until=sup) == "handled"


def test_yielding_non_event_fails_process():
    env = Environment()

    def bad():
        yield 42

    p = env.process(bad())
    with pytest.raises(RuntimeError, match="non-event"):
        env.run(until=p)


def test_yielding_foreign_event_fails_process():
    env1, env2 = Environment(), Environment()
    foreign = env2.event()

    def bad():
        yield foreign

    p = env1.process(bad())
    with pytest.raises(RuntimeError, match="foreign"):
        env1.run(until=p)


def test_process_waits_on_already_processed_event():
    env = Environment()
    ev = env.event()
    ev.succeed("early")
    got = []

    def late():
        yield env.timeout(5)
        got.append((yield ev))

    env.process(late())
    env.run()
    assert got == ["early"]
    assert env.now == 5


def test_nested_process_chain():
    env = Environment()

    def inner():
        yield env.timeout(1)
        return 10

    def outer():
        v = yield env.process(inner())
        v += yield env.process(inner())
        return v

    p = env.process(outer())
    assert env.run(until=p) == 20
    assert env.now == 2


def test_process_is_alive_flag():
    env = Environment()

    def proc():
        yield env.timeout(3)

    p = env.process(proc())
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_non_generator_rejected():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_all_of_collects_all_values():
    env = Environment()
    t1 = env.timeout(1, value="a")
    t2 = env.timeout(2, value="b")
    got = []

    def proc():
        result = yield AllOf(env, [t1, t2])
        got.append(sorted(result.values()))

    env.process(proc())
    env.run()
    assert got == [["a", "b"]]
    assert env.now == 2


def test_any_of_fires_on_first():
    env = Environment()
    t1 = env.timeout(1, value="fast")
    t2 = env.timeout(10, value="slow")

    def proc():
        result = yield AnyOf(env, [t1, t2])
        return list(result.values())

    p = env.process(proc())
    assert env.run(until=p) == ["fast"]


def test_and_or_operators():
    env = Environment()
    t1 = env.timeout(1)
    t2 = env.timeout(2)

    def proc():
        yield t1 & t2

    p = env.process(proc())
    env.run(until=p)
    assert env.now == 2

    env2 = Environment()
    a = env2.timeout(1)
    b = env2.timeout(5)

    def proc2():
        yield a | b

    p2 = env2.process(proc2())
    env2.run(until=p2)
    assert env2.now == 1


def test_empty_all_of_triggers_immediately():
    env = Environment()

    def proc():
        yield AllOf(env, [])
        return "ok"

    p = env.process(proc())
    assert env.run(until=p) == "ok"
    assert env.now == 0


def test_interrupt_wakes_waiting_process():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100)
            log.append("overslept")
        except Interrupt as i:
            log.append(("interrupted", i.cause, env.now))

    def interrupter(victim):
        yield env.timeout(3)
        victim.interrupt(cause="wake up")

    victim = env.process(sleeper())
    env.process(interrupter(victim))
    env.run()
    assert log == [("interrupted", "wake up", 3)]


def test_interrupt_dead_process_raises():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_self_interrupt_rejected():
    env = Environment()

    def selfish():
        me = env.active_process
        with pytest.raises(RuntimeError):
            me.interrupt()
        yield env.timeout(0)

    p = env.process(selfish())
    env.run(until=p)


def test_peek_and_len():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(7)
    assert env.peek() == 7
    assert len(env) == 1


def test_determinism_same_structure_same_trace():
    def build_and_run():
        env = Environment()
        trace = []

        def worker(wid, delay):
            for i in range(3):
                yield env.timeout(delay)
                trace.append((env.now, wid, i))

        for wid, delay in [(0, 1.5), (1, 2.0), (2, 1.5)]:
            env.process(worker(wid, delay))
        env.run()
        return trace

    assert build_and_run() == build_and_run()


# -- lazy cancellation (Environment.cancel) --------------------------------


def test_cancel_skips_event_without_advancing_clock():
    env = Environment()
    fired = []
    doomed = env.timeout(1.0)
    doomed.callbacks.append(lambda e: fired.append("doomed"))
    keeper = env.timeout(2.0)
    keeper.callbacks.append(lambda e: fired.append("keeper"))
    env.cancel(doomed)
    env.run()
    # The cancelled entry never ran and never became "now".
    assert fired == ["keeper"]
    assert env.now == 2.0


def test_cancel_abandons_waiting_process():
    env = Environment()
    resumed = []

    def sleeper():
        yield env.timeout(1.0)
        resumed.append(env.now)

    proc = env.process(sleeper())
    env.run(until=0.5)  # start the process so it waits on its timeout
    env.cancel(proc.target)
    env.timeout(5.0)
    env.run()
    assert resumed == []
    assert proc.is_alive  # parked forever, not failed


def test_cancel_processed_event_rejected():
    env = Environment()
    event = env.timeout(1.0)
    env.run()
    with pytest.raises(RuntimeError, match="already processed"):
        env.cancel(event)


def test_peek_discards_cancelled_entries():
    env = Environment()
    first = env.timeout(1.0)
    env.timeout(3.0)
    assert env.peek() == 1.0
    env.cancel(first)
    assert env.peek() == 3.0
    assert len(env) == 1  # the cancelled entry was popped, not skipped
