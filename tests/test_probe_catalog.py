"""Contract test: the probe-bus event catalog is complete.

docs/OBSERVABILITY.md promises to list **every** probe kind emitted
anywhere under ``src/repro``.  This test greps the source tree for
``env.emit(...)`` sites, expands the fault injector's one f-string
emitter via :data:`repro.faults.injector.FAULT_KINDS`, and fails if
any kind is missing from the catalog (or documented but never
emitted).  Adding an emit site without documenting it — or renaming a
kind in only one place — breaks the build, which is the point.
"""

import re
from pathlib import Path

from repro.faults.injector import FAULT_KINDS

REPO = Path(__file__).resolve().parent.parent
DOC = REPO / "docs" / "OBSERVABILITY.md"

#: Emit sites: .emit("kind", ...) / .emit(f"...", ...), possibly with
#: the string literal on the line after the paren.
EMIT_RE = re.compile(r'\.emit\(\s*(f?)"([^"]+)"', re.S)


def emitted_kinds():
    kinds = set()
    for path in sorted((REPO / "src" / "repro").rglob("*.py")):
        for is_fstring, literal in EMIT_RE.findall(path.read_text()):
            if "*" in literal:
                continue  # wildcard in prose (docstring), not an emit site
            if is_fstring:
                # The only sanctioned f-string emitter is the fault
                # injector's `fault.{kind}`; expand it from the
                # machine-readable kind list it draws from.
                assert literal == "fault.{kind}", (
                    f"unexpected f-string emit {literal!r} in {path}: "
                    "either emit a literal kind or teach this test "
                    "how to expand it"
                )
                kinds.update(f"fault.{k}" for k in FAULT_KINDS)
            else:
                kinds.add(literal)
    return kinds


def documented_kinds():
    # The catalog renders each kind as a backticked table cell.
    text = DOC.read_text()
    catalog = text.split("## Probe-bus event catalog", 1)[1]
    catalog = catalog.split("## Spans", 1)[0]
    return {
        m for m in re.findall(r"`([a-z_.]+\.[a-z_.{}]+)`", catalog)
        if not m.startswith(("repro.", "tests.", "docs."))
    }


def test_every_emitted_kind_is_documented():
    emitted = emitted_kinds()
    assert emitted, "found no emit sites — the regex rotted"
    missing = emitted - documented_kinds()
    assert not missing, (
        f"probe kinds emitted but missing from docs/OBSERVABILITY.md's "
        f"catalog: {sorted(missing)}"
    )


def test_every_documented_kind_is_emitted():
    stale = documented_kinds() - emitted_kinds() - {"fault.{kind}"}
    assert not stale, (
        f"docs/OBSERVABILITY.md catalogs kinds nothing emits: "
        f"{sorted(stale)}"
    )


def test_fault_kinds_backed_by_constant():
    # The doc's injector rows must track the FAULT_KINDS constant.
    docd = {k for k in documented_kinds() if k.startswith("fault.")}
    for kind in FAULT_KINDS:
        assert f"fault.{kind}" in docd
