"""Tests for Resource.cancel (the call-setup-deadline machinery)."""

import pytest

from repro.sim import Environment, Resource


def test_cancel_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)
    first = res.request()  # granted immediately
    waiting = res.request()
    assert res.queued == 1
    res.cancel(waiting)
    assert res.queued == 0
    # Releasing now leaves the resource free (nobody waits).
    res.release()
    assert res.in_use == 0


def test_cancel_granted_request_rejected():
    env = Environment()
    res = Resource(env)
    granted = res.request()
    with pytest.raises(RuntimeError, match="granted"):
        res.cancel(granted)


def test_cancel_unknown_event_rejected():
    env = Environment()
    res = Resource(env)
    res.request()
    stranger = env.event()
    with pytest.raises(RuntimeError, match="not a queued request"):
        res.cancel(stranger)


def test_cancelled_waiter_skipped_on_release():
    env = Environment()
    res = Resource(env, capacity=1)
    res.request()
    impatient = res.request()
    patient = res.request()
    res.cancel(impatient)
    res.release()  # must go to `patient`, not the cancelled one
    env.run()
    assert patient.triggered
    assert not impatient.triggered


def test_setup_deadline_end_to_end_queue_timeout():
    """A call that can't start in time abandons cleanly and the lock
    queue position is withdrawn (no ghost grants later)."""
    from repro.protocols import FixedMSS
    from conftest import make_stack

    env, net, topo, stations, monitor, metrics = make_stack(FixedMSS)
    s = stations[0]
    results = []

    def slow_holder():
        # Monopolize the MSS lock without completing for a while.
        yield s._lock.request()
        yield env.timeout(100)
        s._lock.release()

    def impatient_call():
        yield env.timeout(1)
        ch = yield from s.request_channel("new", setup_deadline=5.0)
        results.append(("impatient", ch, env.now))

    def patient_call():
        yield env.timeout(2)
        ch = yield from s.request_channel("new", setup_deadline=None)
        results.append(("patient", ch, env.now))

    env.process(slow_holder())
    env.process(impatient_call())
    env.process(patient_call())
    env.run()
    impatient = next(r for r in results if r[0] == "impatient")
    patient = next(r for r in results if r[0] == "patient")
    assert impatient[1] is None and impatient[2] == pytest.approx(6.0)
    assert patient[1] is not None and patient[2] == pytest.approx(100.0)
    timeout_records = [
        r for r in metrics.records if r.mode == "queue_timeout"
    ]
    assert len(timeout_records) == 1
