"""Tests for repository tooling (API doc generation)."""

import pathlib
import subprocess
import sys


ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))


def test_generate_covers_all_subpackages():
    from gen_api_docs import SUBPACKAGES, generate

    text = generate()
    for module in SUBPACKAGES:
        assert f"## `{module}`" in text
    # Key public symbols appear.
    for symbol in ("AdaptiveMSS", "Scenario", "erlang_b", "HexGrid"):
        assert symbol in text


def test_first_paragraph_extraction():
    from gen_api_docs import first_paragraph

    assert first_paragraph(None) == "*(undocumented)*"
    assert first_paragraph("One line.") == "One line."
    doc = """Summary line
    continues here.

    Body that must not appear.
    """
    out = first_paragraph(doc)
    assert "continues here" in out
    assert "Body" not in out


def test_generated_file_is_current():
    """docs/API.md must match the code (regenerate when it drifts)."""
    from gen_api_docs import generate

    on_disk = (ROOT / "docs" / "API.md").read_text()
    assert on_disk == generate(), (
        "docs/API.md is stale — run `python tools/gen_api_docs.py`"
    )


def test_cli_entry_point_runs(tmp_path):
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "gen_api_docs.py")],
        capture_output=True,
        text=True,
        cwd=ROOT,
    )
    assert result.returncode == 0
    assert "wrote" in result.stdout
