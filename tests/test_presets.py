"""Tests for named scenario presets and their CLI integration."""

import pytest

from repro.harness import PRESETS, Scenario, preset, preset_names, run_scenario


def test_all_presets_construct_valid_scenarios():
    for name in preset_names():
        s = preset(name)
        assert isinstance(s, Scenario)
        assert s.duration > s.warmup


def test_preset_returns_fresh_instances():
    a, b = preset("paper_default"), preset("paper_default")
    assert a is not b


def test_unknown_preset_rejected():
    with pytest.raises(ValueError, match="unknown preset"):
        preset("nope")


def test_preset_names_sorted_and_complete():
    names = preset_names()
    assert names == sorted(names)
    assert set(names) == set(PRESETS)
    assert "rush_hour" in names and "paper_default" in names


@pytest.mark.parametrize("name", ["low_load", "hot_cell", "commuters"])
def test_presets_run_clean(name):
    s = preset(name).with_(
        scheme="adaptive", duration=500.0, warmup=100.0, seed=7
    )
    rep = run_scenario(s)
    assert rep.violations == 0


def test_cli_list_presets(capsys):
    from repro.__main__ import main

    assert main(["--list-presets"]) == 0
    out = capsys.readouterr().out.split()
    assert "rush_hour" in out


def test_cli_preset_runs(capsys):
    from repro.__main__ import main

    # Shrink via config? Presets have fixed durations; low_load is the
    # longest — use commuters with default duration but tiny via seed…
    # Simpler: just run the fastest preset end to end.
    rc = main(["--preset", "low_load", "--scheme", "fixed", "--json"])
    assert rc == 0
    import json

    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["violations"] == 0
