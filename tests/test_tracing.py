"""Tests for the protocol trace recorder and its conformance audits."""

import pytest

from repro.harness import Scenario, build_simulation
from repro.protocols import (
    Acquisition,
    AcqType,
    ChangeMode,
    Request,
    ReqType,
    Response,
    ResType,
    TraceRecorder,
    TraceViolation,
)
from repro.sim import Environment, Network


class _Stub:
    def __init__(self, node_id):
        self.node_id = node_id

    def on_message(self, envelope):
        pass


def make_net():
    env = Environment()
    net = Network(env)
    for i in range(3):
        net.attach(_Stub(i))
    return env, net


def test_clean_request_response_passes():
    env, net = make_net()
    rec = TraceRecorder(net)
    net.send(0, 1, Request(ReqType.UPDATE, 5, (0.0, 0), 0, round_id=7))
    net.send(1, 0, Response(ResType.GRANT, 1, 5, round_id=7))
    env.run()
    rec.check_all()


def test_unanswered_request_flagged():
    env, net = make_net()
    rec = TraceRecorder(net)
    net.send(0, 1, Request(ReqType.UPDATE, 5, (0.0, 0), 0, round_id=7))
    env.run()
    with pytest.raises(TraceViolation, match="never answered"):
        rec.check_requests_answered()


def test_duplicate_response_flagged():
    env, net = make_net()
    rec = TraceRecorder(net)
    net.send(0, 1, Request(ReqType.UPDATE, 5, (0.0, 0), 0, round_id=7))
    net.send(1, 0, Response(ResType.GRANT, 1, 5, round_id=7))
    net.send(1, 0, Response(ResType.REJECT, 1, 5, round_id=7))
    env.run()
    with pytest.raises(TraceViolation, match="duplicate response"):
        rec.check_requests_answered()


def test_orphan_response_flagged():
    env, net = make_net()
    rec = TraceRecorder(net)
    net.send(1, 0, Response(ResType.GRANT, 1, 5, round_id=99))
    env.run()
    with pytest.raises(TraceViolation, match="without matching request"):
        rec.check_requests_answered()


def test_unbalanced_search_ack_flagged():
    env, net = make_net()
    rec = TraceRecorder(net)
    net.send(1, 0, Response(ResType.SEARCH, 1, frozenset(), round_id=3))
    env.run()
    with pytest.raises(TraceViolation, match="unacknowledged"):
        rec.check_search_acks_balanced()


def test_balanced_search_ack_passes():
    env, net = make_net()
    rec = TraceRecorder(net)
    net.send(1, 0, Response(ResType.SEARCH, 1, frozenset(), round_id=3))
    net.send(0, 1, Acquisition(AcqType.SEARCH, 0, 5))
    env.run()
    rec.check_search_acks_balanced()


def test_ack_without_response_flagged():
    env, net = make_net()
    rec = TraceRecorder(net)
    net.send(0, 1, Acquisition(AcqType.SEARCH, 0, 5))
    env.run()
    with pytest.raises(TraceViolation, match="without a prior"):
        rec.check_search_acks_balanced()


def test_change_mode_without_status_flagged():
    env, net = make_net()
    rec = TraceRecorder(net)
    net.send(0, 1, ChangeMode(1, 0, round_id=4))
    env.run()
    with pytest.raises(TraceViolation, match="CHANGE_MODE"):
        rec.check_change_mode_answered()


def test_full_adaptive_simulation_trace_is_conformant():
    """End-to-end audit: a drained high-load adaptive run leaves a
    perfectly paired message trace (every request answered, every
    waiting counter balanced, every CHANGE_MODE acknowledged)."""
    sim = build_simulation(
        Scenario(
            scheme="adaptive",
            offered_load=9.0,
            mean_holding=60.0,
            duration=600.0,
            warmup=100.0,
            seed=83,
        )
    )
    recorder = TraceRecorder(sim.network)
    sim.source.start()
    sim.env.run(until=600)
    sim.source.horizon = 0
    sim.env.run()  # drain all calls and in-flight protocol rounds
    recorder.check_all()
    counts = recorder.counts_by_type()
    assert counts.get("Request", 0) > 100  # the audit saw real traffic
