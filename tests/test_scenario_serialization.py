"""Tests for Scenario (de)serialization and the --config CLI path."""

import json

import pytest

from repro.harness import Scenario
from repro.traffic import (
    HotspotLoad,
    PiecewiseLoad,
    RampLoad,
    TemporalHotspot,
    UniformLoad,
)


def test_round_trip_defaults():
    s = Scenario()
    restored = Scenario.from_json(s.to_json())
    assert restored == s


def test_round_trip_with_overrides():
    s = Scenario(scheme="basic_update", offered_load=9.5, seed=42,
                 alpha=4, mean_dwell=120.0, latency_spread=1.5)
    assert Scenario.from_dict(s.to_dict()) == s


@pytest.mark.parametrize(
    "pattern",
    [
        UniformLoad(0.05),
        HotspotLoad(0.01, [3, 4], 0.2),
        TemporalHotspot(0.01, [7], 0.3, start=10, end=50),
        RampLoad(0.0, 0.1, duration=100),
        PiecewiseLoad({0: 0.1, 5: 0.2}, default=0.01),
    ],
    ids=lambda p: type(p).__name__,
)
def test_round_trip_patterns(pattern):
    s = Scenario(pattern=pattern)
    restored = Scenario.from_json(s.to_json())
    # Patterns don't define __eq__; compare behaviorally.
    for cell in (0, 3, 5, 7, 20):
        for t in (0.0, 25.0, 200.0):
            assert restored.pattern.rate(cell, t) == s.pattern.rate(cell, t)
        assert restored.pattern.max_rate(cell) == s.pattern.max_rate(cell)


def test_unknown_field_rejected():
    with pytest.raises(ValueError, match="unknown scenario fields"):
        Scenario.from_dict({"bogus_field": 1})


def test_json_is_valid_and_sorted():
    text = Scenario(seed=3).to_json()
    data = json.loads(text)
    assert data["seed"] == 3
    assert list(data) == sorted(data)


def test_cli_config_round_trip(tmp_path, capsys):
    from repro.__main__ import main

    config = tmp_path / "scenario.json"
    s = Scenario(scheme="fixed", offered_load=2.0, duration=400.0,
                 warmup=100.0, seed=7)
    config.write_text(s.to_json())

    rc = main(["--config", str(config), "--scheme", "fixed", "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["scheme"] == "fixed"


def test_cli_dump_config(capsys):
    from repro.__main__ import main

    rc = main(["--scheme", "adaptive", "--load", "6", "--dump-config"])
    assert rc == 0
    data = json.loads(capsys.readouterr().out)
    assert data["offered_load"] == 6.0
    assert data["scheme"] == "adaptive"
