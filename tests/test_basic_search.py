"""Unit tests for the basic search scheme (Dong & Lai)."""


from repro.protocols import BasicSearchMSS

from conftest import drive, drive_all, make_stack


def test_acquisition_takes_one_round_trip():
    env, net, topo, stations, monitor, metrics = make_stack(BasicSearchMSS, T=1.0)
    ch = drive(env, stations[0].request_channel())
    assert ch is not None
    assert env.now == 2.0  # REQUEST out (T) + RESPONSE back (T)


def test_message_complexity_is_2N():
    env, net, topo, stations, monitor, metrics = make_stack(BasicSearchMSS)
    N = len(topo.IN(0))
    drive(env, stations[0].request_channel())
    assert net.total_sent == 2 * N
    assert net.sent_by_kind == {"Request": N, "Response": N}


def test_release_is_free():
    env, net, topo, stations, monitor, metrics = make_stack(BasicSearchMSS)
    ch = drive(env, stations[0].request_channel())
    before = net.total_sent
    stations[0].release_channel(ch)
    assert net.total_sent == before


def test_sequential_searches_in_one_cell():
    env, net, topo, stations, monitor, metrics = make_stack(BasicSearchMSS)
    s = stations[0]
    first = drive(env, s.request_channel())
    second = drive(env, s.request_channel())
    assert first != second


def test_concurrent_interfering_searches_pick_distinct_channels():
    env, net, topo, stations, monitor, metrics = make_stack(BasicSearchMSS)
    a = 0
    b = sorted(topo.IN(0))[0]
    got = drive_all(
        env, [stations[a].request_channel(), stations[b].request_channel()]
    )
    assert None not in got
    assert got[0] != got[1]
    assert not monitor.violations


def test_younger_search_deferred_and_slower():
    env, net, topo, stations, monitor, metrics = make_stack(BasicSearchMSS, T=1.0)
    a, b = 0, sorted(topo.IN(0))[0]
    results = {}

    def older():
        ch = yield from stations[a].request_channel()
        results["older"] = (ch, env.now)

    def younger():
        # Start strictly later so its timestamp is strictly greater.
        yield env.timeout(0.5)
        ch = yield from stations[b].request_channel()
        results["younger"] = (ch, env.now)

    drive_all(env, [older(), younger()])
    # Older search finishes in one round trip; younger was deferred by
    # the older one: without deferral it would finish at 0.5 + 2T = 2.5,
    # but a's response only leaves when a completes (t=2.0), so the
    # younger search finishes at 3.0 — with a's fresh choice included.
    assert results["older"][1] == 2.0
    assert results["younger"][1] == 3.0
    assert results["older"][0] != results["younger"][0]


def test_denies_when_region_saturated():
    env, net, topo, stations, monitor, metrics = make_stack(BasicSearchMSS)
    # Occupy every channel in cell 0's region: 70 channels spread over
    # the region exhaust the spectrum as seen from cell 0.
    s = stations[0]
    got = []
    while True:
        ch = drive(env, s.request_channel())
        if ch is None:
            break
        got.append(ch)
    # One cell alone can grab the whole spectrum (no interference from
    # its own usage); all 70 channels end up used.
    assert len(got) == 70
    assert metrics.dropped == 1


def test_neighbor_usage_limits_choices():
    env, net, topo, stations, monitor, metrics = make_stack(BasicSearchMSS)
    a, b = 0, sorted(topo.IN(0))[0]
    ch_a = drive(env, stations[a].request_channel())
    ch_b = drive(env, stations[b].request_channel())
    assert ch_a != ch_b
    # b picked the lowest channel not used by a.
    assert ch_b == min(set(range(70)) - {ch_a})


def test_far_cells_can_reuse_channel():
    env, net, topo, stations, monitor, metrics = make_stack(BasicSearchMSS)
    far = next(c for c in topo.grid if c != 0 and c not in topo.IN(0))
    ch0 = drive(env, stations[0].request_channel())
    chf = drive(env, stations[far].request_channel())
    assert ch0 == chf  # both pick the lowest free channel, legally


def test_search_is_stateless_between_requests():
    env, net, topo, stations, monitor, metrics = make_stack(BasicSearchMSS)
    s = stations[0]
    assert not hasattr(s, "U")
    drive(env, s.request_channel())
    assert s._collector is None
    assert not s._deferred
