"""Unit tests for the basic update scheme (Dong & Lai)."""


from repro.protocols import BasicUpdateMSS

from conftest import drive, drive_all, make_stack


def test_single_acquisition_round_trip_and_messages():
    env, net, topo, stations, monitor, metrics = make_stack(BasicUpdateMSS)
    N = len(topo.IN(0))
    ch = drive(env, stations[0].request_channel())
    assert ch == 0  # lowest free channel per local info
    assert env.now == 2.0  # one permission round trip
    # N requests + N responses + N acquisition broadcasts
    assert net.sent_by_kind == {"Request": N, "Response": N, "Acquisition": N}


def test_release_broadcast():
    env, net, topo, stations, monitor, metrics = make_stack(BasicUpdateMSS)
    N = len(topo.IN(0))
    ch = drive(env, stations[0].request_channel())
    stations[0].release_channel(ch)
    assert net.sent_by_kind["Release"] == N


def test_neighbors_mirror_usage():
    env, net, topo, stations, monitor, metrics = make_stack(BasicUpdateMSS)
    ch = drive(env, stations[0].request_channel())
    env.run()  # let the acquisition broadcast land
    for j in topo.IN(0):
        assert ch in stations[j].U[0]
    stations[0].release_channel(ch)
    env.run()
    for j in topo.IN(0):
        assert ch not in stations[j].U[0]


def test_local_info_steers_channel_pick():
    env, net, topo, stations, monitor, metrics = make_stack(BasicUpdateMSS)
    b = sorted(topo.IN(0))[0]
    ch0 = drive(env, stations[0].request_channel())
    env.run()
    chb = drive(env, stations[b].request_channel())
    assert chb == min(set(range(70)) - {ch0})


def test_concurrent_same_channel_conflict_resolved_by_timestamp():
    env, net, topo, stations, monitor, metrics = make_stack(BasicUpdateMSS)
    a, b = 0, sorted(topo.IN(0))[0]
    # Both see channel 0 free and request it simultaneously.
    got = drive_all(
        env, [stations[a].request_channel(), stations[b].request_channel()]
    )
    assert None not in got
    assert got[0] != got[1]
    assert not monitor.violations
    # The loser needed at least one retry.
    assert metrics.max_attempts() >= 2


def test_far_concurrent_requests_may_share_channel():
    env, net, topo, stations, monitor, metrics = make_stack(BasicUpdateMSS)
    far = next(c for c in topo.grid if c != 0 and c not in topo.IN(0))
    got = drive_all(
        env, [stations[0].request_channel(), stations[far].request_channel()]
    )
    assert got[0] == got[1] == 0  # both legally take the lowest channel


def test_drop_when_local_info_shows_no_free_channel():
    env, net, topo, stations, monitor, metrics = make_stack(BasicUpdateMSS)
    s = stations[0]
    for _ in range(70):
        assert drive(env, s.request_channel()) is not None
    assert drive(env, s.request_channel()) is None


def test_max_attempts_cap():
    env, net, topo, stations, monitor, metrics = make_stack(
        BasicUpdateMSS, max_attempts=1
    )
    a, b = 0, sorted(topo.IN(0))[0]
    got = drive_all(
        env, [stations[a].request_channel(), stations[b].request_channel()]
    )
    # With a single attempt, the timestamp loser gives up instead of
    # retrying; at most one request succeeds.
    assert got.count(None) >= 1 or got[0] != got[1]


def test_reject_when_channel_in_use():
    env, net, topo, stations, monitor, metrics = make_stack(BasicUpdateMSS)
    a, b = 0, sorted(topo.IN(0))[0]
    ch = drive(env, stations[a].request_channel())
    env.run()
    # b now knows; but force the race: clear b's mirror so it asks for
    # the same channel, and a must reject.
    stations[b].U[a].discard(ch)
    chb = drive(env, stations[b].request_channel())
    assert chb != ch
    assert not monitor.violations
