"""Handler-level edge tests for the baseline schemes' state machines."""

import pytest

from repro.protocols import (
    Acquisition,
    AcqType,
    AdvancedUpdateMSS,
    BasicSearchMSS,
    BasicUpdateMSS,
    NO_CHANNEL,
    Release,
    ReqType,
    Request,
    ResType,
    Response,
)

from conftest import drive, make_stack


# ------------------------------------------------------------ basic search ----
def test_search_responder_snapshot_is_frozen():
    env, net, topo, stations, monitor, metrics = make_stack(BasicSearchMSS)
    s = stations[0]
    j = sorted(topo.IN(0))[0]
    ch = drive(env, s.request_channel())
    sent = []
    net.on_send.append(
        lambda e: sent.append(e.payload)
        if isinstance(e.payload, Response)
        else None
    )
    s._on_Request(Request(ReqType.SEARCH, NO_CHANNEL, (99.0, j), j, 1))
    snapshot = sent[-1].payload
    # Mutating use after responding must not affect the sent snapshot.
    s.use.add(55)
    assert 55 not in snapshot
    assert snapshot == frozenset({ch})
    s.use.discard(55)


def test_search_stale_response_is_ignored():
    env, net, topo, stations, monitor, metrics = make_stack(BasicSearchMSS)
    s = stations[0]
    # A response for a round that does not exist must not crash.
    s._on_Response(Response(ResType.SEARCH, 5, frozenset({1}), round_id=777))
    assert s._collector is None


def test_search_request_from_equal_ts_impossible_but_defended():
    env, net, topo, stations, monitor, metrics = make_stack(BasicSearchMSS)
    s = stations[0]
    j = sorted(topo.IN(0))[0]
    s._searching = True
    s._search_ts = (5.0, 0)
    # Older request (smaller ts) answered immediately even mid-search.
    s._on_Request(Request(ReqType.SEARCH, NO_CHANNEL, (1.0, j), j, 2))
    assert not s._deferred
    # Younger request deferred.
    s._on_Request(Request(ReqType.SEARCH, NO_CHANNEL, (9.0, j), j, 3))
    assert s._deferred == [(j, 3)]
    s._searching = False
    s._search_ts = None
    s._deferred.clear()


def test_search_rejects_update_requests():
    env, net, topo, stations, monitor, metrics = make_stack(BasicSearchMSS)
    s = stations[0]
    with pytest.raises(AssertionError):
        s._on_Request(Request(ReqType.UPDATE, 4, (1.0, 2), 2, 1))


# ------------------------------------------------------------ basic update ----
def test_update_grant_without_pending_conflict():
    env, net, topo, stations, monitor, metrics = make_stack(BasicUpdateMSS)
    s = stations[0]
    j = sorted(topo.IN(0))[0]
    s._on_Request(Request(ReqType.UPDATE, 9, (1.0, j), j, 4))
    env.run()
    # Granted (we don't use 9, no pending conflict): check via message
    # counters — exactly one Response was sent.
    assert net.sent_by_kind.get("Response") == 1


def test_update_pending_same_channel_older_wins():
    env, net, topo, stations, monitor, metrics = make_stack(BasicUpdateMSS)
    s = stations[0]
    j = sorted(topo.IN(0))[0]
    s._pending = (9, (5.0, 0))
    s._abort = False
    # Their request is older → we grant and abort our own attempt.
    s._on_Request(Request(ReqType.UPDATE, 9, (1.0, j), j, 4))
    assert s._abort is True
    # A younger competitor is rejected and does not abort us.
    s._abort = False
    s._on_Request(Request(ReqType.UPDATE, 9, (9.0, j), j, 5))
    assert s._abort is False
    s._pending = None


def test_update_mirrors_follow_acquisition_release():
    env, net, topo, stations, monitor, metrics = make_stack(BasicUpdateMSS)
    s = stations[0]
    j = sorted(topo.IN(0))[0]
    s._on_Acquisition(Acquisition(AcqType.NON_SEARCH, j, 13))
    assert 13 in s.U[j]
    assert 13 in s.interfered()
    s._on_Release(Release(j, 13))
    assert 13 not in s.interfered()


def test_update_stale_response_ignored():
    env, net, topo, stations, monitor, metrics = make_stack(BasicUpdateMSS)
    s = stations[0]
    s._on_Response(Response(ResType.GRANT, 4, 9, round_id=321))
    assert s._collector is None


# --------------------------------------------------------- advanced update ----
def test_advanced_rejects_arbitration_for_foreign_channel():
    env, net, topo, stations, monitor, metrics = make_stack(AdvancedUpdateMSS)
    s = stations[0]
    foreign = min(set(range(70)) - set(topo.PR(0)))
    with pytest.raises(AssertionError, match="non-primary"):
        s._on_Request(Request(ReqType.UPDATE, foreign, (1.0, 2), 2, 1))


def test_advanced_same_requester_refreshes_grant():
    env, net, topo, stations, monitor, metrics = make_stack(AdvancedUpdateMSS)
    s = stations[0]
    ch = min(topo.PR(0))
    j = sorted(topo.IN(0))[0]
    assert s._arbitrate(ch, j, (1.0, j)) is ResType.GRANT
    # Retry from the same requester (e.g. lost release race) re-grants.
    assert s._arbitrate(ch, j, (2.0, j)) is ResType.GRANT
    assert s.outstanding[ch] == (j, (2.0, j))


def test_advanced_interference_aware_rejection_scope():
    env, net, topo, stations, monitor, metrics = make_stack(AdvancedUpdateMSS)
    s = stations[0]
    ch = min(topo.PR(0))
    user = sorted(topo.IN(0))[0]
    s._on_Acquisition(Acquisition(AcqType.NON_SEARCH, user, ch))
    # A requester far from the user may still be granted.
    far = next(
        c for c in topo.IN(0)
        if c != user and c not in topo.IN(user)
    )
    assert s._arbitrate(ch, far, (1.0, far)) is ResType.GRANT


def test_advanced_notify_sets_cover_arbiters():
    env, net, topo, stations, monitor, metrics = make_stack(AdvancedUpdateMSS)
    s = stations[0]
    for ch in range(0, 70, 17):
        if ch in topo.PR(0):
            continue
        notify = set(s._notify[ch])
        assert set(s.arbiters(ch)) <= notify
        assert set(topo.IN(0)) <= notify
