"""Assorted edge-case coverage across small APIs."""


from repro.cellular import CellularTopology, HexGrid
from repro.harness import Scenario, render_table, run_scenario
from repro.sim import DeterministicLatency, Environment, Network


def test_run_until_current_time_is_noop():
    env = Environment()
    env.timeout(5)
    env.run(until=5)
    env.run(until=5)  # boundary: until == now
    assert env.now == 5


def test_network_node_accessors():
    env = Environment()
    net = Network(env, DeterministicLatency(1.0))

    class N:
        def __init__(self, i):
            self.node_id = i

        def on_message(self, e):
            pass

    a, b = N(1), N(2)
    net.attach(a)
    net.attach(b)
    assert net.node(1) is a
    assert sorted(net.node_ids) == [1, 2]


def test_ring_on_planar_edge_cell():
    g = HexGrid(4, 4, wrap=False)
    corner = 0
    ring1 = g.ring(corner, 1)
    assert 0 < len(ring1) < 6  # boundary cuts the ring
    assert all(g.distance(corner, c) == 1 for c in ring1)


def test_describe_weighted_partition():
    weights = {0: 16, 1: 9, 2: 9, 3: 9, 4: 9, 5: 9, 6: 9}
    topo = CellularTopology(
        7, 7, num_channels=70, wrap=True, channels_per_color=weights
    )
    text = topo.describe()
    assert "9-16 primaries/cell" in text


def test_render_table_no_rows():
    out = render_table(["a", "b"], [])
    assert "a" in out and "b" in out


def test_report_handoff_rate_without_mobility_is_zero():
    rep = run_scenario(
        Scenario(scheme="fixed", offered_load=2.0, duration=400.0,
                 warmup=100.0, mean_holding=60.0)
    )
    assert rep.handoff_failure_rate == 0.0
    assert rep.measured_n_borrow == 0.0


def test_report_mode_changes_zero_for_fixed():
    rep = run_scenario(
        Scenario(scheme="fixed", offered_load=2.0, duration=400.0,
                 warmup=100.0, mean_holding=60.0)
    )
    assert rep.mode_changes == 0


def test_scenario_interference_radius_explicit():
    # Radius 1 with k=7 is legal (stricter than needed) and shrinks IN.
    topo = CellularTopology(
        7, 7, num_channels=70, cluster_size=7, interference_radius=1,
        wrap=True,
    )
    assert all(len(topo.IN(c)) == 6 for c in topo.grid)


def test_adaptive_measured_n_borrow_populated():
    rep = run_scenario(
        Scenario(scheme="adaptive", offered_load=8.0, duration=600.0,
                 warmup=100.0, mean_holding=60.0, seed=4)
    )
    assert rep.measured_n_borrow > 0.0


def test_summary_mentions_all_key_metrics():
    rep = run_scenario(
        Scenario(scheme="adaptive", offered_load=4.0, duration=400.0,
                 warmup=100.0, mean_holding=60.0)
    )
    text = rep.summary()
    for needle in ("drop rate", "acquisition time", "messages",
                   "xi(local/update/search)", "fairness"):
        assert needle in text
