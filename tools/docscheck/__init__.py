"""Documentation cross-reference checker.

Three passes over the repo's markdown (root ``*.md`` plus
``docs/**/*.md``, minus the driver-metadata files):

1. **Relative links** — every ``[text](target)`` that is not external
   (``http(s)://``, ``mailto:``), not an in-page anchor (``#...``) and
   not absolute must resolve to an existing file or directory,
   relative to the file that contains it.
2. **Code-path references** — every backticked repo path
   (``src/...``, ``tools/...``, ``docs/...``, ``tests/...``,
   ``benchmarks/...``, ``examples/...``) must exist, so prose never
   points at moved or deleted code.  Paths carrying glob/placeholder
   characters are ignored; known CI-generated artifacts are allowed
   to be absent from a fresh checkout.
3. **Rule-catalog correspondence** — the rule IDs documented as
   ``### <ID>`` headings in docs/CHECKS.md must match the IDs
   implemented under ``tools/check``/``tools/analyze``, both ways
   (modulo the internal sentinel ``SIM000``, which is deliberately
   undocumented).

Run as ``python -m tools.docscheck`` (exit 1 on any problem); CI runs
it in the docs job.  ``tests/test_docscheck.py`` covers the failure
modes on a synthetic tree and pins the real repo clean.
"""

from __future__ import annotations

import pathlib
import re
from typing import List

__all__ = [
    "EXCLUDED",
    "GENERATED_PATHS",
    "INTERNAL_RULE_IDS",
    "check_code_paths",
    "check_links",
    "check_rule_catalog",
    "markdown_files",
    "run_all",
]

#: Root-level driver/metadata files whose links are not ours to keep.
EXCLUDED = frozenset(
    {"PAPER.md", "PAPERS.md", "SNIPPETS.md", "ISSUE.md", "CHANGES.md"}
)

#: Repo paths that docs may reference although they only exist after a
#: bench/CI run (generated artifacts, never committed).
GENERATED_PATHS = frozenset({"benchmarks/fastlane-divergence.json"})

#: Rule IDs that exist in the checker source but are deliberately not
#: part of the documented catalog (internal sentinels).
INTERNAL_RULE_IDS = frozenset({"SIM000"})

#: ``[text](target)`` and ``![alt](target)``, target up to the first
#: whitespace (drops optional markdown link titles).
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Backticked repo path: a known top-level dir, then plain path chars.
_PATH_RE = re.compile(
    r"`((?:src|tools|docs|tests|benchmarks|examples)/[A-Za-z0-9_.\-/]+)`"
)

#: ``### SIM001 — title`` headings in the CHECKS.md rule catalog.
_RULE_HEADING_RE = re.compile(r"^###\s+((?:SIM|ANA)\d{3})\b", re.M)

#: Any rule-ID-shaped token in checker/analyzer source.
_RULE_ID_RE = re.compile(r"\b((?:SIM|ANA)\d{3})\b")


def markdown_files(root: pathlib.Path) -> List[pathlib.Path]:
    """The markdown files under our contract, sorted for stable output."""
    files = [
        p for p in root.glob("*.md") if p.name not in EXCLUDED
    ]
    files.extend(root.glob("docs/**/*.md"))
    return sorted(files)


def _fenced_stripped(text: str) -> str:
    """Markdown with fenced code blocks and inline code spans blanked
    (link syntax inside code is example output, not a navigable
    reference)."""
    out: List[str] = []
    fenced = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            out.append("")
            continue
        out.append("" if fenced else re.sub(r"`[^`]*`", "``", line))
    return "\n".join(out)


def check_links(root: pathlib.Path, files: List[pathlib.Path]) -> List[str]:
    """Pass 1: every relative markdown link must resolve."""
    problems: List[str] = []
    for path in files:
        text = _fenced_stripped(path.read_text(encoding="utf-8"))
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            if target.startswith("/"):
                problems.append(
                    f"{path.relative_to(root)}: absolute link {target!r} "
                    "will not survive a checkout elsewhere"
                )
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(root)}: broken link {target!r}"
                )
    return problems


def check_code_paths(
    root: pathlib.Path, files: List[pathlib.Path]
) -> List[str]:
    """Pass 2: every backticked repo path must exist on disk."""
    problems: List[str] = []
    for path in files:
        text = path.read_text(encoding="utf-8")
        for match in _PATH_RE.finditer(text):
            ref = match.group(1).rstrip("/").rstrip(".")
            if ref in GENERATED_PATHS:
                continue
            if not (root / ref).exists():
                problems.append(
                    f"{path.relative_to(root)}: code path `{ref}` "
                    "does not exist"
                )
    return problems


def check_rule_catalog(root: pathlib.Path) -> List[str]:
    """Pass 3: CHECKS.md headings <-> implemented rule IDs, both ways."""
    problems: List[str] = []
    checks_md = root / "docs" / "CHECKS.md"
    if not checks_md.exists():
        return [f"docs/CHECKS.md missing (looked in {root})"]
    documented = set(_RULE_HEADING_RE.findall(checks_md.read_text()))
    implemented: set = set()
    for source_dir in ("tools/check", "tools/analyze"):
        for source in (root / source_dir).glob("**/*.py"):
            implemented.update(_RULE_ID_RE.findall(source.read_text()))
    for rule in sorted(documented - implemented):
        problems.append(
            f"docs/CHECKS.md documents {rule} but no checker source "
            "mentions it"
        )
    for rule in sorted(implemented - documented - INTERNAL_RULE_IDS):
        problems.append(
            f"rule {rule} is implemented but has no ### heading in "
            "docs/CHECKS.md"
        )
    return problems


def run_all(root: pathlib.Path) -> List[str]:
    """All three passes; the empty list means the docs are consistent."""
    files = markdown_files(root)
    return (
        check_links(root, files)
        + check_code_paths(root, files)
        + check_rule_catalog(root)
    )
