"""CLI entry point: ``python -m tools.docscheck [ROOT]``."""

from __future__ import annotations

import pathlib
import sys

from . import markdown_files, run_all


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = pathlib.Path(argv[0]) if argv else pathlib.Path(__file__).parents[2]
    root = root.resolve()
    problems = run_all(root)
    for problem in problems:
        print(f"docscheck: {problem}", file=sys.stderr)
    if problems:
        print(f"docscheck: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"docscheck: {len(markdown_files(root))} markdown files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
