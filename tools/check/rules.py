"""The SIM rule set.

Each rule declares a code, a one-line description, the path fragments
it applies to (matched against the file's POSIX path), optional
exclusions, and a ``run(tree, ctx)`` generator yielding
``(node, message)`` pairs.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from .engine import CheckContext

__all__ = ["Rule", "RULES"]

Match = Tuple[ast.AST, str]

#: Simulation code: everything that runs inside the event loop.
_SIM_SCOPE = ("src/repro/sim", "src/repro/protocols", "src/repro/core")


class Rule:
    """Base class: subclasses set the class attributes and ``run``."""

    code: str = ""
    description: str = ""
    paths: Tuple[str, ...] = ()
    excludes: Tuple[str, ...] = ()

    def run(self, tree: ast.Module, ctx: CheckContext) -> Iterator[Match]:
        raise NotImplementedError


class NoWallClock(Rule):
    """SIM001: simulated time comes from ``env.now``, never the host."""

    code = "SIM001"
    description = "no wall-clock reads in simulation code (use env.now)"
    paths = _SIM_SCOPE

    #: Canonical callables that read the host clock.
    BANNED = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )

    def run(self, tree: ast.Module, ctx: CheckContext) -> Iterator[Match]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.dotted_name(node.func)
            if name in self.BANNED:
                yield node, (
                    f"wall-clock call {name}() in simulation code; "
                    "simulated time must come from env.now"
                )


class NoGlobalRandom(Rule):
    """SIM002: all randomness flows through seeded ``sim/rng`` streams."""

    code = "SIM002"
    description = "no module-global RNG calls (use repro.sim.rng streams)"
    paths = ("src/repro",)
    excludes = ("src/repro/sim/rng.py",)

    #: numpy.random names that *construct* seeded generators — the
    #: sanctioned building blocks rng.py itself is made of.
    NUMPY_ALLOWED = frozenset(
        {
            "default_rng",
            "Generator",
            "SeedSequence",
            "BitGenerator",
            "PCG64",
            "PCG64DXSM",
            "Philox",
            "SFC64",
            "MT19937",
        }
    )

    def run(self, tree: ast.Module, ctx: CheckContext) -> Iterator[Match]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.dotted_name(node.func)
            if name is None:
                continue
            if name.startswith("random.") or name == "random":
                yield node, (
                    f"global stdlib RNG call {name}(); draw from a "
                    "seeded stream (repro.sim.rng) instead"
                )
            elif name.startswith("numpy.random."):
                tail = name[len("numpy.random."):]
                if tail.split(".")[0] not in self.NUMPY_ALLOWED:
                    yield node, (
                        f"global numpy RNG call {name}(); use a "
                        "Generator from repro.sim.rng instead"
                    )


class NoDirectUseMutation(Rule):
    """SIM003: channel-use transitions go through the base-class API."""

    code = "SIM003"
    description = "no direct self.use mutation outside protocols/base.py"
    paths = ("src/repro/protocols", "src/repro/core")
    excludes = ("src/repro/protocols/base.py",)

    MUTATORS = frozenset(
        {
            "add",
            "discard",
            "remove",
            "clear",
            "pop",
            "update",
            "difference_update",
            "intersection_update",
            "symmetric_difference_update",
        }
    )

    @staticmethod
    def _is_self_use(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "use"
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        )

    def run(self, tree: ast.Module, ctx: CheckContext) -> Iterator[Match]:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self.MUTATORS
                and self._is_self_use(node.func.value)
            ):
                yield node, (
                    f"direct self.use.{node.func.attr}(); acquire and "
                    "release channels through the base MSS API "
                    "(_grab/_drop_from_use) so the monitor sees it"
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if self._is_self_use(target):
                        yield node, (
                            "rebinding self.use; channel state is owned "
                            "by the base MSS class"
                        )


class NoDirectHandlerCall(Rule):
    """SIM004: only the network fabric may invoke message handlers."""

    code = "SIM004"
    description = "no direct handler invocation (messages go via Network)"
    paths = ("src/repro/protocols", "src/repro/core")

    def run(self, tree: ast.Module, ctx: CheckContext) -> Iterator[Match]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "on_message" or func.attr.startswith("_on_"):
                yield node, (
                    f"direct call to handler .{func.attr}(); deliver "
                    "messages through Network.send so latency, ordering "
                    "and sanitizers apply"
                )


class NoBareExceptInHandlers(Rule):
    """SIM005: protocol message handlers never swallow errors blindly."""

    code = "SIM005"
    description = "no bare except (or except Exception: pass) in message handlers"
    paths = ("src/repro/protocols", "src/repro/core")

    #: Function names treated as message-handling code: the dispatch
    #: entry point plus every ``_on_<MessageType>`` handler.
    @staticmethod
    def _is_handler(func: ast.AST) -> bool:
        return isinstance(
            func, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and (func.name == "on_message" or func.name.startswith("_on_"))

    def run(self, tree: ast.Module, ctx: CheckContext) -> Iterator[Match]:
        for func in ast.walk(tree):
            if not self._is_handler(func):
                continue
            for node in ast.walk(func):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if node.type is None:
                    yield node, (
                        f"bare except: in handler {func.name}(); a "
                        "swallowed protocol error silently corrupts "
                        "distributed state — catch the specific "
                        "exception (and re-raise what you can't handle)"
                    )
                    continue
                # `except Exception: pass` is the same trap with extra
                # keystrokes: every protocol bug becomes a dropped
                # message.
                name = ctx.dotted_name(node.type)
                only_pass = all(isinstance(s, ast.Pass) for s in node.body)
                if only_pass and name in ("Exception", "BaseException"):
                    yield node, (
                        f"except {name}: pass in handler {func.name}(); "
                        "protocol errors must not be silently dropped"
                    )


#: The active rule registry, in code order.
RULES: List[Rule] = [
    NoWallClock(),
    NoGlobalRandom(),
    NoDirectUseMutation(),
    NoDirectHandlerCall(),
    NoBareExceptInHandlers(),
]
