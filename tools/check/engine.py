"""Core of the SIM lint: parsing, alias resolution, noqa, reporting.

The engine parses each file once, builds an import-alias table so rules
match *canonical* dotted names (``import numpy as np`` makes
``np.random.seed`` resolve to ``numpy.random.seed``), runs every rule
whose path scope covers the file, and filters findings through
line-level ``# repro: noqa(...)`` pragmas.

Suppressions are themselves checked: a pragma that silences nothing in
the current run — a bare ``# repro: noqa`` with no finding on the line,
or a named code that belongs to a rule scoped to the file but did not
fire — is reported as ``SIM100`` (stale suppression).  Codes naming
rules *outside* the current rule set are left alone, so a pragma for
the whole-program analyzer (``tools.analyze``) does not trip the line
lint and vice versa.  ``SIM100`` itself cannot be suppressed.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path, PurePath
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set

__all__ = [
    "Finding",
    "CheckContext",
    "check_file",
    "check_paths",
    "iter_python_files",
    "STALE_NOQA_CODE",
]

#: ``# repro: noqa`` or ``# repro: noqa(SIM001, SIM003)``
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\s*(?:\(\s*([A-Z0-9_,\s]+?)\s*\))?", re.IGNORECASE
)

#: Sentinel meaning "every rule is suppressed on this line".
_ALL = "ALL"

#: Code reported for a ``# repro: noqa`` pragma that suppresses nothing.
STALE_NOQA_CODE = "SIM100"

#: Rule documentation lives in one catalog; each code has an anchor.
_DOC_URL_BASE = "docs/CHECKS.md#"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a precise source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        """The shared machine-readable schema (``--format json``).

        Both ``tools.check`` and ``tools.analyze`` emit this shape, so
        downstream tooling needs exactly one parser.
        """
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "url": f"{_DOC_URL_BASE}{self.code.lower()}",
        }


class CheckContext:
    """Per-file facts shared by all rules: alias table and resolution."""

    def __init__(self, path: str, tree: ast.Module) -> None:
        self.path = path
        self.tree = tree
        #: local name -> canonical dotted prefix it stands for.
        self.aliases: Dict[str, str] = {}
        self._collect_aliases(tree)

    def _collect_aliases(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # ``import a.b.c`` binds ``a`` (to a); with asname
                    # it binds the full dotted path.
                    target = alias.name if alias.asname else local
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative import: stays package-local
                    continue
                module = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{module}.{alias.name}"

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a Name/Attribute chain, or None.

        Chains rooted in anything but a plain name (calls, subscripts,
        ``self``) resolve to None — rules that care about object
        attributes match the raw AST instead.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


def _noqa_lines(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of suppressed codes (or {_ALL})."""
    suppressed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        codes = match.group(1)
        if codes is None:
            suppressed[lineno] = {_ALL}
        else:
            suppressed[lineno] = {
                c.strip().upper() for c in codes.split(",") if c.strip()
            }
    return suppressed


def _scoped_rules(path: str, rules: Sequence[Any]) -> List[Any]:
    posix = PurePath(path).as_posix()
    chosen = []
    for rule in rules:
        if any(fragment in posix for fragment in rule.excludes):
            continue
        if any(fragment in posix for fragment in rule.paths):
            chosen.append(rule)
    return chosen


def _stale_suppressions(
    path: str,
    suppressed: Dict[int, Set[str]],
    used: Dict[int, Set[str]],
    known_codes: Set[str],
) -> List[Finding]:
    """SIM100 findings for pragmas that silenced nothing this run.

    A named code is judged only when it belongs to a rule applicable to
    this file in this run — a pragma for a rule owned by the *other*
    analyzer (or scoped elsewhere) is not ours to condemn.
    """
    findings: List[Finding] = []
    for line, codes in sorted(suppressed.items()):
        used_here = used.get(line, set())
        if _ALL in codes:
            if not used_here:
                findings.append(
                    Finding(
                        path,
                        line,
                        0,
                        STALE_NOQA_CODE,
                        "stale suppression: bare '# repro: noqa' pragma "
                        "suppresses nothing on this line — remove it",
                    )
                )
            continue
        for code in sorted(codes):
            if code in known_codes and code not in used_here:
                findings.append(
                    Finding(
                        path,
                        line,
                        0,
                        STALE_NOQA_CODE,
                        f"stale suppression: noqa({code}) suppresses "
                        "nothing on this line — remove it",
                    )
                )
    return findings


def check_file(path: str, rules: Optional[Sequence[Any]] = None) -> List[Finding]:
    """Run every applicable rule over one file; returns its findings."""
    if rules is None:
        from .rules import RULES as rules  # late import: rules use engine types
    source = Path(path).read_text()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path,
                exc.lineno or 1,
                (exc.offset or 1) - 1,
                "SIM000",
                f"syntax error: {exc.msg}",
            )
        ]
    applicable = _scoped_rules(path, rules)
    if not applicable:
        return []
    ctx = CheckContext(path, tree)
    suppressed = _noqa_lines(source)
    #: line -> codes whose findings a pragma actually swallowed.
    used: Dict[int, Set[str]] = {}
    findings: List[Finding] = []
    for rule in applicable:
        for node, message in rule.run(tree, ctx):
            line = getattr(node, "lineno", 1)
            codes = suppressed.get(line)
            if codes is not None and (_ALL in codes or rule.code in codes):
                used.setdefault(line, set()).add(rule.code)
                continue
            findings.append(
                Finding(path, line, getattr(node, "col_offset", 0), rule.code, message)
            )
    if suppressed:
        # SIM100 itself is always known: suppressing the stale-pragma
        # check with a pragma is exactly the loop it exists to close.
        known_codes = {rule.code for rule in applicable} | {STALE_NOQA_CODE}
        findings.extend(
            _stale_suppressions(path, suppressed, used, known_codes)
        )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            yield from sorted(str(f) for f in p.rglob("*.py"))
        elif p.suffix == ".py":
            yield str(p)


def check_paths(
    paths: Iterable[str], rules: Optional[Sequence[Any]] = None
) -> List[Finding]:
    """Check every Python file under ``paths``; returns all findings."""
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(check_file(file_path, rules=rules))
    return findings
