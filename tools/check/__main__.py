"""CLI entry point: ``python -m tools.check [paths...]``.

Exits 1 if any finding is reported, 0 on a clean tree.  ``--format
json`` emits the shared finding schema (code, path, line, col,
message, rule-doc URL) also used by ``python -m tools.analyze``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Optional, Sequence

from .engine import check_paths
from .rules import RULES


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tools.check",
        description="Simulation-specific static checks (SIM001-SIM005).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tools"],
        help="files or directories to check (default: src tools)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.code}  {rule.description}")
        return 0

    missing = [p for p in args.paths if not pathlib.Path(p).exists()]
    if missing:
        for p in missing:
            print(f"error: no such file or directory: {p}", file=sys.stderr)
        return 2

    findings = check_paths(args.paths)
    if args.format == "json":
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding)
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
