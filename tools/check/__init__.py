"""Simulation-specific static checks (``python -m tools.check``).

A small AST lint that enforces repository invariants generic linters
cannot know about:

========  =============================================================
SIM001    No wall-clock reads inside simulation code — simulated time
          comes from ``env.now``, never from ``time`` / ``datetime``.
SIM002    No module-global randomness — all stochastic draws go
          through seeded generators from ``repro.sim.rng`` so runs
          stay reproducible.
SIM003    Protocol subclasses never mutate channel-use state directly;
          acquisition and release go through the ``base.py`` API so
          the interference monitor and metrics see every transition.
SIM004    Event handlers are invoked only by the network fabric —
          protocol code never calls ``on_message`` / ``_on_*`` itself,
          which would bypass latency, ordering and the sanitizers.
SIM005    No bare ``except`` (or ``except Exception: pass``) inside
          message handlers — protocol errors must never be silently
          dropped.
SIM100    No stale suppressions — a ``# repro: noqa`` pragma that
          silences nothing is itself a finding (and cannot be
          suppressed).
========  =============================================================

Suppress a finding on one line with ``# repro: noqa(SIM001)`` (comma
list allowed; bare ``# repro: noqa`` silences every rule on the line).

The determinism rule family SIM006–SIM009 shares this engine but is
run by the whole-program analyzer, ``python -m tools.analyze`` (see
``tools/analyze``), alongside the message-flow and shard-safety
passes.  Both CLIs accept ``--format json`` and emit the same finding
schema (:meth:`Finding.to_dict`).
"""

from .engine import (
    STALE_NOQA_CODE,
    Finding,
    check_file,
    check_paths,
    iter_python_files,
)
from .rules import RULES, Rule

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "STALE_NOQA_CODE",
    "check_file",
    "check_paths",
    "iter_python_files",
]
