"""Simulation-specific static checks (``python -m tools.check``).

A small AST lint that enforces repository invariants generic linters
cannot know about:

========  =============================================================
SIM001    No wall-clock reads inside simulation code — simulated time
          comes from ``env.now``, never from ``time`` / ``datetime``.
SIM002    No module-global randomness — all stochastic draws go
          through seeded generators from ``repro.sim.rng`` so runs
          stay reproducible.
SIM003    Protocol subclasses never mutate channel-use state directly;
          acquisition and release go through the ``base.py`` API so
          the interference monitor and metrics see every transition.
SIM004    Event handlers are invoked only by the network fabric —
          protocol code never calls ``on_message`` / ``_on_*`` itself,
          which would bypass latency, ordering and the sanitizers.
========  =============================================================

Suppress a finding on one line with ``# repro: noqa(SIM001)`` (comma
list allowed; bare ``# repro: noqa`` silences every rule on the line).
"""

from .engine import Finding, check_file, check_paths, iter_python_files
from .rules import RULES, Rule

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "check_file",
    "check_paths",
    "iter_python_files",
]
