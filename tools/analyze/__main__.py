"""CLI entry point: ``python -m tools.analyze [paths...]``.

Runs all four passes (message-flow, shard-safety, snapshot-escape,
determinism lint) over the given paths (default ``src/repro``),
compares the merged findings against the committed baseline, and exits
1 when any finding is not baselined.  ``--format json`` emits the
shared finding schema (code, path, line, col, message, rule-doc URL)
also used by ``python -m tools.check --format json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional, Sequence

from tools.check.engine import Finding, check_paths, iter_python_files

from .baseline import DEFAULT_BASELINE, load_baseline, partition, write_baseline
from .determinism import DETERMINISM_RULES
from .flow import render_dot, run_flow_pass
from .model import build_model
from .shard import run_shard_pass
from .snapshot import run_snapshot_pass

_PASSES = (
    ("flow", "message-flow conformance (ANA101-ANA104)"),
    ("shard", "shard-safety escape analysis (ANA201-ANA204)"),
    ("snapshot", "snapshot-escape analysis (ANA301-ANA303)"),
    ("determinism", "determinism lint family (SIM006-SIM009)"),
)


def _repo_root() -> pathlib.Path:
    return pathlib.Path(__file__).resolve().parent.parent.parent


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tools.analyze",
        description="Whole-program protocol conformance analyzer.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file of accepted findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--dot",
        metavar="FILE",
        default=None,
        help="write the message-flow graph (GraphViz DOT) to FILE",
    )
    parser.add_argument(
        "--shard-report",
        metavar="FILE",
        default=None,
        help="write the machine-readable shard-safety report to FILE",
    )
    parser.add_argument(
        "--snapshot-report",
        metavar="FILE",
        default=None,
        help="write the machine-readable snapshot-safety report to FILE",
    )
    parser.add_argument(
        "--list-passes",
        action="store_true",
        help="print the pass registry and exit",
    )
    args = parser.parse_args(argv)

    if args.list_passes:
        for name, description in _PASSES:
            print(f"{name:13s} {description}")
        for rule in DETERMINISM_RULES:
            print(f"{rule.code:13s} {rule.description}")
        return 0

    missing = [p for p in args.paths if not pathlib.Path(p).exists()]
    if missing:
        for p in missing:
            print(f"error: no such file or directory: {p}", file=sys.stderr)
        return 2

    files = list(iter_python_files(args.paths))
    model = build_model(files)
    findings: List[Finding] = []
    findings.extend(run_flow_pass(model))
    shard_findings, shard_report = run_shard_pass(files)
    findings.extend(shard_findings)
    snapshot_findings, snapshot_report = run_snapshot_pass(files)
    findings.extend(snapshot_findings)
    findings.extend(check_paths(args.paths, rules=DETERMINISM_RULES))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))

    if args.dot:
        pathlib.Path(args.dot).write_text(render_dot(model))
    if args.shard_report:
        pathlib.Path(args.shard_report).write_text(
            json.dumps(shard_report, indent=2) + "\n"
        )
    if args.snapshot_report:
        pathlib.Path(args.snapshot_report).write_text(
            json.dumps(snapshot_report, indent=2) + "\n"
        )

    baseline_path = args.baseline or str(_repo_root() / DEFAULT_BASELINE)
    if args.write_baseline:
        write_baseline(findings, baseline_path)
        print(
            f"wrote {len(findings)} accepted finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    baseline = set() if args.no_baseline else load_baseline(baseline_path)
    new, accepted, stale = partition(findings, baseline)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "new": [f.to_dict() for f in new],
                    "accepted": [f.to_dict() for f in accepted],
                    "stale_baseline": [
                        {"code": c, "path": p, "message": m} for c, p, m in stale
                    ],
                    "shard_verdict": shard_report["verdict"],
                    "snapshot_verdict": snapshot_report["verdict"],
                },
                indent=2,
            )
        )
    else:
        for finding in new:
            print(finding)
    if accepted:
        print(f"{len(accepted)} baselined finding(s)", file=sys.stderr)
    for code, path, message in stale:
        print(
            f"warning: stale baseline entry (no longer fires): "
            f"{code} {path}: {message}",
            file=sys.stderr,
        )
    if new:
        print(
            f"{len(new)} new finding(s) not in the baseline "
            f"({baseline_path})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
