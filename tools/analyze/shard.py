"""Pass 2 — shard-safety escape analysis (ANA201–ANA204).

Precondition gate for the ROADMAP's sharded space-parallel DES: once
cells are partitioned across shards running in separate workers, any
read or write of *another cell's* mutable state that does not travel
through ``Network.send`` or the probe bus becomes a real data race.
This pass flags the cross-cell shortcuts statically:

* **ANA201** — protocol/kernel code dereferencing another node's
  object: attribute access on a ``.node(...)`` / ``.nodes[...]`` call
  result or any use of the fabric's ``._nodes`` registry outside the
  fabric itself.  The network (``sim/network.py``) is the fabric, and
  the interference monitor plus tracing/obs readers are allowlisted
  observers (they are probe-bus consumers on the shard boundary).
* **ANA202** — mutable class-level attribute (``list``/``dict``/``set``
  literal or constructor) on a class in protocol/core scope: class
  attributes are process-global, i.e. silently shared across every
  cell in a shard — state must live per instance.
* **ANA203** — mutable module-level global in simulation scope:
  module globals are per-worker under sharding, so any mutable one is
  either a hidden cross-cell channel today or a silent divergence
  tomorrow.  Dunder names (``__all__``) are exempt.
* **ANA204** — fluid-state access from a protocol message handler:
  ``self.fastlane`` touched inside an ``_on_*`` / ``_handle_*``
  method.  By the time a handler runs, ``MSS.on_message`` has already
  materialized the cell (the lane's one sanctioned dispatch hook);
  a handler reaching into the lane again either re-promotes a cell
  mid-settlement or reads fluid occupancy that the handler's own
  delivery just invalidated.  Protocol code interacts with the lane
  only via the ``fastlane_eligible`` / ``fastlane_reconcile`` hooks
  and the ``on_message`` / ``_enter_borrowing`` notify sites.

Besides findings, the pass produces a machine-readable report (the
``--shard-report`` CI artifact) stating the files scanned, the
allowlist applied, and a ``safe``/``unsafe`` verdict for the sharding
roadmap item to gate on.
"""

from __future__ import annotations

import ast
from pathlib import Path, PurePath
from typing import Any, Dict, List, Tuple

from tools.check.engine import Finding

__all__ = ["run_shard_pass", "SHARD_SCOPE", "SHARD_ALLOWLIST"]

#: Code that will run *inside* a shard: protocols, core, kernel.
SHARD_SCOPE = (
    "src/repro/protocols",
    "src/repro/core",
    "src/repro/policies",
    "src/repro/sim",
)

#: Files allowed to touch other nodes' state: the fabric itself plus
#: sanctioned observation-only readers.
SHARD_ALLOWLIST = (
    "src/repro/sim/network.py",  # the fabric owns the node registry
    "src/repro/protocols/monitor.py",  # global safety oracle (observer)
    "src/repro/protocols/tracing.py",  # trace decoration (observer)
    # Import-time decorator registry: append-only, populated before any
    # kernel starts, byte-identical in every worker process.
    "src/repro/policies/base.py",
)

#: Constructor names whose value is a shared mutable container.
_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "deque", "defaultdict", "OrderedDict", "Counter"}
)


def _in_scope(posix: str) -> bool:
    if any(fragment in posix for fragment in SHARD_ALLOWLIST):
        return False
    return any(fragment in posix for fragment in SHARD_SCOPE)


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        return name in _MUTABLE_CALLS
    return False


def _peer_access_findings(path: str, tree: ast.Module) -> List[Finding]:
    findings: List[Finding] = []
    covered: set = set()  # inner ``._nodes`` nodes already reported
    for node in ast.walk(tree):
        # another_node = <x>.node(j)... then .attr — flag the direct
        # dereference form <x>.node(j).attr / <x>.nodes[j].attr.
        if isinstance(node, ast.Attribute):
            value = node.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "node"
            ):
                findings.append(
                    Finding(
                        path,
                        node.lineno,
                        node.col_offset,
                        "ANA201",
                        f"cross-cell state access: .node(...).{node.attr} "
                        "dereferences another cell's object — under "
                        "sharding this is a data race; communicate via "
                        "Network.send or the probe bus",
                    )
                )
            elif (
                isinstance(value, ast.Subscript)
                and isinstance(value.value, ast.Attribute)
                and value.value.attr in ("_nodes", "nodes")
            ):
                covered.add(id(value.value))  # one finding per dereference
                findings.append(
                    Finding(
                        path,
                        node.lineno,
                        node.col_offset,
                        "ANA201",
                        f"cross-cell state access: nodes[...].{node.attr} "
                        "reaches into the fabric's registry — under "
                        "sharding this is a data race",
                    )
                )
            elif node.attr == "_nodes" and id(node) not in covered:
                findings.append(
                    Finding(
                        path,
                        node.lineno,
                        node.col_offset,
                        "ANA201",
                        "use of the fabric's private node registry "
                        "(._nodes) outside sim/network.py — shard-unsafe",
                    )
                )
    return findings


def _class_attr_findings(path: str, tree: ast.Module) -> List[Finding]:
    findings: List[Finding] = []
    if "src/repro/sim" in path:
        return findings  # kernel classes are per-shard singletons
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            targets: List[ast.expr] = []
            value = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not _is_mutable_value(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name) and not target.id.startswith("__"):
                    findings.append(
                        Finding(
                            path,
                            stmt.lineno,
                            stmt.col_offset,
                            "ANA202",
                            f"mutable class attribute {node.name}."
                            f"{target.id} is shared by every cell in the "
                            "process — move it into __init__ so each "
                            "instance owns its state",
                        )
                    )
    return findings


def _module_global_findings(path: str, tree: ast.Module) -> List[Finding]:
    findings: List[Finding] = []
    for stmt in tree.body:  # module level only, by construction
        targets: List[ast.expr] = []
        value = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None or not _is_mutable_value(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name) and not target.id.startswith("__"):
                findings.append(
                    Finding(
                        path,
                        stmt.lineno,
                        stmt.col_offset,
                        "ANA203",
                        f"mutable module-level global {target.id!r} in "
                        "simulation scope — per-worker under sharding, "
                        "process-shared today; thread it through "
                        "constructors instead",
                    )
                )
    return findings


def _fluid_access_findings(path: str, tree: ast.Module) -> List[Finding]:
    findings: List[Finding] = []
    if "src/repro/sim" in path:
        return findings  # the kernel has no protocol handlers
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        for func in cls.body:
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not func.name.startswith(("_on_", "_handle_")):
                continue
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Attribute)
                    and node.attr == "fastlane"
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                ):
                    findings.append(
                        Finding(
                            path,
                            node.lineno,
                            node.col_offset,
                            "ANA204",
                            f"fluid-state access: {cls.name}.{func.name} "
                            "touches self.fastlane inside a message "
                            "handler — on_message already materialized "
                            "this cell before dispatch; interact with "
                            "the lane only via the fastlane_eligible/"
                            "fastlane_reconcile hooks",
                        )
                    )
    return findings


def run_shard_pass(
    files: List[str],
) -> Tuple[List[Finding], Dict[str, Any]]:
    """(findings, machine-readable shard-safety report) for ``files``."""
    findings: List[Finding] = []
    scanned: List[str] = []
    skipped: List[str] = []
    for path in files:
        posix = PurePath(path).as_posix()
        if any(fragment in posix for fragment in SHARD_ALLOWLIST):
            skipped.append(posix)
            continue
        if not any(fragment in posix for fragment in SHARD_SCOPE):
            continue
        try:
            tree = ast.parse(Path(path).read_text(), filename=path)
        except SyntaxError:
            continue  # the line lint reports SIM000 for this file
        scanned.append(posix)
        findings.extend(_peer_access_findings(posix, tree))
        findings.extend(_class_attr_findings(posix, tree))
        findings.extend(_module_global_findings(posix, tree))
        findings.extend(_fluid_access_findings(posix, tree))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    report: Dict[str, Any] = {
        "pass": "shard-safety",
        "scope": list(SHARD_SCOPE),
        "allowlist": list(SHARD_ALLOWLIST),
        "files_scanned": len(scanned),
        "files_allowlisted": skipped,
        "escapes": [f.to_dict() for f in findings],
        "verdict": "safe" if not findings else "unsafe",
    }
    return findings, report
