"""Whole-program protocol conformance analyzer (``python -m tools.analyze``).

Complements the line-level lint (``tools.check``) with passes that
need facts spanning files:

========  =============================================================
Pass 1    Message-flow conformance (ANA101–ANA104): every message kind
          a scheme sends has a ``_on_<Kind>`` handler, every handler's
          kind is actually sent, every ``msg.<attr>`` access names a
          real dataclass field, every constructor call matches the
          dataclass signature.  (``tools/analyze/flow.py``)
Pass 2    Shard-safety escape analysis (ANA201–ANA203): no read/write
          of another cell's mutable state outside ``Network.send`` and
          the probe bus; no process-shared mutable class attributes or
          module globals in simulation scope.  Precondition gate for
          the sharded-DES roadmap item.  (``tools/analyze/shard.py``)
Pass 3    Snapshot-escape analysis (ANA301–ANA303): no unregistered
          randomness and no mutable module/class-level state anywhere
          the checkpoint state codec must cover.  Precondition gate
          for bit-exact checkpoint/restore (``repro.snap``).
          (``tools/analyze/snapshot.py``)
Pass 4    Determinism lint family (SIM006–SIM009), run over the
          ``tools.check`` engine: unordered fan-out, identity
          ordering, ``popitem``, env-var control flow.
          (``tools/analyze/determinism.py``)
========  =============================================================

Accepted findings live in the committed baseline
(``tools/analyze/baseline.json``); the CLI exits 1 only on findings
outside it.  See ``docs/CHECKS.md`` for the full catalog and the
baseline workflow.
"""

from .baseline import (
    DEFAULT_BASELINE,
    baseline_key,
    load_baseline,
    partition,
    write_baseline,
)
from .determinism import DETERMINISM_RULES
from .flow import render_dot, run_flow_pass
from .model import ProtocolModel, build_model
from .shard import run_shard_pass
from .snapshot import run_snapshot_pass

__all__ = [
    "DEFAULT_BASELINE",
    "DETERMINISM_RULES",
    "ProtocolModel",
    "baseline_key",
    "build_model",
    "load_baseline",
    "partition",
    "render_dot",
    "run_flow_pass",
    "run_shard_pass",
    "run_snapshot_pass",
    "write_baseline",
]
