"""Pass 4 — snapshot-escape analysis (ANA301–ANA303).

The checkpoint/restore subsystem (``repro.snap``) promises that a
restored simulation continues *bit-for-bit*: every piece of mutable
simulation state must either live on an object the state codec walks,
or draw from an RNG registered in the
:class:`~repro.sim.rng.StreamRegistry` (whose substream states are
captured wholesale).  State that escapes both silently makes snapshots
lie — the restored run diverges with no error anywhere.  This pass
flags the escape hatches statically:

* **ANA301** — unregistered randomness in simulation scope: calls to
  the stdlib ``random`` module, to legacy ``np.random.*`` module-level
  functions (global hidden state), or to ``default_rng(...)`` outside
  the stream registry.  A generator the registry never handed out has
  state no snapshot captures.  Allowlisted: ``sim/rng.py`` (the
  registry itself) and the adaptive scheme's tie-breaking ``_best_rng``
  in ``core/adaptive.py`` + its re-creation in ``snap/state.py`` —
  that one generator is *explicitly* captured and restored by the
  state codec (see DESIGN.md §9), which is exactly the bar a new
  allowlist entry must clear.
* **ANA302** — mutable module-level global in snapshot scope beyond
  the shard-scope dirs ANA203 already covers (faults, traffic,
  metrics, obs, verify): module globals are invisible to the state
  codec, so a mutable one is state a snapshot silently drops.
* **ANA303** — mutable class-level attribute in those same dirs
  (companion of ANA202): class attributes are process-wide, not
  per-instance, so the per-station capture walk never sees them.

Besides findings, the pass emits a machine-readable report (the
``--snapshot-report`` CI artifact) with a ``safe``/``unsafe`` verdict
for CI to gate on, exactly like the shard-safety verdict.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Any, Dict, List, Tuple

from tools.check.engine import Finding

__all__ = ["run_snapshot_pass", "SNAP_SCOPE", "SNAP_RNG_ALLOWLIST"]

#: Code whose mutable state must survive checkpoint/restore: everything
#: the state codec walks, plus the kernel it rides on.
SNAP_SCOPE = (
    "src/repro/sim",
    "src/repro/protocols",
    "src/repro/core",
    "src/repro/policies",
    "src/repro/faults",
    "src/repro/traffic",
    "src/repro/metrics",
    "src/repro/obs",
    "src/repro/verify",
    "src/repro/snap",
)

#: Dirs already swept for mutable globals/class attrs by ANA202/ANA203
#: (shard scope) — ANA302/ANA303 cover only the remainder, so one
#: defect never fires under two codes.
_SHARD_COVERED = (
    "src/repro/protocols",
    "src/repro/core",
    "src/repro/sim",
)

#: Files allowed to create generators outside the registry.  Every
#: entry must name state the snapshot codec captures explicitly.
SNAP_RNG_ALLOWLIST = (
    "src/repro/sim/rng.py",      # the StreamRegistry itself
    "src/repro/core/adaptive.py",  # _best_rng: captured by repro.snap.state
    "src/repro/snap/state.py",   # the codec re-creating _best_rng on restore
)

#: Legacy module-level numpy RNG entry points (global hidden state).
_NP_MODULE_FNS = frozenset({
    "random", "rand", "randn", "randint", "random_sample", "choice",
    "shuffle", "permutation", "uniform", "normal", "exponential",
    "poisson", "binomial", "seed", "get_state", "set_state",
})

#: Constructor names whose value is a shared mutable container.
_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "deque", "defaultdict", "OrderedDict", "Counter"}
)


def _in_scope(posix: str) -> bool:
    return any(fragment in posix for fragment in SNAP_SCOPE)


def _rng_allowlisted(posix: str) -> bool:
    return any(fragment in posix for fragment in SNAP_RNG_ALLOWLIST)


def _in_global_scope_only(posix: str) -> bool:
    """True when the file is snapshot scope ANA203/ANA202 do not cover."""
    return not any(fragment in posix for fragment in _SHARD_COVERED)


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        return name in _MUTABLE_CALLS
    return False


def _dotted(node: ast.expr) -> str:
    """Best-effort dotted name of an attribute chain (``np.random.rand``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _rng_findings(path: str, tree: ast.Module) -> List[Finding]:
    findings: List[Finding] = []
    # Names bound from ``import random`` / ``from numpy import random``.
    random_aliases = {"random"}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    random_aliases.add(alias.asname or "random")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                for alias in node.names:
                    findings.append(
                        Finding(
                            path, node.lineno, node.col_offset, "ANA301",
                            f"stdlib random.{alias.name} imported in "
                            "simulation scope — its global state escapes "
                            "snapshots; draw from a StreamRegistry "
                            "substream instead",
                        )
                    )
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if not dotted:
            continue
        head, _, tail = dotted.rpartition(".")
        if dotted.endswith("default_rng") and not _rng_allowlisted(path):
            findings.append(
                Finding(
                    path, node.lineno, node.col_offset, "ANA301",
                    "default_rng(...) creates a generator the "
                    "StreamRegistry never handed out — its state is "
                    "invisible to checkpoint/restore; use "
                    "streams.stream(...) (or add an explicit capture "
                    "to repro.snap.state and allowlist the file)",
                )
            )
        elif head in ("np.random", "numpy.random") and tail in _NP_MODULE_FNS:
            findings.append(
                Finding(
                    path, node.lineno, node.col_offset, "ANA301",
                    f"legacy module-level {dotted}(...) draws from "
                    "numpy's hidden global state — unseeded, "
                    "process-wide, and not captured by snapshots; use "
                    "a StreamRegistry substream",
                )
            )
        elif head in random_aliases and head == "random":
            findings.append(
                Finding(
                    path, node.lineno, node.col_offset, "ANA301",
                    f"stdlib {dotted}(...) draws from the interpreter's "
                    "global RNG — not captured by snapshots; use a "
                    "StreamRegistry substream",
                )
            )
    return findings


def _module_global_findings(path: str, tree: ast.Module) -> List[Finding]:
    findings: List[Finding] = []
    for stmt in tree.body:  # module level only, by construction
        targets: List[ast.expr] = []
        value = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None or not _is_mutable_value(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name) and not target.id.startswith("_"):
                findings.append(
                    Finding(
                        path, stmt.lineno, stmt.col_offset, "ANA302",
                        f"mutable module-level global {target.id!r} in "
                        "snapshot scope — the state codec never walks "
                        "module globals, so this state silently escapes "
                        "checkpoints; thread it through constructors",
                    )
                )
    return findings


def _class_attr_findings(path: str, tree: ast.Module) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            targets: List[ast.expr] = []
            value = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not _is_mutable_value(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name) and not target.id.startswith("__"):
                    findings.append(
                        Finding(
                            path, stmt.lineno, stmt.col_offset, "ANA303",
                            f"mutable class attribute {node.name}."
                            f"{target.id} is process-wide, not "
                            "per-instance — the per-object capture walk "
                            "never sees it; move it into __init__",
                        )
                    )
    return findings


def run_snapshot_pass(
    files: List[str],
) -> Tuple[List[Finding], Dict[str, Any]]:
    """(findings, machine-readable snapshot-safety report) for ``files``."""
    findings: List[Finding] = []
    scanned: List[str] = []
    skipped: List[str] = []
    for path in files:
        posix = PurePath(path).as_posix()
        if not _in_scope(posix):
            skipped.append(posix)
            continue
        scanned.append(posix)
        try:
            tree = ast.parse(
                open(path, encoding="utf-8").read(), filename=path
            )
        except SyntaxError as exc:  # pragma: no cover - repo parses
            findings.append(
                Finding(path, exc.lineno or 1, 0, "ANA301", f"syntax error: {exc}")
            )
            continue
        findings.extend(_rng_findings(posix, tree))
        if _in_global_scope_only(posix):
            findings.extend(_module_global_findings(posix, tree))
            findings.extend(_class_attr_findings(posix, tree))
    report = {
        "pass": "snapshot-escape",
        "rules": ["ANA301", "ANA302", "ANA303"],
        "scope": list(SNAP_SCOPE),
        "rng_allowlist": list(SNAP_RNG_ALLOWLIST),
        "files_scanned": len(scanned),
        "findings": [f.to_dict() for f in findings],
        "verdict": "safe" if not findings else "unsafe",
    }
    return findings, report
