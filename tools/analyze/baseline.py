"""Committed-baseline workflow for accepted analyzer findings.

The analyzer fails only on findings *not* in the committed baseline
(``tools/analyze/baseline.json``), so pre-existing accepted findings —
e.g. the dict-iteration fan-outs over collector responses, which are
deterministic within a run today and queued for sorting in the
sharding refactor — do not block CI while still being on the record.

Baseline entries are keyed ``(code, path, message)`` — deliberately
*line-insensitive*, so unrelated edits shifting a finding up or down a
few lines do not invalidate the acceptance.  Changing the finding's
file, rule, or message (which embeds the offending construct) does.

Workflow:

* ``python -m tools.analyze`` — fails (exit 1) on unbaselined findings;
  also lists stale baseline entries (accepted findings that no longer
  fire) as warnings, so the file shrinks over time.
* ``python -m tools.analyze --write-baseline`` — regenerate the file
  from the current findings (review the diff like any other code).
"""

from __future__ import annotations

import json
from pathlib import Path, PurePath
from typing import Any, Dict, List, Sequence, Set, Tuple

from tools.check.engine import Finding

__all__ = [
    "DEFAULT_BASELINE",
    "baseline_key",
    "load_baseline",
    "write_baseline",
    "partition",
]

DEFAULT_BASELINE = "tools/analyze/baseline.json"

Key = Tuple[str, str, str]


def _normalize(path: str) -> str:
    """Repo-relative POSIX form, robust to absolute invocation paths."""
    posix = PurePath(path).as_posix()
    for anchor in ("src/", "tools/", "tests/"):
        idx = posix.find(anchor)
        if idx >= 0:
            return posix[idx:]
    return posix


def baseline_key(finding: Finding) -> Key:
    return (finding.code, _normalize(finding.path), finding.message)


def load_baseline(path: str) -> Set[Key]:
    """Accepted-finding keys from ``path``; empty set if absent."""
    file = Path(path)
    if not file.exists():
        return set()
    data = json.loads(file.read_text())
    return {
        (entry["code"], entry["path"], entry["message"])
        for entry in data.get("findings", [])
    }


def write_baseline(findings: Sequence[Finding], path: str) -> None:
    """Serialize ``findings`` as the new accepted baseline."""
    entries: List[Dict[str, Any]] = [
        {"code": code, "path": rel, "message": message}
        for code, rel, message in sorted({baseline_key(f) for f in findings})
    ]
    payload = {
        "comment": (
            "Accepted tools.analyze findings. Regenerate with "
            "'python -m tools.analyze --write-baseline' and review the "
            "diff; see docs/CHECKS.md for the workflow."
        ),
        "version": 1,
        "findings": entries,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def partition(
    findings: Sequence[Finding], baseline: Set[Key]
) -> Tuple[List[Finding], List[Finding], List[Key]]:
    """Split into (new, accepted) findings plus stale baseline keys."""
    new: List[Finding] = []
    accepted: List[Finding] = []
    seen: Set[Key] = set()
    for finding in findings:
        key = baseline_key(finding)
        seen.add(key)
        if key in baseline:
            accepted.append(finding)
        else:
            new.append(finding)
    stale = sorted(baseline - seen)
    return new, accepted, stale
