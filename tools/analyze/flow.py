"""Pass 1 — message-flow conformance (ANA101–ANA104).

Checks the whole send/handler matrix that ``base.py``'s dynamic
dispatch leaves unchecked until runtime:

* **ANA101** — a scheme sends a message kind it has no ``_on_<Kind>``
  handler for.  At runtime this is a ``NotImplementedError`` the first
  time such a message is *delivered* — which under rare interleavings
  may be never in tests and always in production.  Reported at the
  send site.  ``Ack`` is link-layer traffic peeled off by
  ``MSS.on_message`` before dispatch and is allowlisted.
* **ANA102** — a scheme defines ``_on_<Kind>`` but neither it nor any
  ancestor ever sends ``<Kind>``: dead dispatch-table weight, or a
  send that was refactored away while its handler lingered.
* **ANA103** — a handler (or a helper whose parameter is annotated
  with a message class) reads ``msg.<attr>`` where ``<attr>`` is not a
  field of the message dataclass — the silent ``AttributeError`` class
  of bug.  Dataclass niceties (``replace``, dunders) are tolerated.
* **ANA104** — a message constructor call at a send site does not
  match the dataclass signature: unknown keyword, too many
  positionals, or a missing required field.  ``*args``/``**kwargs``
  escapes the check.

The pass also renders the flow graph as GraphViz DOT (scheme →
message kind for sends, message kind → scheme for handlers) for the
CI artifact.
"""

from __future__ import annotations

import ast
from typing import List, Set

from tools.check.engine import Finding

from .model import ProtocolModel

__all__ = ["run_flow_pass", "render_dot"]

#: Kinds handled below protocol dispatch (see ``MSS.on_message``).
LINK_LAYER_KINDS = frozenset({"Ack"})

#: Attributes legal on any (frozen) dataclass instance.
_DATACLASS_ATTRS = frozenset({"replace"})


def _schemes(model: ProtocolModel) -> List[str]:
    return model.scheme_names()


def _check_sent_unhandled(model: ProtocolModel, findings: List[Finding]) -> None:
    for scheme in _schemes(model):
        handled = model.handled_kinds(scheme) | LINK_LAYER_KINDS
        for site in model.sends_of(scheme):
            if site.kind is None or site.kind in handled:
                continue
            findings.append(
                Finding(
                    site.path,
                    site.line,
                    site.col,
                    "ANA101",
                    f"{scheme} sends {site.kind} (in {site.method}) but "
                    f"defines no _on_{site.kind} handler — delivery would "
                    "raise NotImplementedError",
                )
            )


def _check_handler_never_sent(
    model: ProtocolModel, findings: List[Finding]
) -> None:
    for scheme in _schemes(model):
        sent = model.sent_kinds(scheme)
        for handler in model.handlers_of(scheme):
            if not handler.method.startswith("_on_"):
                continue  # helpers are reached via a real handler
            if handler.kind in sent:
                continue
            findings.append(
                Finding(
                    handler.path,
                    handler.line,
                    0,
                    "ANA102",
                    f"{scheme} registers handler {handler.method} but "
                    f"{handler.kind} is never sent by the scheme (dead "
                    "dispatch entry, or a send refactored away)",
                )
            )


def _check_field_accesses(model: ProtocolModel, findings: List[Finding]) -> None:
    for cls in model.classes.values():
        for handler in cls.handlers:
            message = model.messages.get(handler.kind)
            if message is None:
                continue
            legal = message.field_names | message.methods | _DATACLASS_ATTRS
            for access in handler.accesses:
                if access.attr in legal or access.attr.startswith("__"):
                    continue
                findings.append(
                    Finding(
                        handler.path,
                        access.line,
                        access.col,
                        "ANA103",
                        f"{cls.name}.{handler.method} reads "
                        f"msg.{access.attr}, but {handler.kind} has no "
                        f"field {access.attr!r} (fields: "
                        f"{', '.join(sorted(message.field_names))}) — "
                        "this is an AttributeError at delivery time",
                    )
                )


def _check_constructors(model: ProtocolModel, findings: List[Finding]) -> None:
    for cls in model.classes.values():
        for site in cls.sends:
            if site.kind is None or site.call is None:
                continue
            message = model.messages.get(site.kind)
            if message is None:
                continue
            call = site.call
            if any(isinstance(a, ast.Starred) for a in call.args) or any(
                kw.arg is None for kw in call.keywords
            ):
                continue  # *args / **kwargs: not statically checkable
            field_order = [f.name for f in message.fields]
            n_pos = len(call.args)
            if n_pos > len(field_order):
                findings.append(
                    Finding(
                        site.path,
                        site.line,
                        site.col,
                        "ANA104",
                        f"{site.kind}(...) called with {n_pos} positional "
                        f"arguments but the dataclass has only "
                        f"{len(field_order)} fields",
                    )
                )
                continue
            covered: Set[str] = set(field_order[:n_pos])
            bad = False
            for kw in call.keywords:
                assert kw.arg is not None  # filtered above
                if kw.arg not in message.field_names:
                    findings.append(
                        Finding(
                            site.path,
                            site.line,
                            site.col,
                            "ANA104",
                            f"{site.kind}(...) passes unknown keyword "
                            f"{kw.arg!r} (fields: "
                            f"{', '.join(field_order)})",
                        )
                    )
                    bad = True
                elif kw.arg in covered:
                    findings.append(
                        Finding(
                            site.path,
                            site.line,
                            site.col,
                            "ANA104",
                            f"{site.kind}(...) passes {kw.arg!r} both "
                            "positionally and by keyword",
                        )
                    )
                    bad = True
                else:
                    covered.add(kw.arg)
            if bad:
                continue
            missing = [
                f.name
                for f in message.fields
                if not f.has_default and f.name not in covered
            ]
            if missing:
                findings.append(
                    Finding(
                        site.path,
                        site.line,
                        site.col,
                        "ANA104",
                        f"{site.kind}(...) misses required field(s) "
                        f"{', '.join(missing)}",
                    )
                )


def run_flow_pass(model: ProtocolModel) -> List[Finding]:
    """All message-flow conformance findings for ``model``."""
    findings: List[Finding] = []
    _check_sent_unhandled(model, findings)
    _check_handler_never_sent(model, findings)
    _check_field_accesses(model, findings)
    _check_constructors(model, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def render_dot(model: ProtocolModel) -> str:
    """The send/handle matrix as a GraphViz digraph (CI artifact)."""
    lines = [
        "digraph message_flow {",
        "  rankdir=LR;",
        '  node [fontname="Helvetica"];',
    ]
    kinds: Set[str] = set()
    edges: List[str] = []
    for scheme in _schemes(model):
        lines.append(f'  "{scheme}" [shape=box, style=filled, fillcolor="#e8f0fe"];')
        for kind in sorted(model.sent_kinds(scheme)):
            kinds.add(kind)
            edges.append(f'  "{scheme}" -> "{kind}";')
        for kind in sorted(model.handled_kinds(scheme)):
            kinds.add(kind)
            edges.append(f'  "{kind}" -> "{scheme}" [style=dashed];')
    for kind in sorted(kinds):
        lines.append(f'  "{kind}" [shape=ellipse];')
    lines.extend(edges)
    lines.append("}")
    return "\n".join(lines) + "\n"
